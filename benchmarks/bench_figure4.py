"""E3: regenerate Figure 4 (wall-clock speedup of every policy).

Prints one panel per policy family: per-benchmark speedup over the
context-insensitive baseline at maximum depths 2-5, plus the harmonic-mean
row -- the textual form of the paper's Figure 4a-f bar charts.

Shape assertions (the paper's qualitative claims, not absolute numbers):

* average (harmonic-mean) performance stays within a few percent of the
  baseline for every policy -- context sensitivity is roughly
  performance-neutral on average;
* per-benchmark extremes stay within the paper's single-digit band.
"""

from repro.experiments.figures import HARMEAN, figure4


def test_figure4(benchmark, sweep):
    panels, rendered = benchmark.pedantic(
        figure4, args=(sweep,), rounds=1, iterations=1)
    print()
    print(rendered)

    for family, matrix in panels.items():
        for depth, value in matrix[HARMEAN].items():
            # Paper harMeans sit within ~1%; scaled-down runs are noisier,
            # so the band here is a loose sanity check on the same claim.
            assert -5.0 < value < 5.0, \
                f"harMean speedup out of band: {family} max={depth}: {value}"
        for bench_name, by_depth in matrix.items():
            if bench_name == HARMEAN:
                continue
            for depth, value in by_depth.items():
                assert -15.0 < value < 15.0, \
                    f"extreme speedup: {bench_name} {family} {depth}: {value}"
