"""E7: the abstract's headline numbers.

"On average, we found that with minimal impact on performance (+/-1%)
context sensitivity can enable 10% reductions in compiled code space and
compile time.  Performance on individual programs varied from -4.2% to
5.3% while reductions in compile time and code space of up to 33.0% and
56.7% respectively were obtained."

This bench aggregates the sweep the same way and asserts the shape: mean
performance near zero, negative mean code/compile changes, and double-digit
best-case reductions.  (Absolute extreme magnitudes depend on the
substrate; the direction and rough bands are what must reproduce.)
"""

from repro.experiments.figures import headline


def test_headline(benchmark, sweep):
    data, rendered = benchmark.pedantic(
        headline, args=(sweep,), rounds=1, iterations=1)
    print()
    print(rendered)

    # Perf: near-neutral on average, single-digit extremes.
    assert abs(data["mean_speedup_percent"]) < 2.5
    assert data["min_speedup_percent"] > -15.0
    assert data["max_speedup_percent"] < 15.0

    # Code space: shrinks on average; double-digit best case.
    assert data["mean_code_change_percent"] < 0.0
    assert data["best_code_reduction_percent"] < -10.0

    # Compile time: best case in the paper's 8-33% (or beyond) band.
    assert data["best_compile_reduction_percent"] < -8.0
