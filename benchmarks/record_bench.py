"""Record the checked-in fleet perf baseline (``BENCH_fleet_baseline.json``).

Runs the deterministic fleet experiment (founder fleet -> warm and cold
late joiners) on a few benchmarks and captures the cycle numbers the
ROADMAP asks to track from here on: cycles to the first stable inline
rule and cycles to steady state, cold vs warm-started.  Everything is
fixed-seed and simulated-cycle-exact, so the baseline only moves when
the system's behaviour moves.

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py          # rewrite
    PYTHONPATH=src python benchmarks/record_bench.py --check  # CI drift gate

``--check`` re-measures and exits non-zero if the committed baseline no
longer matches (same contract as the golden decision log).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fleet.report import benchmark_report  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..",
                             "BENCH_fleet_baseline.json")

#: The tracked configuration: small enough to re-measure in CI, big
#: enough that warm starts have something to eliminate.
BENCHMARKS = ("jess", "db", "javac")
INSTANCES = 3
SCALE = 0.1


def measure() -> dict:
    rows = {}
    for name in BENCHMARKS:
        report = benchmark_report(name, instances=INSTANCES, scale=SCALE,
                                  jobs=1)
        elimination = report["cold_start_elimination"]
        rows[name] = {
            "first_rule_clock_cold": elimination["first_rule_clock_cold"],
            "first_rule_clock_warm": elimination["first_rule_clock_warm"],
            "steady_state_cold": elimination["steady_state_cold"],
            "steady_state_warm": elimination["steady_state_warm"],
            "total_cycles_cold": elimination["total_cycles_cold"],
            "total_cycles_warm": elimination["total_cycles_warm"],
            "fleet_warm_decisions": report["warm"]["fleet_warm_decisions"],
            "warm_rules": report["warm_profile"]["rules"],
        }
    return {
        "schema": "repro.bench-fleet/v1",
        "config": {"benchmarks": list(BENCHMARKS),
                   "instances": INSTANCES, "scale": SCALE,
                   "family": "fixed", "depth": 2},
        "benchmarks": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify the committed baseline instead of "
                             "rewriting it")
    parser.add_argument("--out", default=BASELINE_PATH)
    args = parser.parse_args(argv)

    baseline = measure()
    payload = json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    if args.check:
        try:
            with open(args.out) as handle:
                committed = handle.read()
        except FileNotFoundError:
            print(f"no baseline at {args.out}; run without --check first",
                  file=sys.stderr)
            return 1
        if committed != payload:
            print("fleet perf baseline drifted; re-record with "
                  "`python benchmarks/record_bench.py` and commit the "
                  "diff if the change is intended", file=sys.stderr)
            return 1
        print(f"baseline up to date ({args.out})")
        return 0

    with open(args.out, "w") as handle:
        handle.write(payload)
    for name, row in baseline["benchmarks"].items():
        saved = row["first_rule_clock_cold"] - row["first_rule_clock_warm"]
        print(f"{name}: first rule cold {row['first_rule_clock_cold']:,.0f} "
              f"-> warm {row['first_rule_clock_warm']:,.0f} "
              f"(saves {saved:,.0f} cycles)")
    print(f"baseline -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
