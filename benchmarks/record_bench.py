"""Record the checked-in perf baselines.

Two baselines live here, both fixed-seed and simulated-cycle-exact so
they only move when the system's behaviour moves:

* ``BENCH_fleet_baseline.json`` -- the deterministic fleet experiment
  (founder fleet -> warm and cold late joiners): cycles to the first
  stable inline rule and to steady state, cold vs warm-started.
* ``BENCH_speculation_baseline.json`` -- guard-cycle numbers with the
  speculation pass off vs on (guard tests/misses, elided entries) plus
  the elision-replay verdict, on the benchmarks where elision fires
  (jess) and where the analysis soundly refuses it (db).
* ``BENCH_deopt_baseline.json`` -- guard-vs-planned deopt strategy
  numbers (guard tests eliminated, deopt entries/exits taken, total
  cycles) plus the OSR live-state replay verdict, on the exit-heavy
  benchmark (mtrt) and a planning control (jess).

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py          # rewrite
    PYTHONPATH=src python benchmarks/record_bench.py --check  # CI drift gate

``--check`` re-measures and exits non-zero if a committed baseline no
longer matches (same contract as the golden decision log).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.soundness import (check_elision_soundness,  # noqa: E402
                                      check_osr_soundness)
from repro.aos.runtime import AdaptiveRuntime  # noqa: E402
from repro.fleet.report import benchmark_report  # noqa: E402
from repro.jvm.costs import DEFAULT_COSTS  # noqa: E402
from repro.policies import make_policy  # noqa: E402
from repro.workloads.spec import build_benchmark  # noqa: E402

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..",
                             "BENCH_fleet_baseline.json")
SPEC_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..",
                                  "BENCH_speculation_baseline.json")
DEOPT_BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..",
                                   "BENCH_deopt_baseline.json")

#: The tracked configuration: small enough to re-measure in CI, big
#: enough that warm starts have something to eliminate.
BENCHMARKS = ("jess", "db", "javac")
INSTANCES = 3
SCALE = 0.1

#: Speculation baseline: jess is the headline elision win; db is the
#: sound-refusal control (its guarded site keeps a live fallthrough, so
#: elision must leave it untouched).  0.3 is the smallest scale at which
#: jess compiles its guarded sites.
SPEC_BENCHMARKS = ("jess", "db")
SPEC_SCALE = 0.3

#: Deopt baseline: compress is the headline win -- its guards almost
#: always hit, so trading them for never-taken cheap exits cuts both
#: guard tests and total cycles; mtrt's dispatched sites miss often, so
#: it exercises the live-state-mapped exit path itself (guard cycles
#: eliminated, exits paid).
DEOPT_BENCHMARKS = ("compress", "mtrt")
DEOPT_SCALE = 0.1


def measure() -> dict:
    rows = {}
    for name in BENCHMARKS:
        report = benchmark_report(name, instances=INSTANCES, scale=SCALE,
                                  jobs=1)
        elimination = report["cold_start_elimination"]
        rows[name] = {
            "first_rule_clock_cold": elimination["first_rule_clock_cold"],
            "first_rule_clock_warm": elimination["first_rule_clock_warm"],
            "steady_state_cold": elimination["steady_state_cold"],
            "steady_state_warm": elimination["steady_state_warm"],
            "total_cycles_cold": elimination["total_cycles_cold"],
            "total_cycles_warm": elimination["total_cycles_warm"],
            "fleet_warm_decisions": report["warm"]["fleet_warm_decisions"],
            "warm_rules": report["warm_profile"]["rules"],
        }
    return {
        "schema": "repro.bench-fleet/v1",
        "config": {"benchmarks": list(BENCHMARKS),
                   "instances": INSTANCES, "scale": SCALE,
                   "family": "fixed", "depth": 2},
        "benchmarks": rows,
    }


def measure_speculation() -> dict:
    rows = {}
    for name in SPEC_BENCHMARKS:
        row = {}
        for label, enabled in (("off", False), ("on", True)):
            costs = DEFAULT_COSTS.replace(speculation_enabled=enabled)
            built = build_benchmark(name, scale=SPEC_SCALE)
            runtime = AdaptiveRuntime(built.program,
                                      make_policy("cins", costs=costs),
                                      costs=costs)
            result = runtime.run()
            row[f"guard_tests_{label}"] = result.guard_tests
            row[f"guard_misses_{label}"] = result.guard_misses
            row[f"elided_entries_{label}"] = result.elided_entries
        replay = check_elision_soundness(
            build_benchmark(name, scale=SPEC_SCALE).program)
        row["replay_ok"] = replay.ok
        rows[name] = row
    return {
        "schema": "repro.bench-speculation/v1",
        "config": {"benchmarks": list(SPEC_BENCHMARKS),
                   "scale": SPEC_SCALE, "family": "cins"},
        "benchmarks": rows,
    }


def measure_deopt() -> dict:
    rows = {}
    for name in DEOPT_BENCHMARKS:
        row = {}
        for strategy in ("guard", "planned"):
            costs = DEFAULT_COSTS.replace(deopt_planning_enabled=True,
                                          deopt_strategy=strategy)
            built = build_benchmark(name, scale=DEOPT_SCALE)
            result = AdaptiveRuntime(built.program,
                                     make_policy("cins", costs=costs),
                                     costs=costs).run()
            label = strategy
            row[f"guard_tests_{label}"] = result.guard_tests
            row[f"guard_misses_{label}"] = result.guard_misses
            row[f"deopt_entries_{label}"] = result.deopt_entries
            row[f"deopt_exits_{label}"] = result.deopt_exits
            row[f"total_cycles_{label}"] = result.total_cycles
        replay = check_osr_soundness(
            build_benchmark(name, scale=DEOPT_SCALE).program)
        row["replay_ok"] = replay.ok
        rows[name] = row
    return {
        "schema": "repro.bench-deopt/v1",
        "config": {"benchmarks": list(DEOPT_BENCHMARKS),
                   "scale": DEOPT_SCALE, "family": "cins"},
        "benchmarks": rows,
    }


def _check_one(path: str, payload: str, label: str) -> int:
    try:
        with open(path) as handle:
            committed = handle.read()
    except FileNotFoundError:
        print(f"no baseline at {path}; run without --check first",
              file=sys.stderr)
        return 1
    if committed != payload:
        print(f"{label} baseline drifted; re-record with "
              "`python benchmarks/record_bench.py` and commit the "
              "diff if the change is intended", file=sys.stderr)
        return 1
    print(f"baseline up to date ({path})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="verify the committed baselines instead of "
                             "rewriting them")
    parser.add_argument("--out", default=BASELINE_PATH)
    parser.add_argument("--spec-out", default=SPEC_BASELINE_PATH)
    parser.add_argument("--deopt-out", default=DEOPT_BASELINE_PATH)
    args = parser.parse_args(argv)

    baseline = measure()
    payload = json.dumps(baseline, indent=2, sort_keys=True) + "\n"
    spec_baseline = measure_speculation()
    spec_payload = json.dumps(spec_baseline, indent=2, sort_keys=True) + "\n"
    deopt_baseline = measure_deopt()
    deopt_payload = json.dumps(deopt_baseline, indent=2, sort_keys=True) + "\n"
    if args.check:
        return (_check_one(args.out, payload, "fleet perf")
                or _check_one(args.spec_out, spec_payload, "speculation")
                or _check_one(args.deopt_out, deopt_payload, "deopt"))

    with open(args.out, "w") as handle:
        handle.write(payload)
    for name, row in baseline["benchmarks"].items():
        saved = row["first_rule_clock_cold"] - row["first_rule_clock_warm"]
        print(f"{name}: first rule cold {row['first_rule_clock_cold']:,.0f} "
              f"-> warm {row['first_rule_clock_warm']:,.0f} "
              f"(saves {saved:,.0f} cycles)")
    print(f"baseline -> {args.out}")

    with open(args.spec_out, "w") as handle:
        handle.write(spec_payload)
    for name, row in spec_baseline["benchmarks"].items():
        print(f"{name}: guard tests {row['guard_tests_off']:,} -> "
              f"{row['guard_tests_on']:,} "
              f"({row['elided_entries_on']:,} elided entries, replay "
              f"{'ok' if row['replay_ok'] else 'VIOLATED'})")
    print(f"speculation baseline -> {args.spec_out}")

    with open(args.deopt_out, "w") as handle:
        handle.write(deopt_payload)
    for name, row in deopt_baseline["benchmarks"].items():
        print(f"{name}: guard tests {row['guard_tests_guard']:,} -> "
              f"{row['guard_tests_planned']:,} under planned "
              f"({row['deopt_entries_planned']:,} exit-point entries, "
              f"{row['deopt_exits_planned']:,} exits taken, replay "
              f"{'ok' if row['replay_ok'] else 'VIOLATED'})")
    print(f"deopt baseline -> {args.deopt_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
