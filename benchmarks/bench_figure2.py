"""E2: regenerate Figure 2 (the HashMap example's profile data).

Runs the Figure 1 ``HashMapTest`` program under edge profiling and under
depth-2 trace profiling, and prints the target distribution at the
``hashCode`` site inside ``HashMap.get``: the context-insensitive 50/50
split (Figure 2b) versus the per-call-site 100% splits (Figure 2c).
"""

from repro.experiments.figures import figure2


def test_figure2(benchmark):
    data, rendered = benchmark.pedantic(figure2, rounds=1, iterations=1)
    print()
    print(rendered)

    # Figure 2b: the edge profile is a roughly even two-way split.
    edge = data["edge"]["global"]
    assert set(edge) == {"MyKey.hashCode", "Object.hashCode"}
    for share in edge.values():
        assert 0.3 < share < 0.7

    # Figure 2c: each runTest call-site context is monomorphic.
    per_context = data["trace"]["per_context"]
    assert len(per_context) == 2
    for bucket in per_context.values():
        assert max(bucket.values()) > 0.99
