"""E6: regenerate Section 4's in-text early-termination statistics.

The paper instruments the trace listener and reports, across the suite:

* ~20% of sampled callee methods are immediately parameterless;
* 50-80% of sampled traces contain a parameterless call within five
  levels of call stack;
* in 50-80% of cases a class (static) method call appears within two call
  edges;
* roughly half the time, four or more call edges are traversed before the
  first large method.

This bench prints the per-benchmark numbers and asserts the suite-level
aggregates land in (a slightly widened version of) those bands.
"""

from conftest import bench_scale

from repro.experiments.figures import termination_stats


def test_termination_stats(benchmark):
    stats, rendered = benchmark.pedantic(
        termination_stats, kwargs={"scale": bench_scale()},
        rounds=1, iterations=1)
    print()
    print(rendered)

    def mean(key):
        return sum(s[key] for s in stats.values()) / len(stats)

    immediately = mean("immediately_parameterless")
    within5 = mean("parameterless_within_5")
    class2 = mean("class_method_within_2")
    large4 = mean("large_at_or_beyond_4")

    print(f"suite means: immediately={immediately:.0%} "
          f"within5={within5:.0%} class<=2={class2:.0%} "
          f"large>=4={large4:.0%}")

    assert 0.05 < immediately < 0.45       # paper: ~20%
    assert 0.40 < within5 <= 1.0           # paper: 50-80%
    assert 0.40 < class2 <= 1.0            # paper: 50-80%
    assert 0.15 < large4 <= 0.95           # paper: ~50%
    assert within5 >= immediately
