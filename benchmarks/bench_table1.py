"""E1: regenerate Table 1 (benchmark characteristics).

Prints, for each benchmark, the classes loaded and the methods/bytecodes
dynamically compiled during a context-insensitive run -- the same three
columns the paper's Table 1 reports.  The static counts are calibrated to
match the paper exactly (see ``repro.workloads.spec.TABLE1``).
"""

from conftest import bench_scale

from repro.experiments.figures import table1
from repro.workloads.spec import TABLE1


def test_table1(benchmark):
    rows, rendered = benchmark.pedantic(
        table1, kwargs={"scale": bench_scale()}, rounds=1, iterations=1)
    print()
    print(rendered)
    print()
    print("paper's Table 1 for comparison:")
    for name, (classes, methods, bytecodes) in TABLE1.items():
        print(f"  {name:12s} {classes:4d} {methods:5d} {bytecodes:6d}")

    # Shape assertions: classes and methods match the paper exactly.
    for row in rows:
        classes, methods, _bytecodes = TABLE1[row["benchmark"]]
        assert row["classes"] == classes
        assert row["methods"] == methods
