"""E9 (ablation): what the decay organizer buys (Section 3.2).

The decay organizer periodically decays the dynamic call graph "to bias
hot edge detection toward recently sampled call edges ... so that the
system can adapt to program phase shifts."  On a two-phase workload whose
receiver class flips late in the run, a system without decay is stuck with
the stale phase-1 profile far longer: its guarded inline keeps missing.
"""

from repro.experiments.ablations import decay_ablation


def test_decay_ablation(benchmark):
    outcomes, rendered = benchmark.pedantic(
        decay_ablation, rounds=1, iterations=1)
    print()
    print(rendered)

    with_decay = outcomes["decay on"]
    without_decay = outcomes["decay off"]
    # Decay lets the system re-adapt sooner: materially fewer guard misses.
    assert with_decay.guard_misses < without_decay.guard_misses * 0.75
    # Both runs finish with the phase-2 target known (the workload's long
    # tail eventually surfaces it); the difference is *when*.
    assert "B.step" in with_decay.final_rule_targets
