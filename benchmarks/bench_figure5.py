"""E4: regenerate Figure 5 (optimized code-space change per policy).

Prints one panel per policy family: per-benchmark change in optimized
machine-code bytes versus the context-insensitive baseline (negative is
desirable), plus the harmonic-mean row.

Shape assertions (the paper's qualitative claims):

* on average, context sensitivity shrinks optimized code space;
* db is the outlier that *grows* code (context sensitivity enables guarded
  inlining its flat receiver distributions otherwise forbid) -- the paper
  notes db's speedups come grouped with code-size increases.
"""

from repro.experiments.figures import HARMEAN, figure5


def test_figure5(benchmark, sweep):
    panels, rendered = benchmark.pedantic(
        figure5, args=(sweep,), rounds=1, iterations=1)
    print()
    print(rendered)

    means = [matrix[HARMEAN][depth]
             for matrix in panels.values()
             for depth in sweep.config.depths]
    average = sum(means) / len(means)
    assert average < 0.0, f"code space should shrink on average: {average}"

    # db grows code under at least some context-sensitive configurations.
    db_changes = [panels[family]["db"][depth]
                  for family in sweep.config.families
                  for depth in sweep.config.depths]
    assert max(db_changes) > 0.0, "db should trade code growth for speed"
