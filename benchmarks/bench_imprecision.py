"""E10 (extension): the imprecision-driven adaptive policy.

Section 4.3 describes -- without implementing -- a policy that starts
context-insensitive and deepens profiling only at polymorphic call sites
whose profiles lack a dominant target.  This bench runs that policy on the
benchmark with the flattest receiver distributions (db) and checks the
open question the paper poses: can the iteration happen online without
significant overhead or delay?

Printed: the comparison against cins and fixed-depth profiling, the sites
deepened, and the mean trace depth (the policy's cost proxy).
"""

from conftest import bench_scale

from repro.experiments.runner import run_single
from repro.metrics.report import format_table
from repro.policies import ImprecisionDriven
from repro.aos.runtime import AdaptiveRuntime
from repro.workloads.spec import build_benchmark


def run_imprecision(scale):
    cins = run_single("db", "cins", 1, scale=scale)
    fixed = run_single("db", "fixed", 3, scale=scale)
    policy = ImprecisionDriven(max_depth=3)
    generated = build_benchmark("db", scale=scale)
    runtime = AdaptiveRuntime(generated.program, policy)
    adaptive = runtime.run()
    return cins, fixed, adaptive, policy


def test_imprecision_policy(benchmark):
    cins, fixed, adaptive, policy = benchmark.pedantic(
        run_imprecision, args=(bench_scale(),), rounds=1, iterations=1)

    rows = []
    for label, result in (("cins", cins), ("fixed(3)", fixed),
                          ("imprecision(3)", adaptive)):
        speedup = 100 * (cins.total_cycles / result.total_cycles - 1)
        rows.append([label, f"{speedup:+.2f}%",
                     f"{result.mean_trace_depth:.2f}",
                     str(result.guard_misses), str(result.traces_recorded)])
    print()
    print(format_table(
        ["policy", "speedup vs cins", "mean trace depth", "guard misses",
         "trace samples"], rows,
        title="E10: imprecision-driven adaptive context sensitivity (db)"))
    print(f"sites deepened: {len(policy.deepened_sites())}, "
          f"abandoned as inherently polymorphic: "
          f"{policy.abandoned_sites()}")

    # The policy pays for less context than fixed-depth profiling...
    assert adaptive.mean_trace_depth < fixed.mean_trace_depth
    # ...while actually deepening the imprecise sites.
    assert len(policy.deepened_sites()) > 0
    # And it stays cheap: overhead comparable to plain edge profiling.
    assert adaptive.mean_trace_depth < 2.5
