"""Shared infrastructure for the figure-regeneration benches.

The expensive artifact is the full (benchmark x policy x depth x phase)
sweep; it is run once per session and cached on disk, then every figure
bench formats its slice of it.  Two environment knobs:

* ``REPRO_BENCH_SCALE`` -- workload run-length scale (default ``0.5``;
  use ``1.0`` for the full paper-shaped runs, smaller for smoke tests);
* ``REPRO_BENCH_PHASES`` -- comma-separated sampling phases (default
  ``0.0,0.33,0.66``; the paper used best-of-20, we default to best-of-3).

The cache lives next to this file and is keyed by the full sweep config,
so changing either knob regenerates it.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import SweepConfig
from repro.experiments.runner import load_or_run_sweep

CACHE_PATH = os.path.join(os.path.dirname(__file__), ".sweep_cache.json")


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_phases() -> tuple:
    raw = os.environ.get("REPRO_BENCH_PHASES", "0.0,0.33,0.66")
    return tuple(float(part) for part in raw.split(","))


@pytest.fixture(scope="session")
def sweep():
    """The full sweep (cached across benches and sessions)."""
    config = SweepConfig(scale=bench_scale(), phases=bench_phases())
    return load_or_run_sweep(CACHE_PATH, config, verbose=False)
