"""Extension: online vs offline profile-directed inlining (Section 6).

The paper repeatedly contrasts its online system with offline systems
(Vortex collected context-sensitive profiles offline and could
"post process [them] to remove useless context sensitivity"; Section 2
stresses that online decisions see only "the program execution so far").
This bench quantifies the *online penalty* on our substrate: a training
run collects the complete profile, rules are derived once offline, and a
production run executes against the frozen rule set -- no dilution
timing, no missing-edge recompilation churn.
"""

from conftest import bench_scale

from repro.experiments.offline import compare_online_offline


def test_offline_comparison(benchmark):
    comparison, rendered = benchmark.pedantic(
        compare_online_offline,
        kwargs={"benchmark": "jess", "family": "fixed", "depth": 3,
                "scale": bench_scale()},
        rounds=1, iterations=1)
    print()
    print(rendered)

    # Offline foresight never compiles more than the online system.
    assert comparison.offline.opt_compilations <= \
        comparison.online.opt_compilations
    # The online penalty exists but stays moderate (the paper's premise:
    # online systems are viable despite partial knowledge).
    assert -5.0 < comparison.online_penalty_percent < 40.0
