"""E5: regenerate Figure 6 (execution time per AOS component).

Prints, for the baseline and for each (policy, depth) configuration, the
percentage of execution time spent in each adaptive-optimization-system
component: AOS listeners, compilation thread, decay organizer, AI
organizer, method-sample organizer, and controller thread.

Shape assertions (the paper's claims):

* total AOS overhead stays a small, single-digit-percent slice (the
  paper's Figure 6 y-axis tops out at 1.8%; the compilation thread
  dominates whatever there is);
* the *profiling* overhead (listeners + AI organizer) remains tiny even
  when context sensitivity makes the trace listener walk deeper -- the
  paper reports <0.06% deltas; we assert the same order of magnitude.
"""

from repro.aos.cost_accounting import (AI_ORGANIZER, COMPILATION, LISTENERS)
from repro.experiments.figures import FIGURE6_COMPONENTS, figure6


def test_figure6(benchmark, sweep):
    series, rendered = benchmark.pedantic(
        figure6, args=(sweep,), rounds=1, iterations=1)
    print()
    print(rendered)

    for label, fractions in series.items():
        total = sum(fractions[c] for c in FIGURE6_COMPONENTS)
        # At full scale the AOS sits in the mid-single-digit percent range
        # (the paper's figure tops out at 1.8% on 10-60s runs; shorter
        # simulated runs inflate the compile-time fraction).
        assert total < 0.18, f"AOS overhead too large for {label}: {total}"
        # Compilation dominates the AOS overhead, as in the paper.
        assert fractions[COMPILATION] >= max(
            fractions[c] for c in FIGURE6_COMPONENTS if c != COMPILATION)

    # Context-sensitive listeners cost more than cins listeners, but the
    # increase stays negligible relative to execution (paper: <0.06%).
    cins_listeners = series["cins"][LISTENERS]
    for label, fractions in series.items():
        if label == "cins":
            continue
        delta = fractions[LISTENERS] - cins_listeners
        assert delta < 0.01, f"listener overhead blew up for {label}"
