"""E7 (part): the paper's compile-time claim.

The abstract and Section 5 report that context sensitivity cuts optimizing
compilation time -- "a significant (8-33%) reduction in the percentage of
execution time devoted to optimizing compilation" -- by focusing inlining
decisions and eliminating useless inlining.  This bench prints the
compile-time change panels (same axes as Figures 4/5) and asserts the
direction for the policies the paper highlights.
"""

from repro.experiments.figures import HARMEAN, compile_time


def test_compile_time(benchmark, sweep):
    panels, rendered = benchmark.pedantic(
        compile_time, args=(sweep,), rounds=1, iterations=1)
    print()
    print(rendered)

    # On average across all policies/depths, compile time goes down.
    means = [matrix[HARMEAN][depth]
             for matrix in panels.values()
             for depth in sweep.config.depths]
    average = sum(means) / len(means)
    assert average < 5.0, \
        f"compile time should not grow on average: {average:+.1f}%"
    # Somewhere in the sweep, reductions reach the paper's double-digit band.
    assert min(means) < -5.0
