"""E8 (ablation): the hot-edge threshold and profile dilution.

The paper fixes the rule threshold at 1.5% of total profile weight
(Section 4, footnote) and attributes much of context sensitivity's
code-space effect to *profile dilution* against that threshold.  Sweeping
the threshold makes the mechanism visible: more rules (and more compiled
code) at low thresholds, fewer at high ones.
"""

from conftest import bench_scale

from repro.experiments.ablations import threshold_sweep


def test_threshold_sweep(benchmark):
    points, rendered = benchmark.pedantic(
        threshold_sweep,
        kwargs={"benchmark": "db", "scale": bench_scale()},
        rounds=1, iterations=1)
    print()
    print(rendered)

    # Rule count decreases monotonically as the threshold rises.
    rules = [p.rules for p in points]
    assert all(a >= b for a, b in zip(rules, rules[1:])), rules
    # And the extreme thresholds differ materially.
    assert rules[0] > rules[-1]
