#!/usr/bin/env python3
"""Lint the closed provenance/verifier vocabularies against DESIGN.md.

The decision logs are diffable only because "why" is an enumerable
value; that property erodes silently when a new code lands in an enum
without documentation, or a doc table keeps a row for a code that no
longer exists.  This lint makes the drift loud:

* ``ReasonCode``: the DESIGN.md reason-code table and the enum must
  name exactly the same codes, the table's verdict column must agree
  with the ``INLINE_REASONS``/``REFUSAL_REASONS`` partition, and that
  partition must be an exact disjoint cover of ``REASON_CODES``.
* ``EventKind``: the DESIGN.md event-kind table and the enum must
  match, and ``aos/event_log.py``'s derived constants must be a subset
  of the enum's values.
* ``VerifierError``: every code in ``VERIFIER_CODES`` must be
  documented in DESIGN.md (and no documented code may be dead).
* Derived copies: the oracle's ``RECORDED_REFUSALS`` must be refusal
  codes, and the compiler's layering-preserving copy of the deopt
  strategy lattice must be value-identical to the analysis layer's.

Run from the repository root: ``PYTHONPATH=src python tools/check_vocab.py``.
Exits nonzero listing every violation (never just the first).
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DESIGN_PATH = os.path.join(REPO_ROOT, "DESIGN.md")

sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

#: Verdict-column values that accompany an inline-family reason.
INLINE_VERDICTS = {"inline", "guarded"}


def parse_table(text: str, header: str) -> Dict[str, str]:
    """Extract ``code -> verdict/second-column`` from a DESIGN.md table.

    ``header`` identifies the table by its header row (e.g.
    ``"| Code | Verdict | Meaning |"``).  Rows are read until the first
    non-table line.
    """
    lines = text.splitlines()
    try:
        start = lines.index(header)
    except ValueError:
        return {}
    rows: Dict[str, str] = {}
    for line in lines[start + 2:]:  # skip the |---| separator
        if not line.startswith("|"):
            break
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if len(cells) < 2:
            break
        match = re.fullmatch(r"`([^`]+)`", cells[0])
        if match is None:
            break
        rows[match.group(1)] = cells[1]
    return rows


def backticked(text: str) -> frozenset:
    return frozenset(re.findall(r"`([^`\n]+)`", text))


def main() -> int:
    from repro.analysis.deopt import (STRATEGY_GUARD, STRATEGY_GUARD_FREE,
                                      STRATEGY_OSR_EXIT)
    from repro.analysis.verifier import VERIFIER_CODES
    from repro.aos import event_log
    from repro.compiler.compiled_method import (DEOPT_CHEAP_EXIT,
                                                DEOPT_FULL_GUARD,
                                                DEOPT_GUARD_FREE)
    from repro.compiler.oracle import RECORDED_REFUSALS
    from repro.provenance.reasons import (EventKind, INLINE_REASONS,
                                          REASON_CODES, REFUSAL_REASONS)

    with open(DESIGN_PATH) as handle:
        design = handle.read()

    problems: List[str] = []

    def check(ok: bool, message: str) -> None:
        if not ok:
            problems.append(message)

    # -- ReasonCode: enum partition ---------------------------------------
    check(INLINE_REASONS | REFUSAL_REASONS == REASON_CODES,
          "INLINE_REASONS + REFUSAL_REASONS do not cover REASON_CODES: "
          f"missing {sorted(REASON_CODES - INLINE_REASONS - REFUSAL_REASONS)}")
    check(not (INLINE_REASONS & REFUSAL_REASONS),
          "INLINE_REASONS and REFUSAL_REASONS overlap: "
          f"{sorted(INLINE_REASONS & REFUSAL_REASONS)}")

    # -- ReasonCode: DESIGN.md table --------------------------------------
    reason_table = parse_table(design, "| Code | Verdict | Meaning |")
    check(bool(reason_table), "DESIGN.md reason-code table not found")
    for code in sorted(REASON_CODES - set(reason_table)):
        problems.append(
            f"reason code `{code}` is not documented in the DESIGN.md "
            "reason-code table")
    for code in sorted(set(reason_table) - REASON_CODES):
        problems.append(
            f"DESIGN.md documents reason code `{code}` which does not "
            "exist in ReasonCode")
    for code, verdict in sorted(reason_table.items()):
        if code not in REASON_CODES:
            continue
        documented_inline = verdict in INLINE_VERDICTS
        actual_inline = code in INLINE_REASONS
        check(documented_inline == actual_inline,
              f"reason code `{code}`: DESIGN.md says verdict "
              f"{verdict!r} but the enum partition says "
              f"{'inline' if actual_inline else 'refused'}")

    # -- EventKind ---------------------------------------------------------
    event_values = frozenset(kind.value for kind in EventKind)
    event_table = parse_table(design, "| Kind | Emitted when |")
    check(bool(event_table), "DESIGN.md event-kind table not found")
    for kind in sorted(event_values - set(event_table)):
        problems.append(
            f"event kind `{kind}` is not documented in the DESIGN.md "
            "event-kind table")
    for kind in sorted(set(event_table) - event_values):
        problems.append(
            f"DESIGN.md documents event kind `{kind}` which does not "
            "exist in EventKind")
    derived = frozenset((event_log.COMPILE, event_log.RULE_ADDED,
                         event_log.RULE_RETIRED, event_log.INVALIDATE,
                         event_log.OSR, event_log.DECAY))
    check(derived <= event_values,
          "aos/event_log.py constants drifted from EventKind: "
          f"{sorted(derived - event_values)}")
    check(frozenset(event_log.EVENT_KINDS) == event_values,
          "aos/event_log.py EVENT_KINDS != EventKind values")

    # -- VerifierError codes -----------------------------------------------
    documented = backticked(design)
    for code in sorted(VERIFIER_CODES - documented):
        problems.append(
            f"verifier code `{code}` is not documented in DESIGN.md")

    # -- derived copies ------------------------------------------------------
    check(frozenset(RECORDED_REFUSALS) <= REFUSAL_REASONS,
          "oracle RECORDED_REFUSALS contains non-refusal codes: "
          f"{sorted(frozenset(RECORDED_REFUSALS) - REFUSAL_REASONS)}")
    for compiler_value, analysis_value, name in (
            (DEOPT_FULL_GUARD, STRATEGY_GUARD, "full-guard"),
            (DEOPT_CHEAP_EXIT, STRATEGY_OSR_EXIT, "cheap-exit-osr"),
            (DEOPT_GUARD_FREE, STRATEGY_GUARD_FREE, "guard-free")):
        check(compiler_value == analysis_value,
              f"compiler deopt-strategy mirror for {name!r} drifted: "
              f"compiler={compiler_value!r} analysis={analysis_value!r}")

    if problems:
        for problem in problems:
            print(f"check_vocab: {problem}", file=sys.stderr)
        print(f"check_vocab: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    counts = (f"{len(REASON_CODES)} reason codes, "
              f"{len(event_values)} event kinds, "
              f"{len(VERIFIER_CODES)} verifier codes")
    print(f"check_vocab: OK ({counts}; enums, DESIGN.md tables, and "
          "derived constants in sync)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
