"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Execute one benchmark under one policy and print the run summary.
``table1``
    Regenerate the paper's Table 1.
``sweep``
    Run the (benchmark x policy x depth) sweep and cache it as JSON.
``figures``
    Render Figures 4/5/6 (plus compile time and the headline numbers)
    from a cached sweep.
``ablations``
    Run the threshold / decay ablations (E8/E9).
``termination``
    The Section 4 early-termination statistics (E6).
``inspect``
    Run one benchmark and dump inline trees plus the AOS event log.
``trace``
    Run one benchmark with telemetry enabled, export a Chrome trace-event
    JSON (open at https://ui.perfetto.dev), and print the per-component
    overhead summary reconciled against the run's cost accounting.
``explain``
    Run one benchmark with decision provenance and print the per-site
    decision tree (verdicts, reason codes, profile evidence) for one
    compiled method.
``decisions``
    ``record`` a run's decision-provenance log as versioned JSONL, or
    ``diff`` two logs: align final decisions by (site, context), report
    flipped verdicts with their reason codes, and attribute run-level
    cycle/code-space deltas to the flips.  ``diff --attribute-static``
    additionally classifies each flip by what the static call graph
    knows of its site (static-vs-profile disagreement vs budget effects).
``fleet``
    Run the multi-instance fleet experiment: N founder instances of each
    benchmark (different workload seeds) stream profile deltas into the
    sharded fleet store, then a late-joining instance runs twice -- cold
    and warm-started from the fleet aggregate -- under decision
    provenance.  Prints cold-start elimination, dilution, and
    eviction-policy sensitivity; ``-o`` writes the versioned
    ``repro.fleet/v1`` JSON bundle.
``causal``
    Coz-style causal profiling: re-run fixed-seed benchmarks with one
    AOS component virtually sped up at a time (guard, dispatch,
    compile, organizer, listener, invalidation) across a factor grid,
    measure the change in progress-point throughput against same-seed
    baselines, and print the component x factor "what's worth
    optimizing" ranking with multi-seed confidence intervals and
    noise flags; ``-o`` writes the versioned ``repro.causal/v1`` JSON
    bundle, ``--trace-out`` exports an annotated Chrome trace of the
    top-ranked experiment.
``analyze``
    Static analysis over benchmarks: run the program verifier, build
    call graphs at the requested precision tiers (``--precision cha rta
    0cfa kcfa``), check dynamic soundness (every executed dispatch edge
    must lie in the static target sets), and emit a versioned JSON
    report (``repro.analysis/v1``).  ``--lattice`` adds the full
    precision-lattice comparison -- per-site target-set sizes across
    ``CHA ⊇ RTA ⊇ 0CFA ⊇ 1CFA ⊇ 2CFA ⊇ observed``, the sites static
    context rescues from RTA polymorphism, and per-tier prediction
    scores against the fixed-seed dynamic CCT -- and widens the
    soundness check to every tier of the chain.  ``--speculation`` adds
    the speculation-risk section: the static dataflow summary
    (receiver preexistence, dominator availability, invalidation-cone
    risk), an elision-replay run asserting no elided guard would ever
    have failed, and the guard-cycle delta against a speculation-off
    baseline.  ``--deopt`` adds the deoptimization-planning section:
    the per-method OSR-point table with liveness-derived live-set
    sizes, the OSR live-state soundness replay (every post-transfer
    read must be covered by the mapped live set), the planner's chosen
    per-site strategies, and the planned-vs-guard cycle delta.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.report import ANALYZE_PRECISIONS
from repro.aos.cost_accounting import APP
from repro.aos.runtime import AdaptiveRuntime
from repro.experiments.config import (DEFAULT_PHASES, DEPTHS,
                                      POLICY_FAMILIES, SWEEPABLE_FAMILIES,
                                      SweepConfig)
from repro.experiments.runner import (SweepResults, load_or_run_sweep,
                                      run_single)
from repro.policies import POLICY_LABELS, make_policy
from repro.workloads.spec import BENCHMARK_ORDER


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive online context-sensitive inlining "
                    "(CGO 2003) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one benchmark under one policy")
    run.add_argument("benchmark", choices=BENCHMARK_ORDER)
    run.add_argument("--policy", default="cins", choices=POLICY_LABELS)
    run.add_argument("--depth", type=int, default=1,
                     help="maximum context-sensitivity depth")
    run.add_argument("--scale", type=float, default=1.0,
                     help="run-length scale factor")
    run.add_argument("--phase", type=float, default=0.0,
                     help="sampling phase in [0, 1)")

    table = sub.add_parser("table1", help="regenerate Table 1")
    table.add_argument("--scale", type=float, default=1.0)

    sweep = sub.add_parser("sweep", help="run the full sweep and cache it")
    sweep.add_argument("--out", default="sweep.json")
    sweep.add_argument("--scale", type=float, default=1.0)
    sweep.add_argument("--benchmarks", nargs="*", default=None,
                       choices=BENCHMARK_ORDER)
    sweep.add_argument("--families", nargs="*", default=None,
                       choices=SWEEPABLE_FAMILIES,
                       help="context-sensitive policy families to sweep "
                            "(the cins baseline always runs; 'static' is "
                            "the no-profile static-oracle baseline)")
    sweep.add_argument("--depths", type=int, nargs="*", default=None)
    sweep.add_argument("--phases", type=float, nargs="*", default=None)
    sweep.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = all cores)")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-cell timeout in seconds when running "
                            "on a worker pool")
    sweep.add_argument("--resume", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="reuse completed cells from the per-cell "
                            "cache and rerun only the missing ones "
                            "(--no-resume disables)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore every cache and rerun the full sweep")
    sweep.add_argument("--decision-logs", action="store_true",
                       help="persist each cell's best-run decision-"
                            "provenance log next to its cached result "
                            "(<fingerprint>.decisions.jsonl)")

    figures = sub.add_parser("figures",
                             help="render figures from a cached sweep")
    figures.add_argument("--cache", default="sweep.json")
    figures.add_argument("--which", nargs="*",
                         default=["fig4", "fig5", "fig6", "compile",
                                  "headline"],
                         choices=["fig4", "fig5", "fig6", "compile",
                                  "headline"])
    figures.add_argument("--bars", action="store_true",
                         help="also draw harMean ASCII bar charts")

    ablations = sub.add_parser("ablations", help="run E8/E9 ablations")
    ablations.add_argument("which", choices=["threshold", "decay"])
    ablations.add_argument("--scale", type=float, default=1.0)

    term = sub.add_parser("termination",
                          help="Section 4 early-termination statistics")
    term.add_argument("--scale", type=float, default=1.0)

    inspect_cmd = sub.add_parser(
        "inspect",
        help="run one benchmark and dump inline trees + the AOS event log")
    inspect_cmd.add_argument("benchmark", choices=BENCHMARK_ORDER)
    inspect_cmd.add_argument("--policy", default="cins",
                             choices=POLICY_LABELS)
    inspect_cmd.add_argument("--depth", type=int, default=1)
    inspect_cmd.add_argument("--scale", type=float, default=0.5)
    inspect_cmd.add_argument("--top", type=int, default=5,
                             help="how many inline trees to print")
    inspect_cmd.add_argument("--events", type=int, default=40,
                             help="how many timeline events to print")

    trace = sub.add_parser(
        "trace",
        help="run one benchmark with telemetry and export a Chrome trace")
    trace.add_argument("benchmark", choices=BENCHMARK_ORDER)
    trace.add_argument("--policy", default="cins", choices=POLICY_LABELS)
    trace.add_argument("--depth", type=int, default=1,
                       help="maximum context-sensitivity depth")
    trace.add_argument("--scale", type=float, default=1.0,
                       help="run-length scale factor")
    trace.add_argument("--phase", type=float, default=0.0,
                       help="sampling phase in [0, 1)")
    trace.add_argument("-o", "--out", default="trace.json",
                       help="output path for the Chrome trace-event JSON "
                            "(open at https://ui.perfetto.dev)")

    explain = sub.add_parser(
        "explain",
        help="run one benchmark and print a method's inlining decision "
             "tree with reason codes and profile evidence")
    explain.add_argument("benchmark", choices=BENCHMARK_ORDER)
    explain.add_argument("method",
                         help="compiled method id, e.g. Drv.t0 "
                              "(pass a wrong one to see what's available)")
    explain.add_argument("--policy", default="cins", choices=POLICY_LABELS)
    explain.add_argument("--depth", type=int, default=1)
    explain.add_argument("--scale", type=float, default=1.0)
    explain.add_argument("--phase", type=float, default=0.0)

    decisions = sub.add_parser(
        "decisions",
        help="record or diff decision-provenance logs")
    decisions_sub = decisions.add_subparsers(dest="decisions_command",
                                             required=True)
    record = decisions_sub.add_parser(
        "record", help="run one benchmark and write its decision log")
    record.add_argument("benchmark", choices=BENCHMARK_ORDER)
    record.add_argument("--policy", default="cins", choices=POLICY_LABELS)
    record.add_argument("--depth", type=int, default=1)
    record.add_argument("--scale", type=float, default=1.0)
    record.add_argument("--phase", type=float, default=0.0)
    record.add_argument("-o", "--out", default="decisions.jsonl",
                        help="output path for the versioned JSONL log")
    diff = decisions_sub.add_parser(
        "diff", help="align two decision logs and report flipped verdicts")
    diff.add_argument("log_a", help="first *.decisions.jsonl log")
    diff.add_argument("log_b", help="second *.decisions.jsonl log")
    diff.add_argument("--limit", type=int, default=None,
                      help="show at most this many flips per section")
    diff.add_argument("--attribute-static", action="store_true",
                      help="classify each flip by the static call graph: "
                           "static-vs-profile disagreement (polymorphic "
                           "sites) vs budget/ordering effects (monomorphic "
                           "sites); needs both logs from the same benchmark")

    fleet = sub.add_parser(
        "fleet",
        help="run N instances per benchmark, aggregate their profiles in "
             "the sharded fleet store, and measure warm-start cold-start "
             "elimination for a late joiner")
    fleet.add_argument("--benchmarks", nargs="*", default=None,
                       choices=BENCHMARK_ORDER,
                       help="benchmarks to run (default: jess db)")
    fleet.add_argument("--instances", type=int, default=3,
                       help="founder instances feeding the store")
    fleet.add_argument("--scale", type=float, default=0.1,
                       help="run-length scale factor per instance")
    fleet.add_argument("--policy", default="fixed", choices=POLICY_LABELS)
    fleet.add_argument("--depth", type=int, default=2,
                       help="maximum context-sensitivity depth")
    fleet.add_argument("--heterogeneous",
                       action=argparse.BooleanOptionalAction, default=True,
                       help="vary workload seeds across instances "
                            "(--no-heterogeneous runs every instance on "
                            "the spec seed)")
    fleet.add_argument("--jobs", type=int, default=0,
                       help="worker processes (0 = one per instance)")
    fleet.add_argument("--timeout", type=float, default=None,
                       help="per-instance timeout in seconds when running "
                            "on a worker pool")
    fleet.add_argument("-o", "--out", default=None,
                       help="also write the repro.fleet/v1 JSON bundle "
                            "here")

    causal = sub.add_parser(
        "causal",
        help="causal profiling: virtually speed up one AOS component at "
             "a time and rank components by the progress-rate speedup "
             "their speedup would buy")
    causal.add_argument("--benchmarks", nargs="*", default=None,
                        choices=BENCHMARK_ORDER,
                        help="benchmarks to profile (default: jess db "
                             "javac)")
    causal.add_argument("--families", nargs="*", default=None,
                        choices=POLICY_LABELS,
                        help="policy families to profile under "
                             "(default: cins)")
    causal.add_argument("--depth", type=int, default=2,
                        help="maximum context-sensitivity depth")
    causal.add_argument("--components", nargs="*", default=None,
                        help="causal components to speed up (default: "
                             "all six; see repro.causal.components)")
    causal.add_argument("--factors", type=float, nargs="*", default=None,
                        help="virtual-speedup factors in (0, 1] "
                             "(default: 0.1 0.25 0.5 0.75 1.0)")
    causal.add_argument("--seeds", type=int, default=3,
                        help="independent workload-seed replicates per "
                             "cell")
    causal.add_argument("--phase", type=float, default=0.0,
                        help="sampling phase in [0, 1)")
    causal.add_argument("--scale", type=float, default=1.0,
                        help="run-length scale factor")
    causal.add_argument("--jobs", type=int, default=0,
                        help="worker processes (0 = all cores)")
    causal.add_argument("--timeout", type=float, default=None,
                        help="per-cell timeout in seconds when running "
                             "on a worker pool")
    causal.add_argument("--cache", default=None,
                        help="per-cell cache directory; interrupted "
                             "grids resume from it")
    causal.add_argument("-o", "--out", default=None,
                        help="also write the repro.causal/v1 JSON bundle "
                             "here")
    causal.add_argument("--trace-out", default=None,
                        help="re-run the top-ranked experiment with "
                             "telemetry and write an annotated Chrome "
                             "trace here")

    analyze = sub.add_parser(
        "analyze",
        help="verify benchmarks, build call graphs (CHA/RTA/k-CFA), and "
             "check dynamic soundness against the static target sets")
    analyze.add_argument("--benchmarks", nargs="*", default=None,
                         choices=BENCHMARK_ORDER,
                         help="benchmarks to analyze (default: all eight)")
    analyze.add_argument("--scale", type=float, default=1.0,
                         help="run-length scale factor")
    analyze.add_argument("--phase", type=float, default=0.0,
                         help="sampling phase for the soundness run")
    analyze.add_argument("--soundness",
                         action=argparse.BooleanOptionalAction, default=True,
                         help="replay each benchmark and check that CHA "
                              "contains every executed dispatch edge "
                              "(--no-soundness skips the runs; with "
                              "--lattice the whole chain observed ⊆ kCFA "
                              "⊆ 0CFA ⊆ RTA ⊆ CHA is checked)")
    analyze.add_argument("--precision", nargs="*", default=None,
                         choices=list(ANALYZE_PRECISIONS),
                         help="call-graph tiers to summarize "
                              "(default: cha rta)")
    analyze.add_argument("--k", type=int, default=2,
                         help="call-string depth for the kcfa tier")
    analyze.add_argument("--lattice", action="store_true",
                         help="embed the precision-lattice comparison "
                              "(per-site sizes CHA ⊇ RTA ⊇ 0CFA ⊇ kCFA ⊇ "
                              "observed, context-rescued sites, per-tier "
                              "precision scores vs the dynamic CCT)")
    analyze.add_argument("--speculation", action="store_true",
                         help="embed the speculation-risk section: static "
                              "dataflow summary (preexistence, dominator "
                              "availability, invalidation-cone risk), the "
                              "elision-replay soundness check, and guard "
                              "cycles vs a speculation-off baseline")
    analyze.add_argument("--deopt", action="store_true",
                         help="embed the deoptimization-planning section: "
                              "per-method OSR-point table (liveness-derived "
                              "live sets), the OSR live-state soundness "
                              "replay, chosen per-site strategies, and the "
                              "planned-vs-guard cycle delta")
    analyze.add_argument("-o", "--out", default=None,
                         help="also write the versioned JSON report here")
    return parser


def _cmd_run(args) -> int:
    result = run_single(args.benchmark, args.policy, args.depth,
                        phase=args.phase, scale=args.scale)
    print(f"benchmark      : {result.program_name}")
    print(f"policy         : {result.policy_name}")
    print(f"total cycles   : {result.total_cycles:,.0f}")
    print(f"app cycles     : {result.component_cycles[APP]:,.0f} "
          f"({100 * (1 - result.aos_fraction()):.2f}%)")
    print(f"opt compiles   : {result.opt_compilations} "
          f"({result.opt_compile_cycles:,.0f} cycles)")
    print(f"opt code bytes : {result.live_opt_code_bytes:,} live / "
          f"{result.opt_code_bytes:,} cumulative")
    print(f"inline rules   : {result.rule_count} "
          f"(refusals recorded: {result.refusals})")
    print(f"guard tests    : {result.guard_tests:,} "
          f"(misses: {result.guard_misses:,})")
    print(f"trace samples  : {result.traces_recorded:,} "
          f"(mean depth {result.mean_trace_depth:.2f})")
    print(f"OSR transfers  : {result.osr_transfers}, "
          f"invalidations: {result.invalidations}")
    print(f"classes loaded : {result.classes_loaded}, methods compiled: "
          f"{result.methods_compiled}, bytecodes: "
          f"{result.bytecodes_compiled:,}")
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments.figures import table1
    _rows, rendered = table1(scale=args.scale)
    print(rendered)
    return 0


def _cmd_sweep(args) -> int:
    config = SweepConfig(
        benchmarks=tuple(args.benchmarks) if args.benchmarks
        else BENCHMARK_ORDER,
        families=tuple(args.families) if args.families
        else POLICY_FAMILIES,
        depths=tuple(args.depths) if args.depths else DEPTHS,
        phases=tuple(args.phases) if args.phases else DEFAULT_PHASES,
        scale=args.scale, jobs=args.jobs, cell_timeout=args.timeout,
        decision_logs=args.decision_logs)
    results = load_or_run_sweep(args.out, config, verbose=True,
                                use_cache=not args.no_cache,
                                resume=args.resume)
    print(f"sweep cached at {args.out} ({len(results.cells)} cells, "
          f"{len(results.failures)} failed)")
    for key in sorted(results.failures):
        failure = results.failures[key]
        print(f"  FAILED {key}: {failure.error_type}: {failure.message} "
              f"(attempts: {failure.attempts})", file=sys.stderr)
    return 1 if results.failures else 0


def _cmd_figures(args) -> int:
    from repro.experiments import figures as fig
    try:
        with open(args.cache) as handle:
            results = SweepResults.from_json(handle.read())
    except FileNotFoundError:
        print(f"no sweep cache at {args.cache!r}; run "
              f"`python -m repro sweep --out {args.cache}` first",
              file=sys.stderr)
        return 1
    renderers = {"fig4": fig.figure4, "fig5": fig.figure5,
                 "fig6": fig.figure6, "compile": fig.compile_time,
                 "headline": fig.headline}
    for which in args.which:
        data, rendered = renderers[which](results)
        print(rendered)
        print()
        if args.bars and which in ("fig4", "fig5", "compile"):
            from repro.experiments.figures import HARMEAN
            from repro.metrics.report import format_bar_chart
            depth = results.config.depths[-1]
            values = {family: data[family][HARMEAN][depth]
                      for family in results.config.families}
            print(format_bar_chart(
                f"harMean at max={depth} ({which})", values))
            print()
    return 0


def _cmd_ablations(args) -> int:
    from repro.experiments.ablations import decay_ablation, threshold_sweep
    if args.which == "threshold":
        _points, rendered = threshold_sweep(scale=args.scale)
    else:
        _outcomes, rendered = decay_ablation()
    print(rendered)
    return 0


def _cmd_termination(args) -> int:
    from repro.experiments.figures import termination_stats
    _stats, rendered = termination_stats(scale=args.scale)
    print(rendered)
    return 0


def _cmd_inspect(args) -> int:
    from repro.aos.event_log import attach_event_log
    from repro.compiler.tree_printer import render_code_cache
    from repro.workloads.spec import build_benchmark

    generated = build_benchmark(args.benchmark, scale=args.scale)
    runtime = AdaptiveRuntime(generated.program,
                              make_policy(args.policy, args.depth))
    log = attach_event_log(runtime)
    runtime.run()

    print(render_code_cache(runtime.code_cache, top=args.top))
    print()
    print(log.render_summary())
    print()
    print(log.render_timeline(limit=args.events))
    return 0


def _cmd_trace(args) -> int:
    from repro.telemetry import (TelemetryRecorder, reconcile, summarize,
                                 write_chrome_trace)

    recorder = TelemetryRecorder(
        label=f"{args.benchmark}/{args.policy}/max{args.depth}")
    result = run_single(args.benchmark, args.policy, args.depth,
                        phase=args.phase, scale=args.scale,
                        telemetry=recorder)
    snapshot = recorder.snapshot()
    events = write_chrome_trace(args.out, snapshot)

    _rows, rendered = summarize(snapshot)
    print(rendered)
    print()
    ok, _check_rows, rendered_check = reconcile(snapshot,
                                                result.component_cycles)
    print(rendered_check)
    print()
    print(f"{events} trace events -> {args.out} "
          f"(load in https://ui.perfetto.dev or chrome://tracing)")
    if not ok:
        print("telemetry does NOT reconcile with cost accounting",
              file=sys.stderr)
        return 1
    return 0


def _record_run(args):
    """Run one benchmark with provenance; return (result, recorder)."""
    from repro.provenance import ProvenanceRecorder

    recorder = ProvenanceRecorder(
        label=f"{args.benchmark}/{args.policy}/max{args.depth}"
              f"@{args.phase:g}")
    result = run_single(args.benchmark, args.policy, args.depth,
                        phase=args.phase, scale=args.scale,
                        provenance=recorder)
    return result, recorder


def _cmd_explain(args) -> int:
    from repro.provenance import explain_method

    _result, recorder = _record_run(args)
    try:
        rendered = explain_method(recorder.records, args.method)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(rendered)
    return 0


def _cmd_decisions(args) -> int:
    if args.decisions_command == "record":
        from repro.experiments.runner import decision_log_meta

        result, recorder = _record_run(args)
        count = recorder.write_jsonl(
            args.out, decision_log_meta(args.benchmark, args.policy,
                                        args.depth, args.phase, args.scale,
                                        result))
        print(f"{count} provenance records -> {args.out}")
        return 0

    from repro.provenance import diff_logs, render_diff
    try:
        diff = diff_logs(args.log_a, args.log_b)
    except (OSError, ValueError) as exc:
        print(f"cannot diff: {exc}", file=sys.stderr)
        return 1
    print(render_diff(diff, limit=args.limit))
    if args.attribute_static:
        from repro.analysis import (attribute_flips, build_call_graph,
                                    render_attribution)
        from repro.workloads.spec import build_benchmark

        benchmark = diff.meta_a.get("benchmark")
        if benchmark is None or benchmark != diff.meta_b.get("benchmark"):
            print("cannot attribute: the two logs' headers do not name "
                  "the same benchmark", file=sys.stderr)
            return 1
        scale = float(diff.meta_a.get("scale", 1.0))
        generated = build_benchmark(benchmark, scale=scale)
        graph = build_call_graph(generated.program)
        print()
        print(render_attribution(attribute_flips(diff, graph), graph,
                                 limit=args.limit))
    return 0


def _cmd_fleet(args) -> int:
    from repro.fleet import (build_fleet_bundle, render_fleet_bundle,
                             write_fleet_bundle)

    benchmarks = tuple(args.benchmarks) if args.benchmarks else ("jess", "db")
    bundle = build_fleet_bundle(benchmarks, instances=args.instances,
                                scale=args.scale, family=args.policy,
                                depth=args.depth,
                                heterogeneous=args.heterogeneous,
                                jobs=args.jobs, timeout=args.timeout,
                                verbose=True)
    print(render_fleet_bundle(bundle))
    if args.out:
        write_fleet_bundle(args.out, bundle)
        print(f"bundle -> {args.out}")
    return 0 if bundle["ok"] else 1


def _cmd_causal(args) -> int:
    from repro.causal import (CausalConfig, apply_virtual_speedup,
                              build_causal_bundle, render_causal_bundle,
                              run_causal, write_causal_bundle)
    from repro.experiments.cell_cache import CellCache
    from repro.jvm.errors import ConfigError

    kwargs = {}
    if args.benchmarks:
        kwargs["benchmarks"] = tuple(args.benchmarks)
    if args.families:
        kwargs["families"] = tuple(args.families)
    if args.components:
        kwargs["components"] = tuple(args.components)
    if args.factors:
        kwargs["factors"] = tuple(args.factors)
    config = CausalConfig(depth=args.depth, seeds=args.seeds,
                          phase=args.phase, scale=args.scale,
                          jobs=args.jobs, cell_timeout=args.timeout,
                          **kwargs)
    try:
        config.validate()
    except ConfigError as exc:
        print(exc, file=sys.stderr)
        return 1

    cache = CellCache(args.cache) if args.cache else None
    results = run_causal(config, cache=cache, verbose=True)
    bundle = build_causal_bundle(results)
    print(render_causal_bundle(bundle))
    if args.out:
        write_causal_bundle(args.out, bundle)
        print(f"bundle -> {args.out}")

    if args.trace_out and bundle["ranking"]:
        from repro.jvm.costs import DEFAULT_COSTS
        from repro.telemetry import TelemetryRecorder, write_chrome_trace
        from repro.telemetry.progress import ProgressTracker

        top = bundle["ranking"][0]["component"]
        factor = max(config.factors)
        benchmark = config.benchmarks[0]
        family = config.families[0]
        recorder = TelemetryRecorder(
            label=f"{benchmark}/{family}+{top}@{factor:g}")
        tracker = ProgressTracker(label=recorder.label,
                                  telemetry=recorder)
        run_single(benchmark, family, config.depth, phase=config.phase,
                   scale=config.scale,
                   costs=apply_virtual_speedup(DEFAULT_COSTS, top, factor),
                   telemetry=recorder, progress=tracker)
        events = write_chrome_trace(
            args.trace_out, recorder.snapshot(),
            annotations={"causal_experiment": {
                "benchmark": benchmark, "family": family,
                "component": top, "factor": factor,
                "schema": bundle["schema"],
            }})
        print(f"{events} trace events -> {args.trace_out} "
              f"(top experiment, annotated)")
    return 0 if bundle["ok"] else 1


def _cmd_analyze(args) -> int:
    from repro.analysis import (analyze_benchmark, bundle_reports,
                                render_bundle, write_report)

    benchmarks = tuple(args.benchmarks) if args.benchmarks else BENCHMARK_ORDER
    precisions = tuple(args.precision) if args.precision else None
    reports = [analyze_benchmark(name, scale=args.scale,
                                 soundness=args.soundness, phase=args.phase,
                                 lattice=args.lattice, k=args.k,
                                 speculation=args.speculation,
                                 deopt=args.deopt,
                                 **({"precisions": precisions}
                                    if precisions else {}))
               for name in benchmarks]
    bundle = bundle_reports(reports, scale=args.scale)
    print(render_bundle(bundle))
    if args.out:
        write_report(args.out, bundle)
        print(f"report -> {args.out}")
    return 0 if bundle["ok"] else 1


_COMMANDS = {
    "run": _cmd_run,
    "table1": _cmd_table1,
    "sweep": _cmd_sweep,
    "figures": _cmd_figures,
    "ablations": _cmd_ablations,
    "termination": _cmd_termination,
    "inspect": _cmd_inspect,
    "trace": _cmd_trace,
    "explain": _cmd_explain,
    "decisions": _cmd_decisions,
    "fleet": _cmd_fleet,
    "causal": _cmd_causal,
    "analyze": _cmd_analyze,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
