"""The sharded fleet profile store.

One logical store aggregates context-sensitive profile deltas published
by many simulated runtime instances of the *same* program.  Entries are
partitioned into shards keyed by (program fingerprint, callee method,
innermost context edge) -- the same partitioning a distributed profile
service would use so one hot method's contexts land on one shard and
merges never cross shards.

Wire format
-----------
Published deltas are plain ``{(callee, context): weight}`` mappings --
the exact projections :meth:`repro.profiles.cct.CallingContextTree.
to_trace_weights` and :meth:`repro.profiles.dcg.DynamicCallGraph.
edge_weights` produce (TraceKeys are reduced to tuples so deltas cross
process boundaries without pickling custom classes).  Trace weights and
depth-1 edge weights are kept in separate planes: warm-start rule
derivation wants full contexts, dilution diagnostics want edges.

Determinism
-----------
Every fold (publish, decay, merge, snapshot) iterates in sorted key
order.  Float addition is not associative, so canonical fold order is
what makes two stores fed the same deltas in different orders serialize
byte-identically -- the same property :mod:`repro.telemetry.aggregate`
guarantees for cell telemetry.

Staleness
---------
:meth:`ShardedProfileStore.advance_epoch` multiplies every weight by the
decay rate and evicts entries that fall below the prune epsilon or that
no instance has refreshed for ``max_idle_epochs`` epochs.  An instance
that crashed or drifted to different behaviour therefore ages out of
the aggregate instead of polluting warm starts forever.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.workloads.spec import TABLE1

#: Schema identifier of a store snapshot.
STORE_SCHEMA = "repro.fleet-store/v1"

#: Wire key: (callee, ((caller, site), ...)) -- a TraceKey as plain tuples.
WireKey = Tuple[str, Tuple[Tuple[str, int], ...]]

#: Default decay applied to every entry at each epoch boundary.
DEFAULT_STORE_DECAY = 0.8

#: Entries whose decayed weight falls below this are evicted.
DEFAULT_PRUNE_EPSILON = 0.05

#: Entries not refreshed for this many epochs are evicted regardless of
#: weight.
DEFAULT_MAX_IDLE_EPOCHS = 6

#: The two profile planes each shard keeps.
_PLANES = ("traces", "edges")


def program_fingerprint(benchmark: str, scale: float = 1.0) -> str:
    """Content fingerprint of one generated program.

    Covers the benchmark's Table-1 static characteristics and the run
    scale.  The workload generator allocates every hot-path method and
    call-site id *before* consuming any seed-dependent randomness, so
    instances generated with different workload seeds still share hot
    TraceKeys -- the fingerprint deliberately excludes the seed so their
    profiles aggregate.
    """
    classes, methods, bytecodes = TABLE1[benchmark]
    blob = f"{benchmark}:{classes}:{methods}:{bytecodes}:{scale:g}"
    return f"{benchmark}-{zlib.crc32(blob.encode()):08x}"


def wire_key(callee: str, context: Iterable[Tuple[str, int]]) -> WireKey:
    """Normalize a (callee, context) pair into the canonical wire key."""
    return (str(callee), tuple((str(c), int(s)) for c, s in context))


def _encode_key(key: WireKey) -> str:
    """JSON-string form of a wire key (snapshot dict keys must be str)."""
    callee, context = key
    return json.dumps([callee, [list(elem) for elem in context]],
                      separators=(",", ":"))


def _decode_key(text: str) -> WireKey:
    callee, context = json.loads(text)
    return wire_key(callee, context)


def _shard_index(fingerprint: str, key: WireKey, num_shards: int) -> int:
    """Shard by (program fingerprint, callee, innermost edge).

    All deeper contexts of one call edge land on the same shard, so a
    shard can derive rules for its edges without cross-shard reads.
    """
    callee, context = key
    edge = context[0] if context else ("", 0)
    blob = f"{fingerprint}|{callee}|{edge[0]}@{edge[1]}"
    return zlib.crc32(blob.encode()) % num_shards


class _Entry:
    """One aggregated profile entry: weight plus freshness."""

    __slots__ = ("weight", "last_epoch")

    def __init__(self, weight: float = 0.0, last_epoch: int = 0):
        self.weight = weight
        self.last_epoch = last_epoch


class ShardedProfileStore:
    """Sharded, decaying aggregate of fleet profile deltas."""

    def __init__(self, num_shards: int = 8,
                 decay_rate: float = DEFAULT_STORE_DECAY,
                 prune_epsilon: float = DEFAULT_PRUNE_EPSILON,
                 max_idle_epochs: int = DEFAULT_MAX_IDLE_EPOCHS):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if not 0.0 < decay_rate <= 1.0:
            raise ValueError(f"decay_rate must be in (0, 1], "
                             f"got {decay_rate}")
        self.num_shards = num_shards
        self.decay_rate = decay_rate
        self.prune_epsilon = prune_epsilon
        self.max_idle_epochs = max_idle_epochs
        self.epoch = 0
        #: Monotone count of evictions across the store's lifetime.
        self.evicted_total = 0
        #: shard -> fingerprint -> plane -> {wire key: entry}.
        self._shards: List[Dict[str, Dict[str, Dict[WireKey, _Entry]]]] = \
            [{} for _ in range(num_shards)]
        #: shard -> instance id -> publish count (heterogeneity metric).
        self._contributions: List[Dict[str, int]] = \
            [{} for _ in range(num_shards)]

    # -- ingestion -----------------------------------------------------------

    def publish(self, instance_id: str, fingerprint: str,
                trace_weights: Dict[WireKey, float],
                edge_weights: Optional[Dict[WireKey, float]] = None) -> int:
        """Fold one instance's profile delta into the store (additive).

        Returns the number of entries touched.  Deltas are folded in
        sorted key order so publish order across instances cannot change
        the aggregated floats.
        """
        touched = 0
        for plane, weights in (("traces", trace_weights),
                               ("edges", edge_weights or {})):
            for key in sorted(weights):
                delta = weights[key]
                if delta <= 0.0:
                    continue
                shard = self._shards[_shard_index(fingerprint, key,
                                                  self.num_shards)]
                plane_map = shard.setdefault(fingerprint, {}) \
                    .setdefault(plane, {})
                entry = plane_map.get(key)
                if entry is None:
                    entry = plane_map[key] = _Entry()
                entry.weight += delta
                entry.last_epoch = self.epoch
                touched += 1
        if touched:
            contributions = self._contributions[
                _first_shard(self, fingerprint, trace_weights)]
            contributions[instance_id] = \
                contributions.get(instance_id, 0) + 1
        return touched

    def advance_epoch(self) -> Dict[str, float]:
        """Close the current epoch: decay every entry, evict stale ones.

        Returns the epoch's staleness statistics (counted, decayed,
        evicted) for the fleet report.
        """
        self.epoch += 1
        decayed = 0
        evicted = 0
        for shard in self._shards:
            for fingerprint in sorted(shard):
                for plane in _PLANES:
                    plane_map = shard[fingerprint].get(plane)
                    if not plane_map:
                        continue
                    for key in sorted(plane_map):
                        entry = plane_map[key]
                        entry.weight *= self.decay_rate
                        decayed += 1
                        idle = self.epoch - entry.last_epoch
                        if (entry.weight < self.prune_epsilon
                                or idle > self.max_idle_epochs):
                            del plane_map[key]
                            evicted += 1
        self.evicted_total += evicted
        return {"epoch": self.epoch, "decayed": decayed, "evicted": evicted}

    # -- queries -------------------------------------------------------------

    def aggregate(self, fingerprint: str,
                  plane: str = "traces") -> Dict[WireKey, float]:
        """The aggregated ``{wire key: weight}`` map for one program."""
        if plane not in _PLANES:
            raise ValueError(f"unknown plane {plane!r}; expected one of "
                             f"{_PLANES}")
        out: Dict[WireKey, float] = {}
        for shard in self._shards:
            plane_map = shard.get(fingerprint, {}).get(plane, {})
            for key in sorted(plane_map):
                out[key] = out.get(key, 0.0) + plane_map[key].weight
        return {key: out[key] for key in sorted(out)}

    def entry_count(self, fingerprint: Optional[str] = None) -> int:
        count = 0
        for shard in self._shards:
            for fp, planes in shard.items():
                if fingerprint is not None and fp != fingerprint:
                    continue
                count += sum(len(planes.get(plane, {})) for plane in _PLANES)
        return count

    def contribution_counts(self) -> Dict[int, Dict[str, int]]:
        """Per-shard ``{instance id: publish count}`` (sorted keys)."""
        return {index: {instance: counts[instance]
                        for instance in sorted(counts)}
                for index, counts in enumerate(self._contributions)
                if counts}

    def heterogeneity(self) -> float:
        """Normalized entropy of instance contributions in [0, 1].

        0.0 when one instance dominates the store, 1.0 when every
        contributing instance published equally -- the report's proxy for
        how mixed the profile population feeding a warm start was.
        """
        import math

        totals: Dict[str, int] = {}
        for counts in self._contributions:
            for instance in sorted(counts):
                totals[instance] = totals.get(instance, 0) + counts[instance]
        if len(totals) < 2:
            return 0.0
        grand = float(sum(totals.values()))
        entropy = -sum((count / grand) * math.log(count / grand)
                       for count in totals.values() if count)
        return entropy / math.log(len(totals))

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict:
        """Versioned, fully key-sorted JSON-ready snapshot of the store."""
        shards = []
        for index, shard in enumerate(self._shards):
            programs = {}
            for fingerprint in sorted(shard):
                planes = {}
                for plane in _PLANES:
                    plane_map = shard[fingerprint].get(plane, {})
                    planes[plane] = {
                        _encode_key(key): [plane_map[key].weight,
                                           plane_map[key].last_epoch]
                        for key in sorted(plane_map)}
                programs[fingerprint] = planes
            shards.append({
                "index": index,
                "programs": programs,
                "contributions": {
                    instance: self._contributions[index][instance]
                    for instance in sorted(self._contributions[index])},
            })
        return {
            "schema": STORE_SCHEMA,
            "num_shards": self.num_shards,
            "decay_rate": self.decay_rate,
            "prune_epsilon": self.prune_epsilon,
            "max_idle_epochs": self.max_idle_epochs,
            "epoch": self.epoch,
            "evicted_total": self.evicted_total,
            "shards": shards,
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "ShardedProfileStore":
        if data.get("schema") != STORE_SCHEMA:
            raise ValueError(f"not a {STORE_SCHEMA} snapshot: "
                             f"schema={data.get('schema')!r}")
        store = cls(num_shards=data["num_shards"],
                    decay_rate=data["decay_rate"],
                    prune_epsilon=data["prune_epsilon"],
                    max_idle_epochs=data["max_idle_epochs"])
        store.epoch = data["epoch"]
        store.evicted_total = data.get("evicted_total", 0)
        for raw_shard in data["shards"]:
            index = raw_shard["index"]
            for fingerprint, planes in raw_shard["programs"].items():
                for plane in _PLANES:
                    for encoded, (weight, last_epoch) in \
                            planes.get(plane, {}).items():
                        key = _decode_key(encoded)
                        store._shards[index] \
                            .setdefault(fingerprint, {}) \
                            .setdefault(plane, {})[key] = \
                            _Entry(weight, last_epoch)
            store._contributions[index].update(
                raw_shard.get("contributions", {}))
        return store

    def save(self, path: str) -> None:
        """Atomically persist the snapshot (write temp + ``os.replace``)."""
        payload = json.dumps(self.snapshot(), sort_keys=True)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w") as handle:
            handle.write(payload)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "ShardedProfileStore":
        with open(path) as handle:
            return cls.from_snapshot(json.load(handle))


def merge_snapshots(*snapshots: dict) -> dict:
    """Deterministically merge store snapshots (replica reconciliation).

    Weights are summed, freshness (``last_epoch``) and the epoch counter
    take the maximum, contribution counts are summed.  The fold runs in
    fully sorted order, so any permutation of the same snapshots
    produces byte-identical output under ``json.dumps(sort_keys=True)``.
    """
    if not snapshots:
        raise ValueError("nothing to merge")
    for snap in snapshots:
        if snap.get("schema") != STORE_SCHEMA:
            raise ValueError(f"not a {STORE_SCHEMA} snapshot")
        if snap["num_shards"] != snapshots[0]["num_shards"]:
            raise ValueError("cannot merge stores with different shard "
                             "counts")

    merged = ShardedProfileStore(
        num_shards=snapshots[0]["num_shards"],
        decay_rate=snapshots[0]["decay_rate"],
        prune_epsilon=snapshots[0]["prune_epsilon"],
        max_idle_epochs=snapshots[0]["max_idle_epochs"])
    merged.epoch = max(snap["epoch"] for snap in snapshots)
    merged.evicted_total = sum(snap.get("evicted_total", 0)
                               for snap in snapshots)

    # Canonical input order: the snapshots themselves are sorted by their
    # serialized form so the *argument* order cannot matter either.
    ordered = sorted(snapshots,
                     key=lambda snap: json.dumps(snap, sort_keys=True))
    for snap in ordered:
        for raw_shard in snap["shards"]:
            index = raw_shard["index"]
            shard = merged._shards[index]
            for fingerprint in sorted(raw_shard["programs"]):
                planes = raw_shard["programs"][fingerprint]
                for plane in _PLANES:
                    plane_entries = planes.get(plane, {})
                    target = shard.setdefault(fingerprint, {}) \
                        .setdefault(plane, {})
                    for encoded in sorted(plane_entries):
                        weight, last_epoch = plane_entries[encoded]
                        key = _decode_key(encoded)
                        entry = target.get(key)
                        if entry is None:
                            entry = target[key] = _Entry()
                        entry.weight += weight
                        entry.last_epoch = max(entry.last_epoch, last_epoch)
            contributions = merged._contributions[index]
            raw_contrib = raw_shard.get("contributions", {})
            for instance in sorted(raw_contrib):
                contributions[instance] = \
                    contributions.get(instance, 0) + raw_contrib[instance]
    return merged.snapshot()


def _first_shard(store: ShardedProfileStore, fingerprint: str,
                 trace_weights: Dict[WireKey, float]) -> int:
    """The shard charged with a publish's contribution count.

    Attributed to the shard of the smallest published key (or shard 0
    for an empty delta) so the attribution is deterministic.
    """
    if not trace_weights:
        return 0
    first = min(trace_weights)
    return _shard_index(fingerprint, first, store.num_shards)
