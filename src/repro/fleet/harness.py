"""The multi-instance fleet harness.

Spawns N simulated runtimes over the *same* program (different workload
seeds and sampling phases playing the role of per-machine load
variation), captures each instance's profile deltas at epoch boundaries
via the runtime's ``epoch_observer`` hook, and streams them into a
:class:`~repro.fleet.store.ShardedProfileStore`.

Instances fan out over a process pool with the same fault-tolerance
contract as the experiment sweep (:mod:`repro.experiments.runner`): an
instance whose worker crashes is retried once serially, a per-instance
timeout turns stragglers into structured :class:`InstanceFailure`
records, a broken pool strands its remaining instances onto the serial
path, and platforms without ``multiprocessing`` degrade to in-process
execution.

Because workers run to completion before the coordinator folds their
streams, the fold replays every instance's epochs in (epoch, instance)
order with a store-epoch advance between epoch groups -- the same
interleaving a live streaming service would see, but deterministic and
pool-friendly.

Delta capture deliberately round-trips trace weights through a
:class:`~repro.profiles.cct.CallingContextTree` (``add_trace`` then
``to_trace_weights``): the CCT projection is the fleet wire format, and
routing every published delta through it keeps the round-trip invariant
load-bearing rather than decorative.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aos.runtime import AdaptiveRuntime, RunResult
from repro.fleet.store import (ShardedProfileStore, WireKey,
                               program_fingerprint, wire_key)
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.policies import make_policy
from repro.profiles.cct import CallingContextTree
from repro.profiles.trace import TraceKey
from repro.provenance.recorder import ProvenanceRecorder
from repro.workloads.generator import generate
from repro.workloads.spec import SPECS

#: Worker attempts per instance (pool attempt plus one serial retry).
MAX_INSTANCE_ATTEMPTS = 2

#: Seed stride between fleet instances.  Any odd-ish constant works; the
#: point is that every instance perturbs the generator differently while
#: the hot-path method/site ids (allocated before seeded randomness)
#: stay shared across the fleet.
SEED_STRIDE = 101


@dataclass(frozen=True)
class FleetConfig:
    """One fleet experiment: N instances of one benchmark."""

    benchmark: str = "jess"
    instances: int = 3
    scale: float = 0.1
    family: str = "fixed"
    depth: int = 2
    #: Publish a delta every this many organizer wakes.
    publish_every: int = 4
    #: Vary workload seeds across instances (heterogeneous fleet) or run
    #: every instance on the spec's own seed (homogeneous).
    heterogeneous: bool = True
    jobs: int = 0
    timeout: Optional[float] = None

    def instance_ids(self) -> List[str]:
        return [f"{self.benchmark}#{index}"
                for index in range(self.instances)]


@dataclass
class ProfileDelta:
    """One instance's profile delta for one epoch window."""

    epoch: int
    trace_weights: Dict[WireKey, float]
    edge_weights: Dict[WireKey, float]


@dataclass
class InstanceFailure:
    """One instance that produced no result, and how hard the harness
    tried."""

    instance_id: str
    error_type: str
    message: str
    attempts: int


@dataclass
class FleetOutcome:
    """Everything one fleet run produced."""

    config: FleetConfig
    fingerprint: str
    store: ShardedProfileStore
    results: Dict[str, RunResult] = field(default_factory=dict)
    #: instance id -> its captured epoch stream (kept so the report can
    #: re-fold under different eviction policies).
    streams: Dict[str, List[ProfileDelta]] = field(default_factory=dict)
    failures: Dict[str, InstanceFailure] = field(default_factory=dict)
    #: Per-epoch staleness stats from the store folds.
    epoch_stats: List[Dict[str, float]] = field(default_factory=list)


def instance_spec(config: FleetConfig, index: int):
    """The generator spec for fleet instance ``index``.

    Heterogeneous fleets perturb the workload seed per instance; the
    generated *program shape* (hot methods, call sites) is identical
    across seeds because the generator allocates hot-path ids before
    consuming seed-dependent randomness -- only work amounts and the
    cold-code mass vary, which is exactly the per-instance behaviour
    drift the dilution experiment needs.
    """
    spec = SPECS[config.benchmark]
    iterations = max(50, int(spec.iterations * config.scale))
    seed = spec.seed + (index * SEED_STRIDE if config.heterogeneous else 0)
    return dataclasses.replace(spec, iterations=iterations, seed=seed)


def _instance_phase(index: int) -> float:
    """Deterministic per-instance sampling phase in [0, 1)."""
    return (0.137 * index + 0.05) % 1.0


class _DeltaCapture:
    """Epoch observer that captures clamped profile deltas.

    Keeps the last published absolute weights and emits max(0, new-old)
    per key (decay can shrink weights between publishes; a negative
    delta would corrupt the additive store).  Trace deltas are re-keyed
    through a CCT round trip; edge deltas come from the DCG's depth-1
    projection.
    """

    def __init__(self, publish_every: int):
        self.publish_every = publish_every
        self.deltas: List[ProfileDelta] = []
        self._last_traces: Dict[WireKey, float] = {}
        self._last_edges: Dict[WireKey, float] = {}

    def __call__(self, runtime: AdaptiveRuntime, epoch: int) -> None:
        if epoch % self.publish_every:
            return
        self.capture(runtime, epoch // self.publish_every)

    def capture(self, runtime: AdaptiveRuntime, publish_epoch: int) -> None:
        cct = CallingContextTree()
        for key, weight in runtime.state.dcg.items():
            cct.add_trace(key, weight)
        traces = {wire_key(key.callee, key.context): weight
                  for key, weight in cct.to_trace_weights().items()}
        edges = {wire_key(key.callee, key.context): weight
                 for key, weight in runtime.state.dcg.edge_weights().items()}
        delta = ProfileDelta(
            epoch=publish_epoch,
            trace_weights=_clamped_delta(self._last_traces, traces),
            edge_weights=_clamped_delta(self._last_edges, edges))
        self._last_traces = traces
        self._last_edges = edges
        if delta.trace_weights or delta.edge_weights:
            self.deltas.append(delta)


def _clamped_delta(old: Dict[WireKey, float],
                   new: Dict[WireKey, float]) -> Dict[WireKey, float]:
    out: Dict[WireKey, float] = {}
    for key in sorted(new):
        delta = new[key] - old.get(key, 0.0)
        if delta > 0.0:
            out[key] = delta
    return out


def run_instance(config: FleetConfig, index: int,
                 costs: CostModel = DEFAULT_COSTS,
                 provenance: Optional[ProvenanceRecorder] = None,
                 warm_profile=None) \
        -> Tuple[RunResult, List[ProfileDelta]]:
    """Run one fleet instance; returns its result and epoch stream.

    ``warm_profile`` (a :class:`repro.fleet.bootstrap.WarmProfile`)
    bootstraps the runtime from fleet-aggregated profiles before
    execution -- the late-joiner path.
    """
    generated = generate(instance_spec(config, index))
    policy = make_policy(config.family, config.depth, costs)
    runtime = AdaptiveRuntime(generated.program, policy, costs,
                              sample_phase=_instance_phase(index),
                              provenance=provenance)
    if warm_profile is not None:
        from repro.fleet.bootstrap import apply_warm_start
        apply_warm_start(runtime, warm_profile)
    capture = _DeltaCapture(config.publish_every)
    runtime.epoch_observer = capture
    result = runtime.run()
    # Flush the tail window so samples after the last periodic publish
    # still reach the store.
    capture.capture(runtime, (runtime._epoch // config.publish_every) + 1)
    return result, capture.deltas


def _instance_worker(args) \
        -> Tuple[int, RunResult, List[ProfileDelta]]:
    config, index = args
    result, deltas = run_instance(config, index)
    return index, result, deltas


def run_fleet(config: FleetConfig,
              store: Optional[ShardedProfileStore] = None,
              costs: CostModel = DEFAULT_COSTS,
              verbose: bool = False) -> FleetOutcome:
    """Run every instance and fold their epoch streams into the store."""
    if store is None:
        store = ShardedProfileStore()
    fingerprint = program_fingerprint(config.benchmark, config.scale)
    outcome = FleetOutcome(config=config, fingerprint=fingerprint,
                           store=store)
    instance_ids = config.instance_ids()

    pending = list(range(config.instances))
    collected: Dict[int, Tuple[RunResult, List[ProfileDelta]]] = {}

    def finish(index: int, result: RunResult,
               deltas: List[ProfileDelta]) -> None:
        collected[index] = (result, deltas)
        if verbose:
            print(f"  [{len(collected) + len(outcome.failures)}"
                  f"/{config.instances}] done {instance_ids[index]}")

    def fail(index: int, failure: InstanceFailure) -> None:
        outcome.failures[failure.instance_id] = failure
        if verbose:
            print(f"  [{len(collected) + len(outcome.failures)}"
                  f"/{config.instances}] FAILED {failure.instance_id}: "
                  f"{failure.error_type}: {failure.message}")

    jobs = config.jobs if config.jobs > 0 else (len(pending) or 1)
    if jobs > 1 and len(pending) > 1:
        pending = _run_instances_parallel(config, pending, jobs,
                                          config.timeout, finish, fail)
    for index in pending:
        _run_instance_with_retry(config, index, finish, fail)

    for index in sorted(collected):
        result, deltas = collected[index]
        outcome.results[instance_ids[index]] = result
        outcome.streams[instance_ids[index]] = deltas

    fold_streams(store, fingerprint, outcome.streams,
                 stats=outcome.epoch_stats)
    return outcome


def fold_streams(store: ShardedProfileStore, fingerprint: str,
                 streams: Dict[str, List[ProfileDelta]],
                 stats: Optional[List[Dict[str, float]]] = None) -> None:
    """Replay epoch streams into a store in (epoch, instance) order.

    Advancing the store epoch between epoch groups applies decay and
    staleness eviction exactly as a live service folding the same
    deltas at the same boundaries would.
    """
    by_epoch: Dict[int, List[Tuple[str, ProfileDelta]]] = {}
    for instance_id in sorted(streams):
        for delta in streams[instance_id]:
            by_epoch.setdefault(delta.epoch, []).append((instance_id, delta))
    for epoch in sorted(by_epoch):
        for instance_id, delta in sorted(by_epoch[epoch],
                                         key=lambda pair: pair[0]):
            store.publish(instance_id, fingerprint, delta.trace_weights,
                          delta.edge_weights)
        epoch_stat = store.advance_epoch()
        if stats is not None:
            stats.append(epoch_stat)


# -- fault-tolerant instance executors ----------------------------------------


def _run_instance_with_retry(config: FleetConfig, index: int, finish, fail,
                             attempts_before: int = 0) -> None:
    attempts = attempts_before
    last: Optional[BaseException] = None
    while attempts < MAX_INSTANCE_ATTEMPTS:
        attempts += 1
        try:
            _index, result, deltas = _instance_worker((config, index))
        except Exception as exc:
            last = exc
            continue
        finish(index, result, deltas)
        return
    assert last is not None
    fail(index, InstanceFailure(
        instance_id=config.instance_ids()[index],
        error_type=type(last).__name__, message=str(last),
        attempts=attempts))


def _run_instances_parallel(config: FleetConfig, pending: List[int],
                            jobs: int, timeout: Optional[float],
                            finish, fail) -> List[int]:
    """Fan instances out over a process pool; returns stranded indices."""
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool
        executor = ProcessPoolExecutor(max_workers=min(jobs, len(pending)))
        futures = [(index, executor.submit(_instance_worker,
                                           (config, index)))
                   for index in pending]
    except Exception as exc:
        warnings.warn(
            f"worker pool unavailable ({type(exc).__name__}: {exc}); "
            f"running fleet instances in-process",
            RuntimeWarning, stacklevel=3)
        return list(pending)

    stranded: List[int] = []
    try:
        for index, future in futures:
            try:
                _index, result, deltas = future.result(timeout=timeout)
            except FutureTimeout:
                future.cancel()
                fail(index, InstanceFailure(
                    instance_id=config.instance_ids()[index],
                    error_type="TimeoutError",
                    message=f"instance exceeded the per-instance timeout "
                            f"of {timeout:g}s",
                    attempts=1))
            except BrokenProcessPool:
                stranded.append(index)
            except Exception:
                _run_instance_with_retry(config, index, finish, fail,
                                         attempts_before=1)
            else:
                finish(index, result, deltas)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return stranded


def trace_key_of(key: WireKey) -> TraceKey:
    """Rehydrate a wire key into a :class:`TraceKey`."""
    callee, context = key
    return TraceKey(callee, context)
