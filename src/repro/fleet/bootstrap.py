"""Warm-start bootstrap: seed a fresh runtime from fleet profiles.

A late-joining instance should not have to relearn what the fleet
already knows.  :func:`build_warm_profile` turns the store's aggregate
for one program into a seed profile: trace weights rescaled to a
credible local magnitude plus fleet-origin
:class:`~repro.profiles.trace.InlineRule` objects for every trace above
the hot-edge threshold.  :func:`apply_warm_start` installs that into a
fresh :class:`~repro.aos.runtime.AdaptiveRuntime` before it executes:

* the DCG is pre-charged with the scaled weights, so the controller's
  ``first_compile_min_weight`` gate opens immediately and the AI
  organizer's first wake re-derives the same rules from data rather
  than dropping them;
* ``state.rules`` carries the fleet rules from cycle 0, and
  ``state.warm_keys`` keeps their origin sticky across re-derivations,
  so the oracle can tag purely-fleet-driven verdicts ``fleet-warm``;
* a ``warm_start`` provenance event records the bootstrap itself
  (fingerprint, rule count, seeded weight), making every downstream
  warm decision traceable to its source.

The scaling rule: the aggregate's *relative* weights are what transfer
between instances (different run lengths and decay states make absolute
magnitudes incomparable), so the seed is normalized to
``WARM_WEIGHT_FACTOR x max(ai_min_total_weight,
first_compile_min_weight)`` -- just enough mass that the local organizer
treats the seed as a mature profile, small enough that genuinely
different local behaviour overtakes it within a few decay periods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aos.organizers import rules_fingerprint_of
from repro.aos.runtime import AdaptiveRuntime
from repro.fleet.store import ShardedProfileStore, WireKey
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.profiles.trace import ORIGIN_FLEET, InlineRule, TraceKey
from repro.provenance.reasons import EventKind

#: The seeded profile's total weight, as a multiple of the larger of the
#: organizer's two maturity gates.
WARM_WEIGHT_FACTOR = 2.0


@dataclass
class WarmProfile:
    """A fleet-derived seed profile for one program."""

    fingerprint: str
    #: Rescaled trace weights to pre-charge the DCG with.
    trace_weights: Dict[TraceKey, float] = field(default_factory=dict)
    #: Fleet-origin rules (hot traces of the aggregate).
    rules: List[InlineRule] = field(default_factory=list)
    #: Total weight of the store aggregate the profile was derived from.
    source_weight: float = 0.0
    #: Total weight actually seeded (after rescaling).
    seeded_weight: float = 0.0

    @property
    def rule_keys(self) -> frozenset:
        return frozenset(rule.key for rule in self.rules)


def build_warm_profile(store: ShardedProfileStore, fingerprint: str,
                       costs: CostModel = DEFAULT_COSTS) \
        -> Optional[WarmProfile]:
    """Derive a warm-start profile from the store's aggregate.

    Returns ``None`` when the store holds nothing for the program (a
    cold start is then the only option).  Hot traces -- above the same
    ``hot_edge_threshold`` share the AI organizer uses -- become
    fleet-origin rules; everything is folded in sorted key order so two
    bootstraps from equal stores are identical.
    """
    aggregate = store.aggregate(fingerprint, plane="traces")
    if not aggregate:
        return None
    source_weight = sum(aggregate[key] for key in sorted(aggregate))
    if source_weight <= 0.0:
        return None

    target_weight = WARM_WEIGHT_FACTOR * max(costs.ai_min_total_weight,
                                             costs.first_compile_min_weight)
    scale = target_weight / source_weight

    trace_weights: Dict[TraceKey, float] = {}
    for wire in sorted(aggregate):
        callee, context = wire
        trace_weights[TraceKey(callee, context)] = aggregate[wire] * scale

    cutoff = costs.hot_edge_threshold * target_weight
    rules = [InlineRule(key, weight, weight / target_weight,
                        origin=ORIGIN_FLEET)
             for key, weight in sorted(
                 trace_weights.items(),
                 key=lambda kv: (-kv[1], kv[0].callee, kv[0].context))
             if weight > cutoff]

    return WarmProfile(fingerprint=fingerprint,
                       trace_weights=trace_weights,
                       rules=rules,
                       source_weight=source_weight,
                       seeded_weight=target_weight)


def apply_warm_start(runtime: AdaptiveRuntime,
                     warm: WarmProfile) -> int:
    """Install a warm profile into a not-yet-run runtime.

    Returns the number of rules installed.  Must be called before
    ``runtime.run()``: the seed masquerades as profile data the runtime
    observed "before" cycle 0, so the first organizer wake already sees
    a mature profile.
    """
    state = runtime.state
    for key in sorted(warm.trace_weights,
                      key=lambda k: (k.callee, k.context)):
        state.dcg.add(key, warm.trace_weights[key])

    state.warm_keys = warm.rule_keys
    state.rules = list(warm.rules)
    state.rules_fingerprint = rules_fingerprint_of(state.rules)

    runtime.first_rule_clock = 0.0 if warm.rules else None
    runtime.warm_started = True
    runtime.provenance.event(
        EventKind.WARM_START, warm.fingerprint,
        rules=len(warm.rules),
        seeded_weight=round(warm.seeded_weight, 6),
        source_weight=round(warm.source_weight, 6))
    return len(warm.rules)
