"""The fleet report: cold-start elimination, dilution, eviction policy.

``repro fleet`` runs, per benchmark: a founder fleet of N cold
instances whose epoch streams fill the sharded store, then a
*late-joining* instance twice over -- once cold (control) and once
warm-started from the fleet aggregate -- both under decision
provenance.  The report measures:

* **cold-start elimination** -- cycles to the first stable inline rule
  and cycles to steady state (last optimizing compile), warm vs cold;
* **dilution** -- how far the shared aggregate diverges from each
  instance's private hot set when heterogeneous seeds feed one store;
* **eviction-policy sensitivity** -- the founder streams re-folded under
  different (decay rate, idle-eviction) policies.

Everything is emitted as a versioned ``repro.fleet/v1`` JSON bundle;
:func:`validate_fleet_bundle` checks the structural and acceptance
invariants (warm joiner faster to its first rule than cold, warm
decisions present in provenance) so CI can gate on the bundle alone.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional, Sequence

from repro.aos.runtime import RunResult
from repro.fleet.bootstrap import build_warm_profile
from repro.fleet.harness import (FleetConfig, FleetOutcome, ProfileDelta,
                                 fold_streams, run_fleet, run_instance)
from repro.fleet.store import ShardedProfileStore, WireKey
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.metrics.report import format_table
from repro.provenance.reasons import EventKind, ReasonCode
from repro.provenance.recorder import ProvenanceRecorder

#: Schema identifier of the fleet report bundle.
FLEET_SCHEMA = "repro.fleet/v1"

#: (decay rate, max idle epochs) grid for the eviction-sensitivity
#: re-folds: aggressive, default, and retain-everything.
EVICTION_GRID = ((0.5, 2), (0.8, 6), (1.0, 12))


def _run_metrics(result: RunResult,
                 fleet_warm_decisions: int = 0,
                 warm_start_events: int = 0) -> dict:
    return {
        "total_cycles": result.total_cycles,
        "app_cycles": result.app_cycles,
        "first_rule_clock": result.first_rule_clock,
        "steady_state_clock": result.steady_state_clock,
        "opt_compilations": result.opt_compilations,
        "rule_count": result.rule_count,
        "guard_tests": result.guard_tests,
        "guard_misses": result.guard_misses,
        "warm_started": result.warm_started,
        "fleet_warm_decisions": fleet_warm_decisions,
        "warm_start_events": warm_start_events,
    }


def _provenance_counts(recorder: ProvenanceRecorder) -> tuple:
    warm_decisions = sum(
        1 for record in recorder.decisions
        if record.reason == ReasonCode.FLEET_WARM.value)
    warm_events = sum(
        1 for record in recorder.events
        if record.kind == EventKind.WARM_START.value)
    return warm_decisions, warm_events


def _instance_hot_sets(streams: Dict[str, List[ProfileDelta]],
                       threshold: float) -> Dict[str, frozenset]:
    """Each instance's own hot trace keys, from its cumulative stream."""
    hot: Dict[str, frozenset] = {}
    for instance_id in sorted(streams):
        totals: Dict[WireKey, float] = {}
        for delta in streams[instance_id]:
            for key in sorted(delta.trace_weights):
                totals[key] = totals.get(key, 0.0) + delta.trace_weights[key]
        grand = sum(totals[key] for key in sorted(totals))
        if grand <= 0.0:
            hot[instance_id] = frozenset()
            continue
        cutoff = threshold * grand
        hot[instance_id] = frozenset(key for key, weight in totals.items()
                                     if weight > cutoff)
    return hot


def _dilution(outcome: FleetOutcome, warm_rule_keys: frozenset,
              threshold: float) -> dict:
    """How the shared aggregate relates to per-instance hot sets.

    ``polluted_fraction``: mean share of aggregate rules an instance
    never saw as hot itself (foreign behaviour it inherits on warm
    start).  ``lost_fraction``: share of the union of instance-hot
    traces that did not survive into the aggregate (per-instance signal
    drowned by the fleet -- the paper's profile-dilution effect at the
    fleet level).
    """
    # warm_rule_keys holds TraceKeys; reduce to wire tuples.
    aggregate = frozenset((key.callee, key.context)
                          for key in warm_rule_keys)
    hot_sets = _instance_hot_sets(outcome.streams, threshold)
    union_hot = frozenset().union(*hot_sets.values()) if hot_sets \
        else frozenset()

    polluted = sum(len(aggregate - hot_sets[instance_id]) / len(aggregate)
                   for instance_id in sorted(hot_sets)) / len(hot_sets) \
        if aggregate and hot_sets else 0.0
    lost = (len(union_hot - aggregate) / len(union_hot)) if union_hot \
        else 0.0
    return {
        "aggregate_rules": len(aggregate),
        "union_hot_traces": len(union_hot),
        "polluted_fraction": round(polluted, 4),
        "lost_fraction": round(lost, 4),
        "per_instance_hot": {instance_id: len(hot_sets[instance_id])
                             for instance_id in sorted(hot_sets)},
    }


def _eviction_sensitivity(outcome: FleetOutcome, costs: CostModel) \
        -> List[dict]:
    """Re-fold the founder streams under different eviction policies."""
    rows = []
    for decay_rate, max_idle in EVICTION_GRID:
        store = ShardedProfileStore(
            num_shards=outcome.store.num_shards,
            decay_rate=decay_rate, max_idle_epochs=max_idle)
        fold_streams(store, outcome.fingerprint, outcome.streams)
        warm = build_warm_profile(store, outcome.fingerprint, costs)
        rows.append({
            "decay_rate": decay_rate,
            "max_idle_epochs": max_idle,
            "surviving_entries": store.entry_count(outcome.fingerprint),
            "evicted_total": store.evicted_total,
            "warm_rules": len(warm.rules) if warm is not None else 0,
        })
    return rows


def benchmark_report(benchmark: str, instances: int = 3,
                     scale: float = 0.1, family: str = "fixed",
                     depth: int = 2, heterogeneous: bool = True,
                     jobs: int = 0, timeout: Optional[float] = None,
                     costs: CostModel = DEFAULT_COSTS,
                     verbose: bool = False) -> dict:
    """The full fleet experiment for one benchmark."""
    config = FleetConfig(benchmark=benchmark, instances=instances,
                         scale=scale, family=family, depth=depth,
                         heterogeneous=heterogeneous, jobs=jobs,
                         timeout=timeout)
    outcome = run_fleet(config, costs=costs, verbose=verbose)

    warm_profile = build_warm_profile(outcome.store, outcome.fingerprint,
                                      costs)
    joiner_index = config.instances  # a seed no founder used

    cold_recorder = ProvenanceRecorder(label=f"{benchmark}/joiner-cold")
    cold_result, _cold_deltas = run_instance(config, joiner_index, costs,
                                             provenance=cold_recorder)
    cold_warm_decisions, cold_warm_events = \
        _provenance_counts(cold_recorder)

    warm_recorder = ProvenanceRecorder(label=f"{benchmark}/joiner-warm")
    warm_result, _warm_deltas = run_instance(config, joiner_index, costs,
                                             provenance=warm_recorder,
                                             warm_profile=warm_profile)
    warm_decisions, warm_events = _provenance_counts(warm_recorder)

    cold_first = cold_result.first_rule_clock
    warm_first = warm_result.first_rule_clock
    cold_steady = cold_result.steady_state_clock
    warm_steady = warm_result.steady_state_clock
    return {
        "benchmark": benchmark,
        "fingerprint": outcome.fingerprint,
        "config": dataclasses.asdict(config),
        "failures": [dataclasses.asdict(outcome.failures[instance_id])
                     for instance_id in sorted(outcome.failures)],
        "store": {
            "entries": outcome.store.entry_count(outcome.fingerprint),
            "epochs": outcome.store.epoch,
            "evicted_total": outcome.store.evicted_total,
            "heterogeneity": round(outcome.store.heterogeneity(), 4),
            "shard_contributions": {
                str(shard): counts for shard, counts in
                outcome.store.contribution_counts().items()},
        },
        "warm_profile": {
            "rules": len(warm_profile.rules) if warm_profile else 0,
            "seeded_weight": round(warm_profile.seeded_weight, 3)
            if warm_profile else 0.0,
            "source_weight": round(warm_profile.source_weight, 3)
            if warm_profile else 0.0,
        },
        "cold": _run_metrics(cold_result, cold_warm_decisions,
                             cold_warm_events),
        "warm": _run_metrics(warm_result, warm_decisions, warm_events),
        "cold_start_elimination": {
            "first_rule_clock_cold": cold_first,
            "first_rule_clock_warm": warm_first,
            "first_rule_saved_cycles": (cold_first - warm_first)
            if cold_first is not None and warm_first is not None else None,
            "steady_state_cold": cold_steady,
            "steady_state_warm": warm_steady,
            "steady_state_saved_cycles": (cold_steady - warm_steady)
            if cold_steady is not None and warm_steady is not None
            else None,
            "total_cycles_cold": cold_result.total_cycles,
            "total_cycles_warm": warm_result.total_cycles,
            "speedup_pct": round(
                100.0 * (cold_result.total_cycles
                         / warm_result.total_cycles - 1.0), 3)
            if warm_result.total_cycles else 0.0,
        },
        "dilution": _dilution(
            outcome,
            warm_profile.rule_keys if warm_profile else frozenset(),
            costs.hot_edge_threshold),
        "eviction_sensitivity": _eviction_sensitivity(outcome, costs),
    }


def build_fleet_bundle(benchmarks: Sequence[str], instances: int = 3,
                       scale: float = 0.1, family: str = "fixed",
                       depth: int = 2, heterogeneous: bool = True,
                       jobs: int = 0, timeout: Optional[float] = None,
                       costs: CostModel = DEFAULT_COSTS,
                       verbose: bool = False) -> dict:
    """The versioned ``repro.fleet/v1`` bundle over several benchmarks."""
    reports = [benchmark_report(name, instances=instances, scale=scale,
                                family=family, depth=depth,
                                heterogeneous=heterogeneous, jobs=jobs,
                                timeout=timeout, costs=costs,
                                verbose=verbose)
               for name in benchmarks]
    bundle = {
        "schema": FLEET_SCHEMA,
        "instances": instances,
        "scale": scale,
        "family": family,
        "depth": depth,
        "heterogeneous": heterogeneous,
        "benchmarks": reports,
    }
    bundle["problems"] = validate_fleet_bundle(bundle)
    bundle["ok"] = not bundle["problems"]
    return bundle


def validate_fleet_bundle(bundle: dict) -> List[str]:
    """Structural + acceptance checks; returns problems (empty = valid)."""
    problems: List[str] = []
    if bundle.get("schema") != FLEET_SCHEMA:
        problems.append(f"schema is {bundle.get('schema')!r}, "
                        f"expected {FLEET_SCHEMA!r}")
        return problems
    reports = bundle.get("benchmarks") or []
    if not reports:
        problems.append("bundle reports no benchmarks")
    for report in reports:
        name = report.get("benchmark", "?")
        for section in ("store", "cold", "warm", "cold_start_elimination",
                        "dilution", "eviction_sensitivity"):
            if section not in report:
                problems.append(f"{name}: missing section {section!r}")
        if report.get("failures"):
            problems.append(f"{name}: {len(report['failures'])} "
                            f"instance(s) failed")
        elimination = report.get("cold_start_elimination", {})
        cold_first = elimination.get("first_rule_clock_cold")
        warm_first = elimination.get("first_rule_clock_warm")
        if warm_first is None:
            problems.append(f"{name}: warm joiner never had a rule")
        elif cold_first is not None and warm_first >= cold_first:
            problems.append(
                f"{name}: warm joiner was not faster to its first rule "
                f"({warm_first:,.0f} >= {cold_first:,.0f} cycles)")
        warm = report.get("warm", {})
        if not warm.get("warm_started"):
            problems.append(f"{name}: warm joiner did not warm-start")
        if warm.get("warm_start_events", 0) < 1:
            problems.append(f"{name}: no warm_start provenance event")
        if warm.get("fleet_warm_decisions", 0) < 1:
            problems.append(f"{name}: no fleet-warm decisions in "
                            f"provenance")
        cold = report.get("cold", {})
        if cold.get("fleet_warm_decisions", 0):
            problems.append(f"{name}: cold joiner has fleet-warm "
                            f"decisions")
        if not report.get("eviction_sensitivity"):
            problems.append(f"{name}: eviction sensitivity grid empty")
    return problems


def render_fleet_bundle(bundle: dict) -> str:
    """Human-readable summary of a fleet bundle."""
    out: List[str] = []
    header = (f"Fleet report: {bundle['instances']} instance(s), "
              f"{bundle['family']}(max={bundle['depth']}), "
              f"scale {bundle['scale']:g}, "
              f"{'heterogeneous' if bundle['heterogeneous'] else 'uniform'}"
              f" seeds")
    out.append(header)
    out.append("")

    rows = []
    for report in bundle["benchmarks"]:
        elimination = report["cold_start_elimination"]
        cold_first = elimination["first_rule_clock_cold"]
        warm_first = elimination["first_rule_clock_warm"]
        rows.append([
            report["benchmark"],
            f"{cold_first:,.0f}" if cold_first is not None else "-",
            f"{warm_first:,.0f}" if warm_first is not None else "-",
            f"{elimination['steady_state_cold']:,.0f}"
            if elimination["steady_state_cold"] is not None else "-",
            f"{elimination['steady_state_warm']:,.0f}"
            if elimination["steady_state_warm"] is not None else "-",
            f"{elimination['speedup_pct']:+.2f}%",
            str(report["warm"]["fleet_warm_decisions"]),
        ])
    out.append(format_table(
        ["benchmark", "1st rule cold", "1st rule warm", "steady cold",
         "steady warm", "speedup", "warm decisions"], rows,
        title="Cold-start elimination (cycles)"))
    out.append("")

    rows = []
    for report in bundle["benchmarks"]:
        dilution = report["dilution"]
        store = report["store"]
        rows.append([
            report["benchmark"],
            str(store["entries"]),
            str(store["epochs"]),
            str(store["evicted_total"]),
            f"{store['heterogeneity']:.3f}",
            f"{dilution['polluted_fraction']:.3f}",
            f"{dilution['lost_fraction']:.3f}",
        ])
    out.append(format_table(
        ["benchmark", "entries", "epochs", "evicted", "heterogeneity",
         "polluted", "lost"], rows,
        title="Store state and dilution"))
    out.append("")

    rows = []
    for report in bundle["benchmarks"]:
        for policy in report["eviction_sensitivity"]:
            rows.append([
                report["benchmark"],
                f"{policy['decay_rate']:.2f}",
                str(policy["max_idle_epochs"]),
                str(policy["surviving_entries"]),
                str(policy["evicted_total"]),
                str(policy["warm_rules"]),
            ])
    out.append(format_table(
        ["benchmark", "decay", "max idle", "entries", "evicted",
         "warm rules"], rows,
        title="Eviction-policy sensitivity"))
    out.append("")

    if bundle["ok"]:
        out.append("fleet bundle: OK")
    else:
        out.append("fleet bundle: INVALID")
        for problem in bundle["problems"]:
            out.append(f"  - {problem}")
    return "\n".join(out)


def write_fleet_bundle(path: str, bundle: dict) -> None:
    """Atomically persist a bundle as sorted-key JSON."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True)
    os.replace(tmp, path)
