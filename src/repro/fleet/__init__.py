"""Fleet profile service: sharded aggregation and warm starts.

The paper's adaptive system learns context-sensitive inline rules from a
single runtime's private CCT/DCG profiles.  Datacenter-scale PGO
(AutoFDO-style, see PAPERS.md) gets its leverage from aggregating
sampled profiles *across a fleet* of instances running the same program
and warm-starting new instances from the aggregate.  This package is
that layer for the simulated AOS:

* :mod:`repro.fleet.store` -- a sharded profile store keyed by (program
  fingerprint, method, context-prefix), with versioned atomic
  snapshot/merge, decay-based staleness eviction, and per-shard
  contribution counts;
* :mod:`repro.fleet.harness` -- a multi-instance harness that runs N
  simulated runtimes over the same program with different workload
  seeds and streams each instance's profile deltas into the store at
  epoch boundaries;
* :mod:`repro.fleet.bootstrap` -- warm-start: derive a seed profile and
  fleet-origin rules from the aggregate and install them into a fresh
  :class:`~repro.aos.runtime.AdaptiveRuntime` before it executes;
* :mod:`repro.fleet.report` -- the ``repro fleet`` experiment: cold-start
  elimination, dilution, and eviction-policy sensitivity, emitted as a
  versioned ``repro.fleet/v1`` bundle.
"""

from repro.fleet.bootstrap import (WarmProfile, apply_warm_start,
                                   build_warm_profile)
from repro.fleet.harness import (FleetConfig, FleetOutcome, InstanceFailure,
                                 ProfileDelta, instance_spec, run_fleet,
                                 run_instance)
from repro.fleet.report import (FLEET_SCHEMA, build_fleet_bundle,
                                render_fleet_bundle, validate_fleet_bundle,
                                write_fleet_bundle)
from repro.fleet.store import (STORE_SCHEMA, ShardedProfileStore,
                               merge_snapshots, program_fingerprint)

__all__ = [
    "FLEET_SCHEMA", "FleetConfig", "FleetOutcome", "InstanceFailure",
    "ProfileDelta", "STORE_SCHEMA", "ShardedProfileStore", "WarmProfile",
    "apply_warm_start", "build_fleet_bundle", "build_warm_profile",
    "instance_spec", "merge_snapshots", "program_fingerprint",
    "render_fleet_bundle", "run_fleet", "run_instance",
    "validate_fleet_bundle", "write_fleet_bundle",
]
