"""Class hierarchy analysis for the mini-JVM.

Provides the static analyses the paper's inline oracle relies on
(Section 3.1): method resolution for virtual dispatch, and a CHA-style
"single possible target" query that lets the oracle statically bind call
sites without a guard.  When CHA finds multiple possible targets the oracle
falls back to profile-directed guarded inlining, which is where
context-sensitive profiles earn their keep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.jvm.errors import ExecutionError, ProgramError
from repro.jvm.program import MethodDef, Program


class ClassHierarchy:
    """Resolution and CHA queries over a validated :class:`Program`.

    The hierarchy distinguishes *declared* classes from *loaded* (ever
    instantiated) ones.  CHA for devirtualization must reason about the
    loaded world only: a selector with one implementation among loaded
    receiver classes can be statically bound today, but loading another
    class later can break that -- which is why compiled code records CHA
    dependencies and gets invalidated on class loading (see
    :meth:`mark_loaded` and the AOS database).
    """

    def __init__(self, program: Program):
        self._program = program
        self._loaded: set = set()
        #: Monotone counter bumped on every class load.  Caches keyed on
        #: loaded-world queries (guard acceptance sets, invalidation
        #: cones) include the generation in their key, so a class load
        #: invalidates them without any explicit notification.
        self.generation = 0
        self._loaded_targets_cache: Dict[str, frozenset] = {}
        self._resolution_cache: Dict[tuple, MethodDef] = {}
        self._subclasses: Dict[str, Set[str]] = {name: {name}
                                                 for name in program.classes}
        for name, cls in program.classes.items():
            sup = cls.superclass
            while sup is not None:
                self._subclasses[sup].add(name)
                sup = program.classes[sup].superclass

        # selector -> set of method ids that implement it anywhere.
        self._implementations: Dict[str, List[MethodDef]] = {}
        for method in program.methods():
            self._implementations.setdefault(method.name, []).append(method)

    # -- dispatch ----------------------------------------------------------

    def resolve(self, class_name: str, selector: str) -> MethodDef:
        """Resolve ``selector`` on dynamic class ``class_name``.

        Walks the superclass chain exactly like JVM virtual dispatch.
        """
        key = (class_name, selector)
        cached = self._resolution_cache.get(key)
        if cached is not None:
            return cached
        cname: Optional[str] = class_name
        while cname is not None:
            cls = self._program.classes.get(cname)
            if cls is None:
                raise ExecutionError(f"dispatch on unknown class {class_name}")
            method = cls.methods.get(selector)
            if method is not None:
                self._resolution_cache[key] = method
                return method
            cname = cls.superclass
        raise ExecutionError(
            f"no implementation of {selector!r} reachable from {class_name}")

    # -- CHA ---------------------------------------------------------------

    def implementations(self, selector: str) -> List[MethodDef]:
        """All methods implementing ``selector`` anywhere in the program."""
        return list(self._implementations.get(selector, []))

    def sole_implementation(self, selector: str) -> Optional[MethodDef]:
        """Whole-program CHA: the unique implementation, or ``None``.

        Closed-world variant (every declared class counted); the online
        oracle uses :meth:`sole_loaded_target` instead, which respects
        dynamic class loading.
        """
        impls = self._implementations.get(selector, [])
        if len(impls) == 1:
            return impls[0]
        return None

    # -- dynamic loading ------------------------------------------------------

    def mark_loaded(self, class_name: str) -> bool:
        """Record that ``class_name`` has been instantiated.

        Returns True the first time (i.e. when this call *loads* the
        class); the caller is responsible for running CHA-dependency
        invalidation then.
        """
        if class_name in self._loaded:
            return False
        if class_name not in self._program.classes:
            raise ProgramError(f"loading unknown class {class_name!r}")
        self._loaded.add(class_name)
        self._loaded_targets_cache.clear()
        self.generation += 1
        return True

    def is_loaded(self, class_name: str) -> bool:
        return class_name in self._loaded

    @property
    def loaded_count(self) -> int:
        return len(self._loaded)

    def loaded_targets(self, selector: str) -> frozenset:
        """Method ids ``selector`` can dispatch to on loaded receivers."""
        cached = self._loaded_targets_cache.get(selector)
        if cached is not None:
            return cached
        targets = set()
        for class_name in self._loaded:
            try:
                targets.add(self.resolve(class_name, selector).id)
            except ExecutionError:
                continue  # selector not understood by this class
        result = frozenset(targets)
        self._loaded_targets_cache[selector] = result
        return result

    def sole_loaded_target(self, selector: str) -> Optional[MethodDef]:
        """Loaded-world CHA: the unique dispatch target today, or ``None``.

        This is the paper's "class analysis + class hierarchy analysis"
        devirtualization: sound for the classes loaded so far, guarded
        against the future by CHA-dependency invalidation (plus
        pre-existence, which makes in-flight activations safe without
        deoptimization).
        """
        targets = self.loaded_targets(selector)
        if len(targets) == 1:
            return self._program.method(next(iter(targets)))
        return None

    def subclasses(self, class_name: str) -> Set[str]:
        """Reflexive-transitive subclass set of ``class_name``."""
        try:
            return set(self._subclasses[class_name])
        except KeyError:
            raise ProgramError(f"unknown class {class_name!r}") from None

    def overriders(self, method: MethodDef) -> List[MethodDef]:
        """Methods that override ``method`` in strict subclasses."""
        out = []
        for impl in self._implementations.get(method.name, []):
            if impl is method:
                continue
            if impl.klass in self._subclasses.get(method.klass, set()):
                out.append(impl)
        return out
