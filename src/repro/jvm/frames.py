"""Source-level stack frames for the simulated machine.

The trace listener (paper Section 3.3, "Optimized Stack Frames") must see
the *source-level* call stack even when calls have been physically inlined
into an optimized method.  Jikes RVM recovers that view from compiler
maps; this simulation gets the same observable behaviour by pushing a
lightweight frame for every source-level call -- inlined or not -- and
tagging frames that exist only inside an optimized method's inlined body.

Frames are deliberately tiny (slotted, three fields) because one is created
per dynamic call.
"""

from __future__ import annotations

from typing import List, Optional

from repro.jvm.program import MethodDef


class Frame:
    """One source-level activation.

    Attributes
    ----------
    method:
        The source method executing in this activation.
    site:
        The call-site id in the *caller* through which this activation was
        entered, or ``None`` for the program entry.
    inlined:
        True when this activation has no physical frame of its own -- its
        code was inlined into an enclosing optimized method.
    osr:
        True once this activation has crossed a tier boundary through
        on-stack replacement (its live state was mapped between frame
        layouts); the deopt planner's accounting keys on this.
    """

    __slots__ = ("method", "site", "inlined", "osr")

    def __init__(self, method: MethodDef, site: Optional[int], inlined: bool):
        self.method = method
        self.site = site
        self.inlined = inlined
        self.osr = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " (inlined)" if self.inlined else ""
        return f"<frame {self.method.id} via site {self.site}{tag}>"


def physical_method(stack: List[Frame]) -> Optional[MethodDef]:
    """The method owning the machine code currently executing.

    Walking down from the top, the first non-inlined frame is the physical
    frame; its method is what Jikes RVM's method listener would record and
    what the controller's recompilation decisions are keyed on.
    """
    for frame in reversed(stack):
        if not frame.inlined:
            return frame.method
    return None
