"""Runtime values for the mini-JVM.

The simulated machine manipulates three kinds of values:

* Python ``int`` -- primitive integers.
* :class:`Instance` -- a heap object tagged with its dynamic class.
* Python ``tuple`` of values -- an immutable "pool" (used by workloads to
  model collections of receiver objects).

Keeping the value universe tiny keeps the interpreter fast while still
expressing everything the paper's evaluation needs: virtual dispatch on a
receiver's dynamic class, data flowing through parameters, and
control-dependent calls.
"""

from __future__ import annotations

from typing import Tuple, Union


class Instance:
    """A heap object: nothing but an identity and a dynamic class name."""

    __slots__ = ("klass",)

    def __init__(self, klass: str):
        self.klass = klass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.klass}@{id(self):x}>"


Value = Union[int, Instance, Tuple["Value", ...]]


def dynamic_class(value: Value) -> str:
    """Return the dynamic class name used for virtual dispatch.

    Integers dispatch as ``"int"`` (workloads never actually invoke virtual
    methods on ints, but the interpreter raises a clean error through here
    if one does).
    """
    if isinstance(value, Instance):
        return value.klass
    raise TypeError(f"virtual dispatch on non-object value {value!r}")
