"""The mini-JVM substrate: program model, hierarchy, and execution engine.

Import concrete names from the submodules (or from the top-level ``repro``
package, which re-exports the public API); this ``__init__`` is kept
import-free to keep the module graph acyclic.
"""
