"""The simulated execution engine.

:class:`Machine` executes a :class:`~repro.jvm.program.Program` under a
cycle clock.  Methods run either as *baseline* code (interpreted at a cost
multiplier, compiled lazily at first invocation) or as *optimized* code
(driven by the inline tree of an installed
:class:`~repro.compiler.compiled_method.CompiledMethod`).

Everything the paper measures flows through here:

* application cycles (work, dispatch overhead, inline guards),
* the source-level shadow stack the trace listener samples (inlined
  activations get zero-cost marker frames, reproducing Jikes RVM's
  optimized-stack-frame decoding),
* the tick hook that drives timer-based sampling and the periodic
  organizers.

The interpreter is a plain recursive evaluator with integer-tag dispatch;
that keeps a full benchmark run in the hundred-millisecond range, which in
turn keeps the paper's 200-run parameter sweep laptop-scale.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.aos.cost_accounting import APP, COMPILATION, CostAccounting
from repro.compiler.code_cache import CodeCache
from repro.compiler.compiled_method import (DEOPT_CHEAP_EXIT,
                                            ELIDE_EXHAUSTIVE, ELIDE_OSR_EXIT,
                                            ELIDE_PREEXIST,
                                            GUARDED, InlineNode)
from repro.jvm.costs import CostModel
from repro.jvm.errors import ExecutionError
from repro.jvm.frames import Frame
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (
    E_ADD, E_ARG, E_CONST, E_LOCAL, E_LT, E_MOD, E_MUL, E_PICK, E_SUB,
    S_IF, S_INTERFACE_CALL, S_LET, S_LOOP, S_NEW, S_NEWPOOL, S_RETURN,
    S_STATIC_CALL, S_VIRTUAL_CALL, S_WORK,
    Expr, MethodDef, Program, Stmt,
)
from repro.jvm.values import Instance, Value
from repro.telemetry.recorder import NULL_RECORDER

#: Hard cap on source-level stack depth; exceeding it is a workload bug.
#: Kept below what Python's default recursion limit can host (each
#: simulated frame costs a few interpreter frames).
MAX_STACK_DEPTH = 220


class MachineStats:
    """Lightweight dynamic-execution counters (used by tests and reports)."""

    __slots__ = ("calls", "virtual_calls", "inline_entries", "guard_tests",
                 "guard_misses", "dispatches", "work_cycles",
                 "osr_transfers", "elided_entries", "deopt_entries",
                 "deopt_exits")

    def __init__(self) -> None:
        self.calls = 0            # out-of-line invocations
        self.virtual_calls = 0    # virtual sites executed (any outcome)
        self.inline_entries = 0   # inlined bodies entered
        self.guard_tests = 0      # individual guard tests executed
        self.guard_misses = 0     # guarded sites where every guard failed
        self.dispatches = 0       # full virtual dispatches paid
        self.work_cycles = 0      # raw (unscaled) work units executed
        self.osr_transfers = 0    # loops transferred onto optimized code
        self.elided_entries = 0   # inline entries through an elided guard
        self.deopt_entries = 0    # zero-cost entries at cheap-exit OSR sites
        self.deopt_exits = 0      # deoptimization exits (mapped live state)


class Machine:
    """Cycle-accounted executor for one program run."""

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 code_cache: CodeCache, costs: CostModel,
                 accounting: Optional[CostAccounting] = None,
                 tick_handler: Optional[Callable[["Machine"], None]] = None):
        self.program = program
        self.hierarchy = hierarchy
        self.code_cache = code_cache
        self.costs = costs
        self.accounting = accounting if accounting is not None else CostAccounting()
        self.tick_handler = tick_handler

        self.clock = 0.0
        #: Telemetry sink (spans for lazy baseline compiles, OSR instants);
        #: the adaptive runtime swaps in its recorder, the NullRecorder
        #: default charges and allocates nothing.
        self.telemetry = NULL_RECORDER
        #: The next clock value at which :attr:`tick_handler` fires.
        self.next_event = float("inf")
        #: Source-level shadow stack (includes inlined activations).
        self.stack: List[Frame] = []
        self.stats = MachineStats()

        self._baseline_mult = costs.baseline_exec_mult
        self._opt_mult = costs.opt_exec_mult
        self._inline_mult = costs.opt_exec_mult * (1.0 - costs.inline_work_discount)
        self._in_tick = False

        #: Back-edge counters for baseline loops (OSR trigger state).
        self.backedge_counts = {}
        #: Called once per method when its back-edge count crosses the OSR
        #: threshold while still at the baseline tier; the adaptive runtime
        #: points this at the controller's OSR request queue.
        self.osr_handler: Optional[Callable[[str], None]] = None
        self._osr_notified = set()
        #: Called the first time each class is instantiated (class
        #: loading); the adaptive runtime points this at CHA-dependency
        #: invalidation.
        self.class_load_handler: Optional[Callable[[str], None]] = None
        #: Pure-instrumentation hook fired once per executed virtual or
        #: interface dispatch with ``(site, target_method_id)`` -- the
        #: target that actually ran, whether reached through a guard, a
        #: devirtualized direct inline, or a plain dispatch.  Charges no
        #: cycles and must not mutate machine state; the soundness
        #: checker uses it to collect dynamic call-graph edges.
        self.dispatch_observer: Optional[Callable[[int, str], None]] = None
        #: Progress points (see :mod:`repro.telemetry.progress`): loop
        #: statements registered here by identity mark the named point
        #: once per *completed* iteration via :attr:`progress_observer`.
        #: Pure instrumentation under the same contract as
        #: ``dispatch_observer``: no cycles charged, no state mutated,
        #: so tracked and untracked runs are cycle-identical.
        self.progress_loops: dict = {}
        self.progress_observer: Optional[Callable[[str], None]] = None
        #: Pure-instrumentation hook fired once per inline entry through
        #: an *elided* guard with ``(site, elision_kind, entered_target_id,
        #: resolved_target_id)``.  Same contract as ``dispatch_observer``
        #: (no cycles, no mutation); the elision-replay soundness checker
        #: asserts ``entered == resolved`` for every event -- i.e. no
        #: elided guard would ever have failed.
        self.elision_observer: Optional[
            Callable[[int, str, str, str], None]] = None
        #: ``id(loop_stmt) -> live-local set`` from the deopt planner's
        #: liveness pass.  ``None`` (the default) charges no OSR
        #: state-mapping cycles, reproducing pre-planning cycle counts
        #: exactly; when set, each loop OSR transfer additionally pays
        #: ``len(live) * costs.osr_map_in_cost``.
        self.osr_liveness = None
        #: Pure-instrumentation hooks for the OSR soundness replay, all
        #: under the ``dispatch_observer`` contract (no cycles charged,
        #: no state mutated).  ``osr_entry_observer(method_id, loop_stmt,
        #: locals_)`` fires at each loop OSR transfer;
        #: ``deopt_exit_observer(site, exit_live, locals_)`` fires at each
        #: cheap-exit deoptimization; ``local_probe(locals_, index,
        #: is_read)`` fires on every local-slot access so the checker can
        #: compare actual reads against the statically computed live sets.
        self.osr_entry_observer: Optional[Callable] = None
        self.deopt_exit_observer: Optional[Callable] = None
        self.local_probe: Optional[Callable] = None

    # -- cost charging -----------------------------------------------------

    def charge(self, component: str, cycles: float) -> None:
        """Advance the clock, attribute cycles, and fire any due tick."""
        self.clock += cycles
        self.accounting.charge(component, cycles)
        if self.clock >= self.next_event and not self._in_tick:
            self._fire_tick()

    def _charge_app(self, cycles: float) -> None:
        self.clock += cycles
        self.accounting.charge(APP, cycles)
        if self.clock >= self.next_event and not self._in_tick:
            self._fire_tick()

    def _fire_tick(self) -> None:
        handler = self.tick_handler
        if handler is None:
            self.next_event = float("inf")
            return
        self._in_tick = True
        try:
            # The handler is responsible for advancing ``next_event``.
            handler(self)
        finally:
            self._in_tick = False

    # -- deoptimization ----------------------------------------------------

    def on_code_invalidated(self, method_id: str) -> None:
        """Re-arm OSR for a method whose optimized code was discarded.

        The OSR notification is once-per-method while code is absent; a
        method deoptimized back to baseline must be able to request OSR
        again, or its hot loops spin at baseline tier until the (much
        slower) hot-method sampling path notices.  Back-edge counts are
        deliberately kept: the loop already proved itself hot.
        """
        self._osr_notified.discard(method_id)

    # -- entry point -------------------------------------------------------

    def run(self, args: Sequence[Value] = ()) -> Value:
        """Execute the program's entry method to completion."""
        entry = self.program.entry_method()
        return self._invoke(entry, tuple(args), None)

    # -- invocation --------------------------------------------------------

    def _invoke(self, method: MethodDef, args: tuple, site: Optional[int]) -> Value:
        """Out-of-line invocation of ``method`` (its own physical frame)."""
        stack = self.stack
        if len(stack) >= MAX_STACK_DEPTH:
            raise ExecutionError(
                f"stack overflow invoking {method.id} at depth {len(stack)}")
        self.stats.calls += 1
        stack.append(Frame(method, site, False))
        try:
            compiled = self.code_cache.opt_version(method.id)
            if compiled is not None:
                result = self._exec_body(
                    method.body, args, [0] * method.num_locals,
                    self._opt_mult, compiled.root)
            else:
                if not self.code_cache.has_baseline(method.id):
                    # ``self_cycles`` is passed explicitly: the charge can
                    # fire a timer tick whose organizer spans nest inside
                    # this one, and the accounting delta would then fold
                    # their compilation-thread cycles into this span.
                    span_id = self.telemetry.begin_span(
                        COMPILATION, "baseline_compile", method=method.id)
                    cycles = self.code_cache.compile_baseline(method)
                    self.charge(COMPILATION, cycles)
                    self.telemetry.end_span(span_id, self_cycles=cycles,
                                            bytecodes=method.bytecodes)
                result = self._exec_body(
                    method.body, args, [0] * method.num_locals,
                    self._baseline_mult, None)
        finally:
            stack.pop()
        return 0 if result is None else result

    def _enter_inlined(self, callee: MethodDef, args: tuple,
                       site: int, node: InlineNode) -> Value:
        """Execute an inlined callee body (no physical frame, no call cost)."""
        stack = self.stack
        if len(stack) >= MAX_STACK_DEPTH:
            raise ExecutionError(
                f"stack overflow inlining {callee.id} at depth {len(stack)}")
        self.stats.inline_entries += 1
        stack.append(Frame(callee, site, True))
        try:
            result = self._exec_body(
                callee.body, args, [0] * callee.num_locals,
                self._inline_mult, node)
        finally:
            stack.pop()
        return 0 if result is None else result

    # -- statement execution ------------------------------------------------

    def _exec_body(self, body: Sequence[Stmt], args: tuple, locals_: list,
                   mult: float, node: Optional[InlineNode]):
        """Execute statements; return the Return value or ``None`` if none."""
        costs = self.costs
        probe = self.local_probe
        for stmt in body:
            k = stmt.kind
            if k == S_WORK:
                cost = stmt.cost
                self.stats.work_cycles += cost
                self._charge_app(cost * mult)
            elif k == S_STATIC_CALL:
                decision = node.decisions.get(stmt.site) if node is not None else None
                call_args = tuple(self._eval(a, args, locals_) for a in stmt.args)
                if decision is not None:
                    option = decision.sole
                    result = self._enter_inlined(
                        option.target, call_args, stmt.site, option.node)
                else:
                    self._charge_app(costs.call_overhead * mult)
                    result = self._invoke(
                        self.program.method(stmt.target), call_args, stmt.site)
                if stmt.dst is not None:
                    locals_[stmt.dst] = result
                    if probe is not None:
                        probe(locals_, stmt.dst, False)
            elif k == S_VIRTUAL_CALL or k == S_INTERFACE_CALL:
                self.stats.virtual_calls += 1
                receiver = self._eval(stmt.receiver, args, locals_)
                if not isinstance(receiver, Instance):
                    raise ExecutionError(
                        f"virtual call at site {stmt.site} on non-object "
                        f"{receiver!r}")
                result = self._virtual_call(stmt, receiver, args, locals_,
                                            mult, node,
                                            interface=(k == S_INTERFACE_CALL))
                if stmt.dst is not None:
                    locals_[stmt.dst] = result
                    if probe is not None:
                        probe(locals_, stmt.dst, False)
            elif k == S_LET:
                locals_[stmt.dst] = self._eval(stmt.expr, args, locals_)
                if probe is not None:
                    probe(locals_, stmt.dst, False)
            elif k == S_LOOP:
                count = self._eval(stmt.count, args, locals_)
                idx = stmt.index_local
                loop_body = stmt.body
                progress = (self.progress_loops.get(id(stmt))
                            if self.progress_loops else None)
                if node is None and costs.osr_enabled:
                    # Baseline tier: count back edges, request compilation
                    # past the threshold, and poll for installed optimized
                    # code to transfer onto (on-stack replacement).
                    method = self.stack[-1].method
                    method_id = method.id
                    poll = costs.osr_poll_period
                    edges = self.backedge_counts.get(method_id, 0)
                    for i in range(count):
                        locals_[idx] = i
                        if probe is not None:
                            probe(locals_, idx, False)
                        result = self._exec_body(loop_body, args, locals_,
                                                 mult, node)
                        if result is not None:
                            self.backedge_counts[method_id] = edges + i + 1
                            return result
                        if progress is not None:
                            self.progress_observer(progress)
                        if (i + 1) % poll == 0:
                            total = edges + i + 1
                            if (total >= costs.osr_backedge_threshold
                                    and method_id not in self._osr_notified
                                    and self.osr_handler is not None):
                                self._osr_notified.add(method_id)
                                self.osr_handler(method_id)
                            if node is None:
                                compiled = self.code_cache.opt_version(
                                    method_id)
                                if compiled is not None:
                                    # Transfer the rest of this loop (and
                                    # the remainder of the activation)
                                    # onto the optimized code.
                                    node = compiled.root
                                    mult = self._opt_mult
                                    self.stats.osr_transfers += 1
                                    self.stack[-1].osr = True
                                    if self.osr_liveness is not None:
                                        # Map the live frame state into
                                        # the optimized layout: the OSR
                                        # transition's dominant cost.
                                        live = self.osr_liveness.get(
                                            id(stmt), ())
                                        self._charge_app(
                                            len(live)
                                            * costs.osr_map_in_cost)
                                    if self.osr_entry_observer is not None:
                                        self.osr_entry_observer(
                                            method_id, stmt, locals_)
                                    self.telemetry.instant(
                                        APP, "osr_transfer",
                                        method=method_id)
                    self.backedge_counts[method_id] = edges + count
                else:
                    for i in range(count):
                        locals_[idx] = i
                        if probe is not None:
                            probe(locals_, idx, False)
                        result = self._exec_body(loop_body, args, locals_,
                                                 mult, node)
                        if result is not None:
                            return result
                        if progress is not None:
                            self.progress_observer(progress)
            elif k == S_IF:
                cond = self._eval(stmt.cond, args, locals_)
                branch = stmt.then_body if cond else stmt.else_body
                if branch:
                    result = self._exec_body(branch, args, locals_, mult, node)
                    if result is not None:
                        return result
            elif k == S_NEW:
                if self.hierarchy.mark_loaded(stmt.class_name) \
                        and self.class_load_handler is not None:
                    self.class_load_handler(stmt.class_name)
                locals_[stmt.dst] = Instance(stmt.class_name)
                if probe is not None:
                    probe(locals_, stmt.dst, False)
            elif k == S_NEWPOOL:
                for class_name in stmt.class_names:
                    if self.hierarchy.mark_loaded(class_name) \
                            and self.class_load_handler is not None:
                        self.class_load_handler(class_name)
                locals_[stmt.dst] = tuple(Instance(c) for c in stmt.class_names)
                if probe is not None:
                    probe(locals_, stmt.dst, False)
            elif k == S_RETURN:
                if stmt.expr is None:
                    return 0
                return self._eval(stmt.expr, args, locals_)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown statement kind {k}")
        return None

    def _virtual_call(self, stmt, receiver: Instance, args: tuple,
                      locals_: list, mult: float,
                      node: Optional[InlineNode],
                      interface: bool = False) -> Value:
        costs = self.costs
        dispatch_cost = (costs.interface_dispatch if interface
                         else costs.virtual_dispatch)
        call_args = (receiver,) + tuple(
            self._eval(a, args, locals_) for a in stmt.args)
        decision = node.decisions.get(stmt.site) if node is not None else None
        observer = self.dispatch_observer
        if decision is not None:
            if decision.kind == GUARDED:
                resolved = self.hierarchy.resolve(receiver.klass, stmt.selector)
                if observer is not None:
                    observer(stmt.site, resolved.id)
                for option in decision.options:
                    elided = option.elided
                    if elided is None:
                        self.stats.guard_tests += 1
                        self._charge_app(costs.guard_test * mult)
                        if option.target is resolved:
                            return self._enter_inlined(
                                resolved, call_args, stmt.site, option.node)
                    elif elided == ELIDE_OSR_EXIT:
                        # Cheap-exit OSR point: the compiled code carries
                        # no test at all -- entry happens through the
                        # dispatch the machine already resolved, so a
                        # matching target is entered at zero guard cost
                        # and a mismatch falls through toward the
                        # deoptimization exit below.
                        if option.target is resolved:
                            self.stats.deopt_entries += 1
                            return self._enter_inlined(
                                resolved, call_args, stmt.site, option.node)
                    elif elided in (ELIDE_PREEXIST, ELIDE_EXHAUSTIVE):
                        # Guard compiled out: for "preexist" invalidation
                        # protects the entry; for "exhaustive" (always
                        # the last option) every earlier guard missing
                        # implies this one hits.  Either way the compiled
                        # code jumps straight into the inlined body at
                        # zero cost.  Entering ``option.target`` (not
                        # ``resolved``) is the point: if the argument
                        # were wrong the wrong body would run, which is
                        # what the elision-replay checker detects.
                        self.stats.elided_entries += 1
                        if self.elision_observer is not None:
                            self.elision_observer(stmt.site, elided,
                                                  option.target.id,
                                                  resolved.id)
                        return self._enter_inlined(
                            option.target, call_args, stmt.site, option.node)
                    else:  # "dominated": reuse the dominating guard's result
                        dom_selector, dom_target = option.elided_on
                        if self.hierarchy.resolve(
                                receiver.klass, dom_selector) is dom_target:
                            # The dominating guard passed, which implies
                            # this guard would have too (acceptance-set
                            # containment); no test is charged because
                            # the compiled code branches on the already-
                            # computed outcome.
                            self.stats.elided_entries += 1
                            if self.elision_observer is not None:
                                self.elision_observer(stmt.site, elided,
                                                      option.target.id,
                                                      resolved.id)
                            return self._enter_inlined(
                                option.target, call_args, stmt.site,
                                option.node)
                        # Dominating guard missed: treat as a miss here
                        # too and continue to the next option / fallback.
                if decision.deopt == DEOPT_CHEAP_EXIT:
                    # Broken speculation at a cheap-exit OSR point: map
                    # the site's pruned live state out of the optimized
                    # frame and finish the dispatch at the baseline tier
                    # (the deoptimization exit is expensive exactly so
                    # the fast path could carry no guard).
                    self.stats.deopt_exits += 1
                    self._charge_app(
                        len(decision.exit_live) * costs.osr_map_out_cost
                        + dispatch_cost * self._baseline_mult)
                    if self.deopt_exit_observer is not None:
                        self.deopt_exit_observer(stmt.site,
                                                 decision.exit_live, locals_)
                    return self._invoke(resolved, call_args, stmt.site)
                # Every guard failed: fall back to full dispatch.
                self.stats.guard_misses += 1
                self.stats.dispatches += 1
                self._charge_app(dispatch_cost * mult)
                return self._invoke(resolved, call_args, stmt.site)
            # DIRECT: statically bound by CHA, no guard executed.
            option = decision.sole
            if observer is not None:
                observer(stmt.site, option.target.id)
            return self._enter_inlined(
                option.target, call_args, stmt.site, option.node)
        resolved = self.hierarchy.resolve(receiver.klass, stmt.selector)
        if observer is not None:
            observer(stmt.site, resolved.id)
        self.stats.dispatches += 1
        self._charge_app(dispatch_cost * mult)
        return self._invoke(resolved, call_args, stmt.site)

    # -- expression evaluation ----------------------------------------------

    def _eval(self, expr: Expr, args: tuple, locals_: list) -> Value:
        k = expr.kind
        if k == E_CONST:
            return expr.value
        if k == E_ARG:
            return args[expr.index]
        if k == E_LOCAL:
            if self.local_probe is not None:
                self.local_probe(locals_, expr.index, True)
            return locals_[expr.index]
        if k == E_ADD:
            return self._eval(expr.left, args, locals_) + \
                self._eval(expr.right, args, locals_)
        if k == E_SUB:
            return self._eval(expr.left, args, locals_) - \
                self._eval(expr.right, args, locals_)
        if k == E_MUL:
            return self._eval(expr.left, args, locals_) * \
                self._eval(expr.right, args, locals_)
        if k == E_MOD:
            return self._eval(expr.left, args, locals_) % \
                self._eval(expr.right, args, locals_)
        if k == E_LT:
            return 1 if (self._eval(expr.left, args, locals_)
                         < self._eval(expr.right, args, locals_)) else 0
        if k == E_PICK:
            pool = self._eval(expr.pool, args, locals_)
            if not isinstance(pool, tuple) or not pool:
                raise ExecutionError(f"Pick from non-pool value {pool!r}")
            index = self._eval(expr.index, args, locals_)
            return pool[index % len(pool)]
        raise ExecutionError(f"unknown expression kind {k}")  # pragma: no cover
