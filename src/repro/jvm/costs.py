"""Cost-model constants for the simulated JVM and adaptive optimization system.

The reproduction replaces Jikes RVM running on a Pentium-3 with a
cycle-accounted simulation.  Every quantity the paper measures (wall-clock
time, optimized code space, compile time, AOS component overhead) is derived
from the constants defined here.  The constants were tuned *once* so the
overall shapes of the paper's Figures 4-6 hold, and are then frozen;
individual experiments never re-tune them.

Units
-----
* **cycles** -- the abstract unit of simulated time.  One unit of ``Work``
  in a method body costs one cycle at the optimizing tier.
* **bytecodes** -- static size of a method body.  Method size classes
  (tiny/small/medium/large) are expressed in bytecodes relative to the size
  of a call instruction, exactly mirroring Section 3.1 of the paper.
* **bytes** -- machine-code bytes emitted by a compiler tier per bytecode
  compiled.  Figure 5 reports optimized machine-code bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Execution-tier costs
# ---------------------------------------------------------------------------

#: Multiplier applied to all work executed in baseline-compiled code.  Jikes
#: RVM's non-optimizing baseline compiler produces code several times slower
#: than the optimizing compiler's output.
BASELINE_EXEC_MULT = 2.6

#: Multiplier for optimized code (the reference tier).
OPT_EXEC_MULT = 1.0

#: Cycles of call overhead for a statically-bound (direct) call that was not
#: inlined: argument shuffling, frame construction, return.
CALL_OVERHEAD = 6

#: Cycles of overhead for a virtual dispatch that was not inlined or whose
#: inline guards all failed: vtable load + indirect branch + call overhead.
VIRTUAL_DISPATCH = 9

#: Extra cycles when the dispatch goes through an interface (unused by the
#: default workloads but part of the model).
INTERFACE_DISPATCH = 16

#: Cycles for a single inline guard (class test) executed at a guarded
#: inline site.  A successful guard replaces a VIRTUAL_DISPATCH.
GUARD_TEST = 2

#: Fraction of body work saved when a callee is inlined into optimized code.
#: Models the indirect benefit of inlining: cross-boundary optimization such
#: as constant folding and redundancy elimination (paper Section 1).
INLINE_WORK_DISCOUNT = 0.08


# ---------------------------------------------------------------------------
# Method size classes (paper Section 3.1)
# ---------------------------------------------------------------------------

#: Size of a call instruction, in bytecode units.  All size-class thresholds
#: are multiples of this, as in the paper ("2x the number of instructions
#: required for a method call", etc.).
CALL_UNITS = 4

#: Tiny methods: body smaller than 2x a call.  Unconditionally inlined when
#: statically bound without a guard.
TINY_LIMIT = 2 * CALL_UNITS

#: Small methods: 2-5x a call.  Inlined subject to space/depth heuristics.
SMALL_LIMIT = 5 * CALL_UNITS

#: Medium methods: 5-25x a call.  Candidates for profile-directed inlining
#: only.
MEDIUM_LIMIT = 25 * CALL_UNITS


# ---------------------------------------------------------------------------
# Compiler tiers
# ---------------------------------------------------------------------------

#: Cycles per bytecode for the non-optimizing baseline compiler.
BASELINE_COMPILE_CYCLES_PER_BC = 2

#: Cycles per bytecode for the optimizing compiler.  The cost is charged on
#: the *inlined* size of the compiled method, which is how context-sensitive
#: inlining reduces compile time in the paper.
OPT_COMPILE_CYCLES_PER_BC = 14

#: Machine-code bytes per bytecode for each tier.  Baseline code is bulkier
#: per bytecode; optimized code is denser but inlining multiplies the number
#: of bytecodes compiled.
BASELINE_BYTES_PER_BC = 10
OPT_BYTES_PER_BC = 6


# ---------------------------------------------------------------------------
# Sampling and organizers (paper Section 3.2)
# ---------------------------------------------------------------------------

#: Cycles between timer samples.  Jikes RVM samples at ~100Hz; the workloads
#: here run for single-digit millions of cycles, so the interval is scaled to
#: land a few hundred to a few thousand samples per run.
SAMPLE_INTERVAL = 1_600

#: Fixed cycles charged to the "AOS listeners" component per sample taken
#: (method listener + buffer insertion).
METHOD_LISTENER_COST = 4

#: Cycles charged per stack frame traversed by the edge/trace listener.  The
#: trace listener walks deeper than the edge listener; this is how the paper
#: observes up to 2x listener overhead that is still <0.06% of execution.
TRACE_FRAME_COST = 3

#: Number of buffered trace samples that triggers the dynamic call graph
#: organizer to wake up and process the buffer.
TRACE_BUFFER_CAPACITY = 32

#: Cycles the dynamic call graph organizer spends ingesting one sample.
DCG_INGEST_COST = 6

#: Cycles the adaptive-inlining organizer spends examining one trace entry
#: while deriving inlining rules.
AI_EXAMINE_COST = 1

#: Cycles the hot-methods organizer spends aggregating one method sample.
METHOD_ORGANIZER_COST = 4

#: Cycles the controller spends evaluating one organizer event.
CONTROLLER_EVENT_COST = 15

#: Cycles the decay organizer spends decaying one profile entry.
DECAY_ENTRY_COST = 2

#: Cycles the missing-edge organizer spends per (hot method, rule) check.
MISSING_EDGE_CHECK_COST = 2

#: How often (in cycles) the periodic organizers wake up.
ORGANIZER_PERIOD = 32_000

#: How often (in cycles) the decay organizer runs.
DECAY_PERIOD = 600_000

#: Multiplicative decay applied to dynamic call graph weights each decay
#: period, biasing hot-edge detection toward recent samples (Section 3.2).
DECAY_RATE = 0.8


# ---------------------------------------------------------------------------
# Speculation-risk static analysis (guard elision)
# ---------------------------------------------------------------------------

#: Whether the compiler runs the speculation dataflow pass (receiver
#: preexistence, dominance-based guard elision, invalidation-cone risk).
#: Off by default: elision is opt-in, never ambient, so default runs stay
#: byte-identical to the golden decision logs.
SPECULATION_ENABLED = False

#: A preexistent-receiver guard is elided only when the assumption's
#: churn-weighted invalidation risk is at or below this threshold.
#: Risk is the assumption's share of predicted future class-loading
#: churn, normalized to [0, 1].
SPECULATION_ELIDE_MAX_RISK = 0.9

#: Above this risk the speculative inline is refused outright (reason
#: ``speculation-risk``): compiling code that the next class load will
#: invalidate is pure waste.  Infinite by default so enabling the pass
#: flips no verdicts; sweeps lower it to explore refusal.
SPECULATION_REFUSE_MIN_RISK = float("inf")


# ---------------------------------------------------------------------------
# OSR liveness and deoptimization planning
# ---------------------------------------------------------------------------

#: Whether the compiler runs the liveness/deopt planning pass (backward
#: live-variable analysis, per-OSR-point state-mapping costs, per-site
#: deopt strategy selection).  Off by default under the same contract as
#: ``SPECULATION_ENABLED``: stock runs stay byte-identical to the golden
#: decision logs.
DEOPT_PLANNING_ENABLED = False

#: Cycles charged per live local mapped *into* optimized state at an OSR
#: entry (loop back-edge transfer).  D'Elia & Demetrescu observe the OSR
#: transition cost is dominated by this live-state mapping.
OSR_MAP_IN_COST = 3

#: Cycles charged per live local mapped *out* of optimized state at a
#: deoptimization exit (an ``osr-exit`` site whose speculation failed).
OSR_MAP_OUT_COST = 2

#: Per-site deoptimization strategy, a sweepable policy dimension:
#:
#: * ``"guard"``    -- every speculative inline keeps its compiled guard
#:   chain with an in-code dispatch fallback (the stock behaviour).
#: * ``"osr-exit"`` -- every eligible guarded site is compiled as a
#:   cheap-exit OSR point instead: the fast path pays no guard cycles,
#:   and a failed speculation pays a live-state-mapped exit plus a
#:   baseline-tier dispatch.
#: * ``"planned"``  -- the :class:`~repro.analysis.deopt.DeoptPlanner`
#:   chooses per site from {full-guard, cheap-exit-osr, guard-free}
#:   using liveness-derived exit cost, speculation risk, and the k-CFA
#:   precision lattice.
DEOPT_STRATEGY = "guard"

#: The closed strategy vocabulary for :data:`DEOPT_STRATEGY`.
DEOPT_STRATEGIES = ("guard", "osr-exit", "planned")


# ---------------------------------------------------------------------------
# Adaptive-inlining policy constants
# ---------------------------------------------------------------------------

#: An edge/trace becomes an inlining rule when it contributes more than this
#: fraction of the total profile weight (paper Section 4, footnote: 1.5%).
HOT_EDGE_THRESHOLD = 0.015

#: The AI organizer waits until this much total profile weight has
#: accumulated before deriving rules; very early profiles are too noisy to
#: act on.
AI_MIN_TOTAL_WEIGHT = 30.0

#: Maximum number of distinct targets inlined under guards at one virtual
#: call site.
MAX_GUARDED_TARGETS = 3

#: Guarded inlining requires the chosen targets to cover at least this
#: fraction of the call site's profile weight in the applicable contexts
#: (the "skewed receiver distribution" requirement): inlining targets that
#: miss often is a net loss, since every miss pays the guards *and* the
#: full virtual dispatch.
GUARD_COVERAGE_MIN = 0.8

#: Maximum inlining depth in one compiled method.
MAX_INLINE_DEPTH = 6

#: A root method's inlined size may grow to at most this multiple of its
#: original size before further *small-method* inlining is refused...
SPACE_EXPANSION_FACTOR = 5.0

#: ...and never beyond this absolute inlined-bytecode cap.
ABSOLUTE_SIZE_CAP = 768

#: Number of method samples a method must accumulate before the controller
#: considers it hot.
HOT_METHOD_SAMPLES = 4

#: The controller defers first-time optimizing compilations until this much
#: total profile weight exists: compiling against an immature profile means
#: recompiling (missing-edge) as soon as the real rules surface.
FIRST_COMPILE_MIN_WEIGHT = 90.0

#: On-stack replacement: a baseline method whose loops have executed this
#: many back edges is queued for optimizing compilation even if the method
#: listener never catches it (long-running loops hide from invocation-
#: biased sampling), and its executing loop transfers to the new code.
OSR_BACKEDGE_THRESHOLD = 800

#: How often (in back edges) a baseline loop polls for freshly installed
#: optimized code to transfer onto.
OSR_POLL_PERIOD = 64

#: Minimum cycles between successive optimizing recompilations of the same
#: method.  Profile-driven recompilation requests arriving faster than this
#: are deferred; this bounds recompile churn when rule sets evolve quickly.
RECOMPILE_COOLDOWN = 400_000

#: The controller's analytic model: estimated speedup of optimized over
#: baseline code, used in the cost/benefit recompilation test.
ESTIMATED_OPT_SPEEDUP = BASELINE_EXEC_MULT / OPT_EXEC_MULT


@dataclass
class CostModel:
    """A bundle of all tunable constants, overridable per experiment.

    The module-level constants above are the frozen defaults; ablation
    experiments construct modified :class:`CostModel` instances instead of
    mutating module state.
    """

    baseline_exec_mult: float = BASELINE_EXEC_MULT
    opt_exec_mult: float = OPT_EXEC_MULT
    call_overhead: int = CALL_OVERHEAD
    virtual_dispatch: int = VIRTUAL_DISPATCH
    interface_dispatch: int = INTERFACE_DISPATCH
    guard_test: int = GUARD_TEST
    inline_work_discount: float = INLINE_WORK_DISCOUNT

    call_units: int = CALL_UNITS
    tiny_limit: int = TINY_LIMIT
    small_limit: int = SMALL_LIMIT
    medium_limit: int = MEDIUM_LIMIT

    baseline_compile_cycles_per_bc: int = BASELINE_COMPILE_CYCLES_PER_BC
    opt_compile_cycles_per_bc: int = OPT_COMPILE_CYCLES_PER_BC
    baseline_bytes_per_bc: int = BASELINE_BYTES_PER_BC
    opt_bytes_per_bc: int = OPT_BYTES_PER_BC

    sample_interval: int = SAMPLE_INTERVAL
    method_listener_cost: int = METHOD_LISTENER_COST
    trace_frame_cost: int = TRACE_FRAME_COST
    trace_buffer_capacity: int = TRACE_BUFFER_CAPACITY
    dcg_ingest_cost: int = DCG_INGEST_COST
    ai_examine_cost: int = AI_EXAMINE_COST
    method_organizer_cost: int = METHOD_ORGANIZER_COST
    controller_event_cost: int = CONTROLLER_EVENT_COST
    decay_entry_cost: int = DECAY_ENTRY_COST
    missing_edge_check_cost: int = MISSING_EDGE_CHECK_COST
    organizer_period: int = ORGANIZER_PERIOD
    decay_period: int = DECAY_PERIOD
    decay_rate: float = DECAY_RATE

    hot_edge_threshold: float = HOT_EDGE_THRESHOLD
    ai_min_total_weight: float = AI_MIN_TOTAL_WEIGHT
    max_guarded_targets: int = MAX_GUARDED_TARGETS
    guard_coverage_min: float = GUARD_COVERAGE_MIN
    max_inline_depth: int = MAX_INLINE_DEPTH
    space_expansion_factor: float = SPACE_EXPANSION_FACTOR
    absolute_size_cap: int = ABSOLUTE_SIZE_CAP
    hot_method_samples: int = HOT_METHOD_SAMPLES
    first_compile_min_weight: float = FIRST_COMPILE_MIN_WEIGHT
    recompile_cooldown: int = RECOMPILE_COOLDOWN
    osr_enabled: bool = True
    osr_backedge_threshold: int = OSR_BACKEDGE_THRESHOLD
    osr_poll_period: int = OSR_POLL_PERIOD

    speculation_enabled: bool = SPECULATION_ENABLED
    speculation_elide_max_risk: float = SPECULATION_ELIDE_MAX_RISK
    speculation_refuse_min_risk: float = SPECULATION_REFUSE_MIN_RISK

    deopt_planning_enabled: bool = DEOPT_PLANNING_ENABLED
    osr_map_in_cost: int = OSR_MAP_IN_COST
    osr_map_out_cost: int = OSR_MAP_OUT_COST
    deopt_strategy: str = DEOPT_STRATEGY

    @property
    def estimated_opt_speedup(self) -> float:
        """Speedup the controller's analytic model assumes for opt code."""
        return self.baseline_exec_mult / self.opt_exec_mult

    def replace(self, **overrides: object) -> "CostModel":
        """Return a copy of this model with the given fields replaced.

        Unknown field names raise :class:`~repro.jvm.errors.ConfigError`
        naming the closest valid fields.  A misspelled override that
        slipped through would silently run the *baseline* model -- in a
        causal-profiling experiment that corrupts the whole profile, so
        the failure must be loud and diagnosable.
        """
        import dataclasses
        import difflib

        from repro.jvm.errors import ConfigError

        valid = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(overrides) - valid)
        if unknown:
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(name, sorted(valid), n=1)
                hints.append(f"{name!r}"
                             + (f" (did you mean {close[0]!r}?)"
                                if close else ""))
            raise ConfigError(
                f"unknown CostModel field(s): {', '.join(hints)}; "
                f"valid fields: {', '.join(sorted(valid))}")
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


#: The default, frozen cost model used by all headline experiments.
DEFAULT_COSTS = CostModel()
