"""Exception hierarchy for the reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with one handler.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ProgramError(ReproError):
    """A malformed program model (bad class refs, duplicate sites, ...)."""


class ExecutionError(ReproError):
    """A runtime fault in the simulated machine (bad dispatch, bad value)."""


class CompilationError(ReproError):
    """The simulated compiler was asked to do something impossible."""


class ConfigError(ReproError):
    """An experiment or policy was configured inconsistently."""
