"""Program model for the mini-JVM: classes, methods, and a statement bytecode.

A *program* is a set of classes, each declaring methods.  Method bodies are
small trees of statements over a tiny expression language.  The model is
deliberately minimal -- just enough to express the call-graph shapes the
paper's evaluation depends on:

* straight-line work (``Work``),
* statically-bound calls (``StaticCall``) and virtual dispatch
  (``VirtualCall``) with per-site identifiers,
* parameter-dependent control flow (``If``) for the paper's
  "control-dependent call site" motivation (Section 2),
* loops with an induction variable (``Loop``) so hot code exists,
* object allocation (``New``/``NewPool``) and pool indexing (``Pick``) so
  receiver-class distributions can be correlated with calling context.

Statement and expression nodes carry an integer ``kind`` tag used by the
interpreter's dispatch loop; this is measurably faster than ``isinstance``
chains and keeps the simulation laptop-scale.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.jvm.errors import ProgramError

# ---------------------------------------------------------------------------
# Expression kinds
# ---------------------------------------------------------------------------

E_CONST = 0
E_ARG = 1
E_LOCAL = 2
E_ADD = 3
E_SUB = 4
E_MUL = 5
E_MOD = 6
E_PICK = 7
E_LT = 8


class Expr:
    """Base class for expressions (all concrete nodes are slotted)."""

    __slots__ = ()
    kind: int = -1


class Const(Expr):
    """A literal constant value."""

    __slots__ = ("value",)
    kind = E_CONST

    def __init__(self, value):
        self.value = value

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Arg(Expr):
    """The i-th parameter of the enclosing method."""

    __slots__ = ("index",)
    kind = E_ARG

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:
        return f"Arg({self.index})"


class Local(Expr):
    """The i-th local slot of the enclosing method."""

    __slots__ = ("index",)
    kind = E_LOCAL

    def __init__(self, index: int):
        self.index = index

    def __repr__(self) -> str:
        return f"Local({self.index})"


class _BinOp(Expr):
    __slots__ = ("left", "right")

    def __init__(self, left: Expr, right: Expr):
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.left!r}, {self.right!r})"


class Add(_BinOp):
    """Integer addition."""

    __slots__ = ()
    kind = E_ADD


class Sub(_BinOp):
    """Integer subtraction."""

    __slots__ = ()
    kind = E_SUB


class Mul(_BinOp):
    """Integer multiplication."""

    __slots__ = ()
    kind = E_MUL


class Mod(_BinOp):
    """Integer modulo (with Python semantics; divisor must be nonzero)."""

    __slots__ = ()
    kind = E_MOD


class Lt(_BinOp):
    """Integer comparison: 1 when left < right, else 0."""

    __slots__ = ()
    kind = E_LT


class Pick(Expr):
    """Index into a pool value, wrapping around: ``pool[index % len(pool)]``.

    Workloads use pools of pre-allocated instances to drive receiver-class
    distributions at virtual call sites.
    """

    __slots__ = ("pool", "index")
    kind = E_PICK

    def __init__(self, pool: Expr, index: Expr):
        self.pool = pool
        self.index = index

    def __repr__(self) -> str:
        return f"Pick({self.pool!r}, {self.index!r})"


# ---------------------------------------------------------------------------
# Statement kinds
# ---------------------------------------------------------------------------

S_WORK = 0
S_LET = 1
S_NEW = 2
S_NEWPOOL = 3
S_STATIC_CALL = 4
S_VIRTUAL_CALL = 5
S_IF = 6
S_LOOP = 7
S_RETURN = 8
S_INTERFACE_CALL = 9


class Stmt:
    """Base class for statements."""

    __slots__ = ()
    kind: int = -1


class Work(Stmt):
    """``cost`` cycles of straight-line computation.

    At the optimizing tier one unit of work costs one cycle; the baseline
    tier multiplies it; inlined bodies receive a small discount (see
    :mod:`repro.jvm.costs`).  ``cost`` also contributes to the method's
    static bytecode size.
    """

    __slots__ = ("cost",)
    kind = S_WORK

    def __init__(self, cost: int):
        if cost < 0:
            raise ProgramError(f"negative work cost {cost}")
        self.cost = cost

    def __repr__(self) -> str:
        return f"Work({self.cost})"


class Let(Stmt):
    """Evaluate an expression into a local slot."""

    __slots__ = ("dst", "expr")
    kind = S_LET

    def __init__(self, dst: int, expr: Expr):
        self.dst = dst
        self.expr = expr

    def __repr__(self) -> str:
        return f"Let({self.dst}, {self.expr!r})"


class New(Stmt):
    """Allocate a fresh instance of ``class_name`` into a local slot."""

    __slots__ = ("dst", "class_name")
    kind = S_NEW

    def __init__(self, dst: int, class_name: str):
        self.dst = dst
        self.class_name = class_name

    def __repr__(self) -> str:
        return f"New({self.dst}, {self.class_name!r})"


class NewPool(Stmt):
    """Allocate a tuple of fresh instances (one per listed class name)."""

    __slots__ = ("dst", "class_names")
    kind = S_NEWPOOL

    def __init__(self, dst: int, class_names: Sequence[str]):
        self.dst = dst
        self.class_names = tuple(class_names)

    def __repr__(self) -> str:
        return f"NewPool({self.dst}, {self.class_names!r})"


class StaticCall(Stmt):
    """A statically-bound call (``invokestatic`` / monomorphic direct call).

    ``site`` is a program-unique call-site identifier; ``target`` is a
    ``"Class.method"`` method id; ``args`` are evaluated in the caller;
    ``dst`` optionally receives the return value.
    """

    __slots__ = ("site", "target", "args", "dst")
    kind = S_STATIC_CALL

    def __init__(self, site: int, target: str, args: Sequence[Expr] = (),
                 dst: Optional[int] = None):
        self.site = site
        self.target = target
        self.args = tuple(args)
        self.dst = dst

    def __repr__(self) -> str:
        return f"StaticCall(site={self.site}, target={self.target!r})"


class VirtualCall(Stmt):
    """A virtual dispatch: resolve ``selector`` on the receiver's class.

    The receiver expression is also passed to the callee as ``Arg(0)``
    (i.e. the callee's first parameter is ``this``); explicit ``args``
    follow it.
    """

    __slots__ = ("site", "selector", "receiver", "args", "dst")
    kind = S_VIRTUAL_CALL

    def __init__(self, site: int, selector: str, receiver: Expr,
                 args: Sequence[Expr] = (), dst: Optional[int] = None):
        self.site = site
        self.selector = selector
        self.receiver = receiver
        self.args = tuple(args)
        self.dst = dst

    def __repr__(self) -> str:
        return f"VirtualCall(site={self.site}, selector={self.selector!r})"


class InterfaceCall(Stmt):
    """An interface invocation: like a virtual call, but dispatched through
    an interface method table (``invokeinterface``).

    Semantically identical to :class:`VirtualCall` -- the receiver's
    dynamic class resolves the selector -- but an un-inlined dispatch costs
    more (itable search), making interface-heavy call sites even better
    inlining candidates.  The inline oracle treats both identically
    (paper Section 3.1: guarded inlining applies "at a virtual or
    interface invocation").
    """

    __slots__ = ("site", "selector", "receiver", "args", "dst")
    kind = S_INTERFACE_CALL

    def __init__(self, site: int, selector: str, receiver: Expr,
                 args: Sequence[Expr] = (), dst: Optional[int] = None):
        self.site = site
        self.selector = selector
        self.receiver = receiver
        self.args = tuple(args)
        self.dst = dst

    def __repr__(self) -> str:
        return f"InterfaceCall(site={self.site}, selector={self.selector!r})"


class If(Stmt):
    """Execute ``then_body`` when ``cond`` evaluates nonzero, else ``else_body``."""

    __slots__ = ("cond", "then_body", "else_body")
    kind = S_IF

    def __init__(self, cond: Expr, then_body: Sequence[Stmt],
                 else_body: Sequence[Stmt] = ()):
        self.cond = cond
        self.then_body = tuple(then_body)
        self.else_body = tuple(else_body)

    def __repr__(self) -> str:
        return f"If({self.cond!r}, then={len(self.then_body)}, else={len(self.else_body)})"


class Loop(Stmt):
    """Execute ``body`` ``count``-evaluated times, with the iteration index
    stored into local slot ``index_local`` before each iteration."""

    __slots__ = ("count", "index_local", "body")
    kind = S_LOOP

    def __init__(self, count: Expr, index_local: int, body: Sequence[Stmt]):
        self.count = count
        self.index_local = index_local
        self.body = tuple(body)

    def __repr__(self) -> str:
        return f"Loop(count={self.count!r}, body={len(self.body)})"


class Return(Stmt):
    """Return from the enclosing method with an optional value (default 0)."""

    __slots__ = ("expr",)
    kind = S_RETURN

    def __init__(self, expr: Optional[Expr] = None):
        self.expr = expr

    def __repr__(self) -> str:
        return f"Return({self.expr!r})"


# ---------------------------------------------------------------------------
# Static size estimation
# ---------------------------------------------------------------------------


def body_bytecodes(body: Iterable[Stmt]) -> int:
    """Estimate the bytecode size of a statement sequence.

    Work contributes its cycle count (one bytecode per unit of work), calls
    contribute :data:`repro.jvm.costs.CALL_UNITS`, control flow contributes
    its header plus both branch bodies, and loop bodies are counted once
    (static size, not dynamic).
    """
    from repro.jvm.costs import CALL_UNITS

    total = 0
    for stmt in body:
        k = stmt.kind
        if k == S_WORK:
            total += stmt.cost
        elif k in (S_LET, S_NEW, S_RETURN):
            total += 1
        elif k == S_NEWPOOL:
            total += 1 + len(stmt.class_names)
        elif k in (S_STATIC_CALL, S_VIRTUAL_CALL, S_INTERFACE_CALL):
            total += CALL_UNITS
        elif k == S_IF:
            total += 1 + body_bytecodes(stmt.then_body) + body_bytecodes(stmt.else_body)
        elif k == S_LOOP:
            total += 2 + body_bytecodes(stmt.body)
        else:  # pragma: no cover - defensive
            raise ProgramError(f"unknown statement kind {k}")
    return total


# ---------------------------------------------------------------------------
# Methods, classes, programs
# ---------------------------------------------------------------------------


class MethodDef:
    """A method declaration.

    Attributes
    ----------
    klass:
        Declaring class name.
    name:
        Selector (simple name); virtual dispatch resolves by selector.
    num_params:
        Number of declared parameters.  For instance methods this *includes*
        the receiver in slot 0, but :attr:`declared_params` excludes it --
        the Parameterless policy (paper Section 4.3) keys on declared
        parameters only, treating ``this`` as the acknowledged exception.
    is_static:
        True for class (static) methods; the Class-Methods policy keys on
        this flag.
    body:
        Statement tuple.
    bytecodes:
        Static size estimate in bytecode units; drives the size classifier.
    """

    __slots__ = ("klass", "name", "num_params", "is_static", "body",
                 "bytecodes", "num_locals", "id")

    def __init__(self, klass: str, name: str, num_params: int,
                 is_static: bool, body: Sequence[Stmt],
                 num_locals: int = 8,
                 bytecodes: Optional[int] = None):
        self.klass = klass
        self.name = name
        self.num_params = num_params
        self.is_static = is_static
        self.body = tuple(body)
        self.num_locals = num_locals
        self.bytecodes = (body_bytecodes(self.body)
                          if bytecodes is None else bytecodes)
        self.id = f"{klass}.{name}"

    @property
    def declared_params(self) -> int:
        """Parameters excluding the implicit receiver."""
        if self.is_static:
            return self.num_params
        return max(0, self.num_params - 1)

    @property
    def is_parameterless(self) -> bool:
        """True when no state flows in via declared parameters.

        This is the early-termination predicate of the Parameterless policy:
        ``this`` and globals are acknowledged exceptions (Section 4.3).
        """
        return self.declared_params == 0

    def __repr__(self) -> str:
        tag = "static " if self.is_static else ""
        return f"<{tag}{self.id}/{self.num_params} ({self.bytecodes} bc)>"


class ClassDef:
    """A class declaration: name, optional superclass, implemented
    interfaces (names of selectors-only contract classes), and methods."""

    __slots__ = ("name", "superclass", "interfaces", "methods")

    def __init__(self, name: str, superclass: Optional[str] = None,
                 interfaces: Sequence[str] = ()):
        self.name = name
        self.superclass = superclass
        self.interfaces = tuple(interfaces)
        self.methods: Dict[str, MethodDef] = {}

    def declare(self, method: MethodDef) -> MethodDef:
        if method.klass != self.name:
            raise ProgramError(
                f"method {method.id} declared on wrong class {self.name}")
        if method.name in self.methods:
            raise ProgramError(f"duplicate method {method.id}")
        self.methods[method.name] = method
        return method

    def __repr__(self) -> str:
        sup = f" extends {self.superclass}" if self.superclass else ""
        return f"<class {self.name}{sup}: {len(self.methods)} methods>"


class Program:
    """A closed program: classes, methods, an entry point, and call sites.

    Call-site identifiers are allocated by :class:`repro.workloads.builder.
    ProgramBuilder` and must be unique program-wide; :meth:`validate`
    enforces this along with referential integrity of call targets.
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self.classes: Dict[str, ClassDef] = {}
        self.entry: Optional[str] = None
        self._site_locations: Dict[int, Tuple[str, str]] = {}

    # -- construction ------------------------------------------------------

    def add_class(self, cls: ClassDef) -> ClassDef:
        if cls.name in self.classes:
            raise ProgramError(f"duplicate class {cls.name}")
        self.classes[cls.name] = cls
        return cls

    def set_entry(self, method_id: str) -> None:
        self.entry = method_id

    # -- queries -----------------------------------------------------------

    def method(self, method_id: str) -> MethodDef:
        """Look up a method by its ``"Class.name"`` id."""
        klass, _, name = method_id.partition(".")
        try:
            return self.classes[klass].methods[name]
        except KeyError:
            raise ProgramError(f"no such method {method_id!r}") from None

    def methods(self) -> List[MethodDef]:
        """All methods, in deterministic (class, name) order."""
        out: List[MethodDef] = []
        for cname in sorted(self.classes):
            cls = self.classes[cname]
            for mname in sorted(cls.methods):
                out.append(cls.methods[mname])
        return out

    def entry_method(self) -> MethodDef:
        if self.entry is None:
            raise ProgramError("program has no entry point")
        return self.method(self.entry)

    def site_location(self, site: int) -> Tuple[str, str]:
        """Return ``(method_id, kind)`` for a call-site id."""
        return self._site_locations[site]

    def total_bytecodes(self) -> int:
        return sum(m.bytecodes for m in self.methods())

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check referential integrity; raise :class:`ProgramError` if broken.

        Verifies that superclasses exist and are acyclic, static call
        targets exist, virtual selectors have at least one implementation,
        pool/instance class names exist, and call-site ids are unique.
        """
        for cls in self.classes.values():
            for iface in cls.interfaces:
                if iface not in self.classes:
                    raise ProgramError(
                        f"class {cls.name} implements unknown {iface}")
            seen = {cls.name}
            sup = cls.superclass
            while sup is not None:
                if sup not in self.classes:
                    raise ProgramError(
                        f"class {cls.name} extends unknown {sup}")
                if sup in seen:
                    raise ProgramError(f"inheritance cycle through {sup}")
                seen.add(sup)
                sup = self.classes[sup].superclass

        selectors = set()
        for m in self.methods():
            selectors.add(m.name)

        self._site_locations.clear()
        for m in self.methods():
            self._validate_body(m, m.body, selectors)

        if self.entry is not None:
            self.method(self.entry)

    def _validate_body(self, m: MethodDef, body: Sequence[Stmt],
                       selectors: set) -> None:
        for stmt in body:
            k = stmt.kind
            if k == S_STATIC_CALL:
                self.method(stmt.target)  # raises when missing
                self._record_site(stmt.site, m.id, "static")
            elif k == S_VIRTUAL_CALL:
                if stmt.selector not in selectors:
                    raise ProgramError(
                        f"{m.id}: virtual selector {stmt.selector!r} "
                        f"has no implementation")
                self._record_site(stmt.site, m.id, "virtual")
            elif k == S_INTERFACE_CALL:
                if stmt.selector not in selectors:
                    raise ProgramError(
                        f"{m.id}: interface selector {stmt.selector!r} "
                        f"has no implementation")
                self._record_site(stmt.site, m.id, "interface")
            elif k == S_NEW:
                if stmt.class_name not in self.classes:
                    raise ProgramError(
                        f"{m.id}: New of unknown class {stmt.class_name!r}")
            elif k == S_NEWPOOL:
                for cn in stmt.class_names:
                    if cn not in self.classes:
                        raise ProgramError(
                            f"{m.id}: NewPool of unknown class {cn!r}")
            elif k == S_IF:
                self._validate_body(m, stmt.then_body, selectors)
                self._validate_body(m, stmt.else_body, selectors)
            elif k == S_LOOP:
                self._validate_body(m, stmt.body, selectors)

    def _record_site(self, site: int, method_id: str, kind: str) -> None:
        existing = self._site_locations.get(site)
        if existing is not None and existing != (method_id, kind):
            raise ProgramError(
                f"call-site id {site} reused: {existing} vs {(method_id, kind)}")
        self._site_locations[site] = (method_id, kind)

    def __repr__(self) -> str:
        n_methods = sum(len(c.methods) for c in self.classes.values())
        return (f"<Program {self.name!r}: {len(self.classes)} classes, "
                f"{n_methods} methods>")
