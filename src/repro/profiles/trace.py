"""Call-trace structures for context-sensitive profiling.

The paper's trace listener samples the call stack and records traces of the
form (Equation 2)::

    caller_1, callsite_1, ..., caller_n, callsite_n, callee

This module defines the canonical in-memory form:

* a *context* is a tuple of ``(caller_id, callsite)`` pairs ordered
  **innermost-first** -- element 0 is the immediate caller of the callee and
  the call site within that caller;
* a :class:`TraceKey` pairs a callee method id with a context;
* an :class:`InlineRule` is a hot trace promoted to an inlining
  recommendation by the adaptive-inlining organizer.

A context-insensitive edge sample (Equation 1) is simply the depth-1
special case.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

#: One context element: (caller method id, call-site id within that caller).
ContextElement = Tuple[str, int]

#: Innermost-first tuple of context elements.
Context = Tuple[ContextElement, ...]


class TraceKey:
    """An immutable, hashable (callee, context) pair.

    ``context[0]`` is the immediate (caller, callsite) of ``callee``; deeper
    elements walk outward toward ``main``.  A depth-1 key is exactly the
    paper's context-insensitive edge tuple.
    """

    __slots__ = ("callee", "context", "_hash")

    def __init__(self, callee: str, context: Context):
        if not context:
            raise ValueError("a trace needs at least one call edge")
        self.callee = callee
        self.context = tuple(context)
        self._hash = hash((callee, self.context))

    @property
    def depth(self) -> int:
        """Number of call edges in the trace (the paper's *n*)."""
        return len(self.context)

    @property
    def edge(self) -> "TraceKey":
        """The depth-1 (context-insensitive) projection of this trace."""
        if len(self.context) == 1:
            return self
        return TraceKey(self.callee, (self.context[0],))

    @property
    def immediate_caller(self) -> str:
        return self.context[0][0]

    @property
    def callsite(self) -> int:
        return self.context[0][1]

    def truncated(self, depth: int) -> "TraceKey":
        """This trace cut down to at most ``depth`` edges."""
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if depth >= len(self.context):
            return self
        return TraceKey(self.callee, self.context[:depth])

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TraceKey)
                and self.callee == other.callee
                and self.context == other.context)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        chain = " <= ".join(f"{c}@{s}" for c, s in self.context)
        return f"<trace {chain} => {self.callee}>"


#: Rule origins: derived from this runtime's own samples ("local") or
#: seeded from fleet-aggregated profiles ("fleet", see repro.fleet).
ORIGIN_LOCAL = "local"
ORIGIN_FLEET = "fleet"


class InlineRule:
    """A hot trace codified as an inlining recommendation.

    Produced by the adaptive-inlining organizer for every trace whose
    weight exceeds the hot-edge threshold fraction of total profile weight.
    ``share`` records that fraction at rule-derivation time.  ``origin``
    records where the evidence came from: ``"local"`` for rules derived
    from this runtime's own samples, ``"fleet"`` for rules seeded (or
    re-derived while still backed) by fleet-aggregated warm-start
    profiles -- the provenance layer uses it to tag warm decisions.
    """

    __slots__ = ("key", "weight", "share", "origin")

    def __init__(self, key: TraceKey, weight: float, share: float,
                 origin: str = ORIGIN_LOCAL):
        self.key = key
        self.weight = weight
        self.share = share
        self.origin = origin

    @property
    def callee(self) -> str:
        return self.key.callee

    @property
    def context(self) -> Context:
        return self.key.context

    def __repr__(self) -> str:
        return f"<rule {self.key!r} share={self.share:.3f}>"


def make_context(pairs: Sequence[Tuple[str, int]]) -> Context:
    """Normalize a sequence of (caller, site) pairs into a Context."""
    return tuple((str(c), int(s)) for c, s in pairs)


def format_trace(key: TraceKey) -> str:
    """Human-readable rendering matching the paper's A => B => C notation."""
    parts: List[str] = [caller for caller, _site in reversed(key.context)]
    parts.append(key.callee)
    return " => ".join(parts)
