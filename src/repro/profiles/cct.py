"""Calling-context tree (CCT) representation of context-sensitive profiles.

Ammons, Ball, and Larus introduced the calling-context tree as a compact
representation for context-sensitive profile data; the paper's Section 6
names it as the "more sophisticated representation" a future version of the
system might adopt.  This module implements it as an extension: a CCT built
from the same trace samples the DCG stores, supporting the queries the
inline oracle makes.

Because sampled traces are *suffixes* of full call paths (they stop after
n edges), the tree is rooted at a synthetic node and paths are inserted
outermost-first; a sample ``A => B => C`` increments the weight of the node
reached by the path root/A/B/C.  Partial traces therefore share prefixes
exactly as in Arnold & Sweeney's sampled approximations of the CCT.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.profiles.trace import Context, TraceKey


class CCTNode:
    """One calling context: a method reached through a chain of call sites."""

    __slots__ = ("method", "site", "weight", "children", "parent")

    def __init__(self, method: Optional[str], site: Optional[int],
                 parent: Optional["CCTNode"] = None):
        self.method = method
        self.site = site
        self.weight = 0.0
        self.parent = parent
        self.children: Dict[Tuple[int, str], "CCTNode"] = {}

    def child(self, site: int, method: str) -> "CCTNode":
        """Get or create the child reached by calling ``method`` at ``site``."""
        key = (site, method)
        node = self.children.get(key)
        if node is None:
            node = CCTNode(method, site, parent=self)
            self.children[key] = node
        return node

    def path(self) -> List[Tuple[Optional[str], Optional[int]]]:
        """(method, entry-site) pairs from the root down to this node."""
        chain: List[Tuple[Optional[str], Optional[int]]] = []
        node: Optional[CCTNode] = self
        while node is not None and node.method is not None:
            chain.append((node.method, node.site))
            node = node.parent
        chain.reverse()
        return chain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CCTNode {self.method} w={self.weight:.1f} " \
               f"children={len(self.children)}>"


class CallingContextTree:
    """A weighted CCT assembled from sampled call traces."""

    def __init__(self) -> None:
        self.root = CCTNode(None, None)
        self.samples = 0

    def add_trace(self, key: TraceKey, weight: float = 1.0) -> CCTNode:
        """Insert one sampled trace outermost-first; returns the callee node."""
        node = self.root
        elements = list(reversed(key.context))  # outermost-first
        # The outermost caller enters the tree below the synthetic root.
        outer_caller = elements[0][0]
        node = node.child(-1, outer_caller)
        for index, (caller, site) in enumerate(elements):
            if index + 1 < len(elements):
                next_method = elements[index + 1][0]
            else:
                next_method = key.callee
            node = node.child(site, next_method)
        node.weight += weight
        self.samples += 1
        return node

    # -- queries -------------------------------------------------------------

    def total_weight(self) -> float:
        return sum(node.weight for node in self.walk())

    def walk(self) -> Iterator[CCTNode]:
        """All non-root nodes, preorder, deterministic order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.method is not None:
                yield node
            for key in sorted(node.children, reverse=True):
                stack.append(node.children[key])

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def hot_contexts(self, threshold: float) -> List[Tuple[CCTNode, float]]:
        """Leaf-weighted nodes above ``threshold`` of total weight."""
        total = self.total_weight()
        if total <= 0:
            return []
        cutoff = threshold * total
        hot = [(node, node.weight) for node in self.walk()
               if node.weight > cutoff]
        hot.sort(key=lambda item: -item[1])
        return hot

    def to_trace_weights(self) -> Dict[TraceKey, float]:
        """Project weighted nodes back to TraceKeys (inverse of add_trace).

        Only nodes with nonzero sample weight and at least one caller above
        them produce a trace.  Round-tripping through this projection is the
        key invariant property-tested in the suite.
        """
        out: Dict[TraceKey, float] = {}
        for node in self.walk():
            if node.weight <= 0:
                continue
            chain = node.path()
            if len(chain) < 2:
                continue
            callee = chain[-1][0]
            context = []
            # chain: [(outermost, -1), ..., (caller, site_in_its_caller),
            #         (callee, site_in_caller)] -- the entry site of each
            # node is the call site *in its parent*.
            for index in range(len(chain) - 1, 0, -1):
                _method, entry_site = chain[index]
                caller_method = chain[index - 1][0]
                context.append((caller_method, entry_site))
            key = TraceKey(str(callee), tuple(context))
            out[key] = out.get(key, 0.0) + node.weight
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CCT {self.node_count()} nodes, {self.samples} samples>"
