"""Context-sensitive profile data: traces, DCG, partial matching, CCT."""
