"""Partial context matching (paper Section 3.3, Equation 3).

When the inline oracle asks which rules apply to a call site, the
compilation context (the chain of inlined callers above the site being
compiled) rarely has exactly the same depth as the profiled traces.  The
paper's hybrid solution:

* traces are **not** merged at collection time;
* at query time, a rule applies when its context agrees with the
  compilation context on every level up to ``min(k, j)`` (Equation 3);
* applicable rules are grouped by identical context, each group yields a
  set of target methods, and the **intersection** of those sets gives the
  inlining candidates -- a callee must be hot in *all* applicable traced
  contexts to be predicted.

This module implements that algorithm as pure functions so it can be
property-tested in isolation and reused by both the oracle and the
missing-edge organizer.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.profiles.trace import Context, InlineRule


def contexts_compatible(rule_context: Context, comp_context: Context) -> bool:
    """Equation 3: agree on every level up to the shallower depth.

    Both contexts are innermost-first; level ``i`` compares the i-th
    (caller, callsite) pair.  Because ``min(k, j) >= 1``, compatibility
    always requires at least the immediate (caller, callsite) to match,
    i.e. the rule is about the same call site.
    """
    for rule_elem, comp_elem in zip(rule_context, comp_context):
        if rule_elem != comp_elem:
            return False
    return True


def applicable_rules(rules: Iterable[InlineRule],
                     comp_context: Context) -> List[InlineRule]:
    """All rules whose context is Eq.-3-compatible with ``comp_context``."""
    return [r for r in rules if contexts_compatible(r.context, comp_context)]


def candidate_targets(rules: Iterable[InlineRule],
                      comp_context: Context) -> Dict[str, float]:
    """The oracle's intersection-of-target-sets algorithm.

    Returns ``{callee_id: summed weight}`` for every callee present in the
    target set of **every** group of applicable rules sharing an identical
    context.  An empty dict means the profile predicts nothing here.

    The returned weights (summed rule weights across applicable groups) let
    the oracle order guarded-inline targets by hotness.
    """
    groups: Dict[Context, Set[str]] = {}
    weights: Dict[str, float] = {}
    for rule in rules:
        if not contexts_compatible(rule.context, comp_context):
            continue
        groups.setdefault(rule.context, set()).add(rule.callee)
        weights[rule.callee] = weights.get(rule.callee, 0.0) + rule.weight

    if not groups:
        return {}

    group_iter = iter(groups.values())
    candidates = set(next(group_iter))
    for target_set in group_iter:
        candidates &= target_set
        if not candidates:
            return {}
    return {callee: weights[callee] for callee in candidates}


def rules_for_site(rules: Iterable[InlineRule], caller_id: str,
                   site: int) -> List[InlineRule]:
    """Rules whose innermost edge is (caller_id, site) -- any extra context."""
    return [r for r in rules
            if r.context[0][0] == caller_id and r.context[0][1] == site]


def ordered_candidates(candidates: Dict[str, float]) -> List[Tuple[str, float]]:
    """Candidates sorted hottest-first with deterministic tie-breaking."""
    return sorted(candidates.items(), key=lambda item: (-item[1], item[0]))
