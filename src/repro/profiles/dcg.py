"""The weighted dynamic call graph (DCG) over sampled traces.

The dynamic call graph organizer collates raw listener samples into this
structure (paper Section 3.2).  Entries are keyed by full
:class:`~repro.profiles.trace.TraceKey`; traces of different depths for the
same underlying edge are kept **separate** (the paper's hybrid scheme does
not merge partial matches at collection time).

The DCG also answers the aggregate queries the rest of the AOS needs:

* total profile weight (the denominator of the 1.5% hot threshold),
* the context-insensitive *edge projection* (for the imprecision-driven
  policy and for diagnostics),
* per-call-site receiver/target distributions and their skew,
* periodic decay (Section 3.2's decay organizer) that biases hot-edge
  detection toward recent samples.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.profiles.trace import Context, TraceKey

#: Entries whose decayed weight falls below this are dropped.
PRUNE_EPSILON = 0.05

#: A call-site target distribution counts as *skewed* (predictable) when its
#: dominant target holds at least this share -- below it, the imprecision
#: policy flags the site as needing more context (paper Section 4.3).
SKEW_THRESHOLD = 0.75


class DynamicCallGraph:
    """Weighted multiset of sampled call traces."""

    def __init__(self) -> None:
        self._weights: Dict[TraceKey, float] = {}
        self._total = 0.0
        #: Monotone count of samples ever added (not decayed).
        self.samples_added = 0

    # -- ingestion -----------------------------------------------------------

    def add(self, key: TraceKey, weight: float = 1.0) -> None:
        self._weights[key] = self._weights.get(key, 0.0) + weight
        self._total += weight
        self.samples_added += 1

    # -- bulk queries --------------------------------------------------------

    @property
    def total_weight(self) -> float:
        return self._total

    def __len__(self) -> int:
        return len(self._weights)

    def weight(self, key: TraceKey) -> float:
        return self._weights.get(key, 0.0)

    def items(self) -> Iterable[Tuple[TraceKey, float]]:
        return self._weights.items()

    def hot_traces(self, threshold: float) -> List[Tuple[TraceKey, float]]:
        """Traces contributing more than ``threshold`` of total weight.

        This is where *profile dilution* (Section 4) bites: deeper contexts
        split an edge's weight over more keys, so each key's share of the
        (unchanged) total shrinks and may fall below the threshold.
        """
        if self._total <= 0.0:
            return []
        cutoff = threshold * self._total
        hot = [(k, w) for k, w in self._weights.items() if w > cutoff]
        hot.sort(key=lambda item: (-item[1], item[0].callee, item[0].context))
        return hot

    # -- projections ---------------------------------------------------------

    def edge_weights(self) -> Dict[TraceKey, float]:
        """Context-insensitive projection: weights aggregated to depth 1."""
        out: Dict[TraceKey, float] = {}
        for key, weight in self._weights.items():
            edge = key.edge
            out[edge] = out.get(edge, 0.0) + weight
        return out

    def site_target_distribution(self, caller_id: str,
                                 site: int) -> Dict[str, float]:
        """``{callee: weight}`` observed at one call site, all contexts."""
        out: Dict[str, float] = {}
        for key, weight in self._weights.items():
            c0 = key.context[0]
            if c0[0] == caller_id and c0[1] == site:
                out[key.callee] = out.get(key.callee, 0.0) + weight
        return out

    def polymorphic_unskewed_sites(
            self, skew_threshold: float = SKEW_THRESHOLD
    ) -> List[Tuple[str, int]]:
        """Call sites with multiple targets and no dominant one.

        These are the sites the imprecision-driven policy flags as needing
        additional context sensitivity.
        """
        by_site: Dict[Tuple[str, int], Dict[str, float]] = {}
        for key, weight in self._weights.items():
            site_key = key.context[0]
            targets = by_site.setdefault(site_key, {})
            targets[key.callee] = targets.get(key.callee, 0.0) + weight

        flagged = []
        for site_key, targets in by_site.items():
            if len(targets) < 2:
                continue
            total = sum(targets.values())
            if total > 0 and max(targets.values()) / total < skew_threshold:
                flagged.append(site_key)
        flagged.sort()
        return flagged

    # -- decay ---------------------------------------------------------------

    def decay(self, rate: float) -> int:
        """Multiply all weights by ``rate``; prune tiny entries.

        Returns the number of entries processed (the decay organizer's cost
        driver).  The total weight is decayed consistently so threshold
        shares are unaffected by decay alone.
        """
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"decay rate must be in (0, 1], got {rate}")
        processed = len(self._weights)
        pruned_weight = 0.0
        new_weights: Dict[TraceKey, float] = {}
        for key, weight in self._weights.items():
            w = weight * rate
            if w >= PRUNE_EPSILON:
                new_weights[key] = w
            else:
                pruned_weight += w
        self._weights = new_weights
        self._total = self._total * rate - pruned_weight
        if self._total < 0.0:
            self._total = 0.0
        return processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DCG {len(self._weights)} traces, "
                f"total weight {self._total:.1f}>")
