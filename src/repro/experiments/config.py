"""Experiment configuration shared by the harness and the benches.

The paper's evaluation sweeps six context-sensitivity policy families over
maximum depths 2-5 on eight benchmarks, against the context-insensitive
baseline.  Because the adaptive system is timer-driven and therefore
phase-sensitive (the paper reports the best of 20 runs for the same
reason), every configuration here is run at several sampling phases and
the best run (minimum total cycles) is reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

from repro.workloads.spec import BENCHMARK_ORDER

#: The six policy families of Figures 4-6 (x-axis order).
POLICY_FAMILIES: Tuple[str, ...] = ("fixed", "paramLess", "class", "large",
                                    "hybrid1", "hybrid2")

#: The maximum context-sensitivity depths the paper sweeps.
DEPTHS: Tuple[int, ...] = (2, 3, 4, 5)

#: Sampling phases emulating timer nondeterminism (best-of-N, like the
#: paper's best-of-20).
DEFAULT_PHASES: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75)


@dataclass(frozen=True)
class SweepConfig:
    """What to run: benchmarks x (cins + families x depths) x phases."""

    benchmarks: Tuple[str, ...] = BENCHMARK_ORDER
    families: Tuple[str, ...] = POLICY_FAMILIES
    depths: Tuple[int, ...] = DEPTHS
    phases: Tuple[float, ...] = DEFAULT_PHASES
    #: Dynamic-length scale factor passed to the workload builder; 1.0 is
    #: the full paper-shaped run, smaller values shrink the main loops for
    #: quick tests.
    scale: float = 1.0
    #: Worker processes for the sweep (0 = use all available cores).
    jobs: int = 0

    def configurations(self) -> Sequence[Tuple[str, str, int]]:
        """All (benchmark, family, depth) cells, baseline first."""
        cells = []
        for benchmark in self.benchmarks:
            cells.append((benchmark, "cins", 1))
            for family in self.families:
                for depth in self.depths:
                    cells.append((benchmark, family, depth))
        return cells
