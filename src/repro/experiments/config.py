"""Experiment configuration shared by the harness and the benches.

The paper's evaluation sweeps six context-sensitivity policy families over
maximum depths 2-5 on eight benchmarks, against the context-insensitive
baseline.  Because the adaptive system is timer-driven and therefore
phase-sensitive (the paper reports the best of 20 runs for the same
reason), every configuration here is run at several sampling phases and
the best run (minimum total cycles) is reported.

This module also defines the *cell fingerprint*: a content hash over
everything that determines one cell's :class:`RunResult` -- benchmark,
policy family, depth, sampling phases, workload scale, and the full cost
model.  The per-cell sweep cache (:mod:`repro.experiments.cell_cache`)
keys its entries on this fingerprint, so a cached cell is reused exactly
when rerunning it would reproduce the same bits, regardless of which
sweep configuration it was originally part of.  Execution-only knobs
(``jobs``, ``cell_timeout``) deliberately do not enter the fingerprint.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.workloads.spec import BENCHMARK_ORDER

#: The six policy families of Figures 4-6 (x-axis order).
POLICY_FAMILIES: Tuple[str, ...] = ("fixed", "paramLess", "class", "large",
                                    "hybrid1", "hybrid2")

#: Families a sweep may be asked to run.  Superset of the paper's
#: figure families: ``imprecision`` (the adaptive policy of Section 5)
#: and the no-profile static baselines from :mod:`repro.analysis` --
#: ``static`` (flat RTA) and ``static-k`` (k-CFA, where the sweep's
#: depth axis is the call-string length k) -- can be swept but are not
#: part of the default figure grid, so :data:`POLICY_FAMILIES` stays
#: exactly the paper's.
SWEEPABLE_FAMILIES: Tuple[str, ...] = POLICY_FAMILIES + ("imprecision",
                                                         "static",
                                                         "static-k")

#: The maximum context-sensitivity depths the paper sweeps.
DEPTHS: Tuple[int, ...] = (2, 3, 4, 5)

#: Sampling phases emulating timer nondeterminism (best-of-N, like the
#: paper's best-of-20).
DEFAULT_PHASES: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75)

#: Bumped whenever the fingerprint inputs or the cached cell format
#: change incompatibly; old cache entries then simply stop matching.
FINGERPRINT_VERSION = 1


def cost_model_fingerprint(costs: CostModel = DEFAULT_COSTS) -> str:
    """Stable content hash of every tunable in a :class:`CostModel`."""
    payload = json.dumps(dataclasses.asdict(costs), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def cell_fingerprint(benchmark: str, family: str, depth: int,
                     phases: Sequence[float], scale: float,
                     costs: CostModel = DEFAULT_COSTS) -> str:
    """Content hash of everything that determines one cell's result.

    Two invocations with the same fingerprint produce bit-identical
    :class:`~repro.aos.runtime.RunResult`\\ s (the whole system is
    seed-deterministic), so the per-cell cache can safely substitute a
    stored result for a rerun.
    """
    payload = json.dumps({
        "version": FINGERPRINT_VERSION,
        "benchmark": benchmark,
        "family": family,
        "depth": depth,
        "phases": [float(p) for p in phases],
        "scale": float(scale),
        "costs": cost_model_fingerprint(costs),
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SweepConfig:
    """What to run: benchmarks x (cins + families x depths) x phases."""

    benchmarks: Tuple[str, ...] = BENCHMARK_ORDER
    families: Tuple[str, ...] = POLICY_FAMILIES
    depths: Tuple[int, ...] = DEPTHS
    phases: Tuple[float, ...] = DEFAULT_PHASES
    #: Dynamic-length scale factor passed to the workload builder; 1.0 is
    #: the full paper-shaped run, smaller values shrink the main loops for
    #: quick tests.
    scale: float = 1.0
    #: Worker processes for the sweep (0 = use all available cores).
    jobs: int = 0
    #: Per-cell wall-clock budget in seconds when running on a worker
    #: pool; ``None`` disables the limit.  A cell that exceeds it is
    #: recorded as a structured failure instead of stalling the sweep.
    cell_timeout: Optional[float] = None
    #: Persist each cell's best-run decision-provenance log next to its
    #: cached result (``<fingerprint>.decisions.jsonl``).  Execution-only
    #: output, deliberately excluded from the cell fingerprint: recording
    #: provenance cannot change a cell's result (the zero-overhead
    #: contract of :mod:`repro.provenance`), so cached results stay valid
    #: either way.
    decision_logs: bool = False

    def cell_fingerprint(self, benchmark: str, family: str, depth: int,
                         costs: CostModel = DEFAULT_COSTS) -> str:
        """Fingerprint of one cell under this config's phases and scale."""
        return cell_fingerprint(benchmark, family, depth,
                                self.phases, self.scale, costs)

    def configurations(self) -> Sequence[Tuple[str, str, int]]:
        """All (benchmark, family, depth) cells, baseline first."""
        cells = []
        for benchmark in self.benchmarks:
            cells.append((benchmark, "cins", 1))
            for family in self.families:
                for depth in self.depths:
                    cells.append((benchmark, family, depth))
        return cells
