"""Offline vs online profile-directed inlining (paper Section 6 context).

The paper's related work contrasts its *online* system -- decisions made
mid-run on partial, decayed profiles -- with *offline* systems like Vortex
(Grove et al.), which post-process a complete training-run profile before
compiling.  This module quantifies the online penalty on our substrate:

1. **Training run** -- execute the benchmark online and capture every
   trace the listener ever recorded (undecayed, full-run totals);
2. **Offline rule derivation** -- apply the same 1.5% threshold to the
   complete profile, once, like an offline post-processing step;
3. **Production run** -- re-execute with the rule set *pinned*: the AI
   organizer is frozen, so the compiler sees the final rules from the
   first compilation on.  No dilution-timing effects, no missing-edge
   recompilation churn, no decay.

The offline configuration is an upper bound for what the online system's
policy could achieve with perfect foresight -- exactly the gap the paper's
Section 2 warns about ("decisions must be based on a limited history").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aos.organizers import AIOrganizer
from repro.aos.runtime import AdaptiveRuntime, RunResult
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.metrics.report import format_table
from repro.policies import make_policy
from repro.profiles.dcg import DynamicCallGraph
from repro.profiles.trace import InlineRule, TraceKey
from repro.workloads.spec import build_benchmark


class _FrozenAIOrganizer:
    """An AI organizer replacement that pins a precomputed rule set."""

    def __init__(self, state, rules: Sequence[InlineRule]):
        self._state = state
        self._rules = list(rules)
        self._fingerprint = hash(tuple((r.key.callee, r.key.context)
                                       for r in self._rules))

    def run(self, machine) -> List[InlineRule]:
        state = self._state
        state.rules = list(self._rules)
        state.rules_fingerprint = self._fingerprint
        return state.rules


def collect_full_profile(benchmark: str, family: str, depth: int,
                         scale: float = 1.0,
                         costs: CostModel = DEFAULT_COSTS
                         ) -> Tuple[DynamicCallGraph, RunResult]:
    """Training run: capture the complete (undecayed) trace profile."""
    generated = build_benchmark(benchmark, scale=scale)
    policy = make_policy(family, depth, costs)
    # Disable decay so the training profile reflects full-run totals, the
    # way an offline instrumentation pass would see them.
    training_costs = costs.replace(decay_period=10 ** 12)
    runtime = AdaptiveRuntime(generated.program, policy, training_costs)
    result = runtime.run()
    return runtime.state.dcg, result


def derive_offline_rules(dcg: DynamicCallGraph,
                         costs: CostModel = DEFAULT_COSTS
                         ) -> List[InlineRule]:
    """Offline post-processing: threshold the complete profile once."""
    total = dcg.total_weight
    return [InlineRule(key, weight, weight / total if total else 0.0)
            for key, weight in dcg.hot_traces(costs.hot_edge_threshold)]


def run_with_pinned_rules(benchmark: str, family: str, depth: int,
                          rules: Sequence[InlineRule],
                          scale: float = 1.0,
                          costs: CostModel = DEFAULT_COSTS) -> RunResult:
    """Production run against a frozen, offline-derived rule set."""
    generated = build_benchmark(benchmark, scale=scale)
    policy = make_policy(family, depth, costs)
    runtime = AdaptiveRuntime(generated.program, policy, costs)
    runtime.ai_organizer = _FrozenAIOrganizer(runtime.state, rules)
    # Seed the rules immediately so even the first compilations see them.
    runtime.ai_organizer.run(runtime.machine)
    return runtime.run()


@dataclass
class OfflineComparison:
    """Online vs offline outcomes for one (benchmark, policy) pair."""

    benchmark: str
    family: str
    depth: int
    online: RunResult
    offline: RunResult
    offline_rules: int

    @property
    def online_penalty_percent(self) -> float:
        """How much slower the online system runs than the offline bound."""
        return 100.0 * (self.online.total_cycles
                        / self.offline.total_cycles - 1.0)

    @property
    def compile_churn_ratio(self) -> float:
        """Online compilations relative to offline (recompile churn)."""
        if self.offline.opt_compilations == 0:
            return float("inf")
        return self.online.opt_compilations / self.offline.opt_compilations


def compare_online_offline(benchmark: str = "jess", family: str = "fixed",
                           depth: int = 3, scale: float = 1.0,
                           costs: CostModel = DEFAULT_COSTS
                           ) -> Tuple[OfflineComparison, str]:
    """The full three-step experiment, with a rendered summary."""
    dcg, online = collect_full_profile(benchmark, family, depth, scale,
                                       costs)
    rules = derive_offline_rules(dcg, costs)
    offline = run_with_pinned_rules(benchmark, family, depth, rules, scale,
                                    costs)
    comparison = OfflineComparison(benchmark, family, depth, online,
                                   offline, len(rules))

    rows = []
    for label, result in (("online", online), ("offline", offline)):
        rows.append([
            label,
            f"{result.total_cycles / 1e6:.3f}M",
            str(result.opt_compilations),
            f"{result.opt_compile_cycles / 1e3:.0f}k",
            str(result.live_opt_code_bytes),
            str(result.guard_misses),
        ])
    rendered = format_table(
        ["system", "cycles", "compiles", "compile cyc", "opt code B",
         "guard misses"],
        rows,
        title=(f"Online vs offline profile-directed inlining "
               f"({benchmark}, {family} max={depth}; "
               f"{len(rules)} offline rules)"))
    rendered += (f"\nonline penalty: "
                 f"{comparison.online_penalty_percent:+.2f}% cycles, "
                 f"{comparison.compile_churn_ratio:.2f}x compilations")
    return comparison, rendered
