"""The experiment runner: executes (benchmark x policy x depth) sweeps.

One *cell* of the sweep runs a freshly generated benchmark program under a
policy at several sampling phases and keeps the best run (minimum total
cycles), mirroring the paper's best-of-N methodology for its
non-deterministic timer-sampled system.  Cells are independent, so the
sweep fans out over worker processes.

Results are plain dataclasses; :class:`SweepResults` offers the lookups the
figure formatters need plus JSON (de)serialization so expensive sweeps can
be cached on disk.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aos.listeners import TerminationStatsProbe
from repro.aos.runtime import AdaptiveRuntime, RunResult
from repro.experiments.config import SweepConfig
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.policies import make_policy
from repro.telemetry.recorder import TelemetryRecorder, TelemetrySnapshot
from repro.workloads.spec import build_benchmark

#: Key identifying one sweep cell.
CellKey = Tuple[str, str, int]  # (benchmark, family, depth)


def run_single(benchmark: str, family: str, depth: int,
               phase: float = 0.0, scale: float = 1.0,
               costs: CostModel = DEFAULT_COSTS,
               probe: Optional[TerminationStatsProbe] = None,
               telemetry: Optional[TelemetryRecorder] = None) -> RunResult:
    """Run one benchmark under one policy at one sampling phase."""
    generated = build_benchmark(benchmark, scale=scale)
    policy = make_policy(family, depth, costs)
    runtime = AdaptiveRuntime(generated.program, policy, costs,
                              probe=probe, sample_phase=phase,
                              telemetry=telemetry)
    return runtime.run()


def run_cell(benchmark: str, family: str, depth: int,
             phases: Sequence[float], scale: float = 1.0,
             costs: CostModel = DEFAULT_COSTS,
             probe: Optional[TerminationStatsProbe] = None,
             collect_telemetry: bool = False) \
        -> Union[RunResult, Tuple[RunResult, TelemetrySnapshot]]:
    """Best-of-phases run for one sweep cell (paper methodology).

    With ``collect_telemetry`` each phase runs under a fresh
    :class:`TelemetryRecorder` and the best run's frozen snapshot is
    returned alongside its :class:`RunResult` as a 2-tuple.
    """
    best: Optional[RunResult] = None
    best_snapshot: Optional[TelemetrySnapshot] = None
    for phase in phases:
        recorder = None
        if collect_telemetry:
            recorder = TelemetryRecorder(
                label=f"{benchmark}/{family}/max{depth}@{phase:g}")
        result = run_single(benchmark, family, depth, phase, scale, costs,
                            probe=probe, telemetry=recorder)
        if best is None or result.total_cycles < best.total_cycles:
            best = result
            if recorder is not None:
                best_snapshot = recorder.snapshot()
    assert best is not None
    if collect_telemetry:
        assert best_snapshot is not None
        return best, best_snapshot
    return best


def _cell_worker(args) \
        -> Tuple[CellKey, RunResult, Optional[TelemetrySnapshot]]:
    benchmark, family, depth, phases, scale, probe, collect_telemetry = args
    snapshot: Optional[TelemetrySnapshot] = None
    if collect_telemetry:
        result, snapshot = run_cell(benchmark, family, depth, phases, scale,
                                    probe=probe, collect_telemetry=True)
    else:
        result = run_cell(benchmark, family, depth, phases, scale,
                          probe=probe)
    return (benchmark, family, depth), result, snapshot


@dataclass
class SweepResults:
    """All cell results of one sweep, with baseline-relative queries."""

    config: SweepConfig
    cells: Dict[CellKey, RunResult]
    #: Per-cell telemetry snapshots when the sweep ran with
    #: ``collect_telemetry``; ``None`` otherwise.  Deliberately excluded
    #: from the JSON cache (the on-disk format is unchanged), so loading a
    #: cached sweep yields ``telemetry=None``.
    telemetry: Optional[Dict[CellKey, TelemetrySnapshot]] = None

    # -- lookups ---------------------------------------------------------------

    def result(self, benchmark: str, family: str, depth: int) -> RunResult:
        return self.cells[(benchmark, family, depth)]

    def baseline(self, benchmark: str) -> RunResult:
        return self.cells[(benchmark, "cins", 1)]

    def speedup_percent(self, benchmark: str, family: str,
                        depth: int) -> float:
        """Wall-clock speedup over cins, as plotted in Figure 4."""
        base = self.baseline(benchmark).total_cycles
        new = self.result(benchmark, family, depth).total_cycles
        return 100.0 * (base / new - 1.0)

    def code_size_percent(self, benchmark: str, family: str,
                          depth: int) -> float:
        """Optimized code-space change vs cins (Figure 5; negative good)."""
        base = self.baseline(benchmark).live_opt_code_bytes
        new = self.result(benchmark, family, depth).live_opt_code_bytes
        if base == 0:
            return 0.0
        return 100.0 * (new / base - 1.0)

    def compile_time_percent(self, benchmark: str, family: str,
                             depth: int) -> float:
        """Optimizing-compile-time change vs cins (negative good)."""
        base = self.baseline(benchmark).opt_compile_cycles
        new = self.result(benchmark, family, depth).opt_compile_cycles
        if base == 0:
            return 0.0
        return 100.0 * (new / base - 1.0)

    # -- persistence ---------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "config": dataclasses.asdict(self.config),
            "cells": [
                {"key": list(key), "result": dataclasses.asdict(result)}
                for key, result in sorted(self.cells.items())
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "SweepResults":
        payload = json.loads(text)
        raw_config = payload["config"]
        for field_name in ("benchmarks", "families", "depths", "phases"):
            raw_config[field_name] = tuple(raw_config[field_name])
        config = SweepConfig(**raw_config)
        cells: Dict[CellKey, RunResult] = {}
        for entry in payload["cells"]:
            key = tuple(entry["key"])
            raw = entry["result"]
            raw["depth_histogram"] = {int(k): v for k, v
                                      in raw["depth_histogram"].items()}
            cells[key] = RunResult(**raw)  # type: ignore[arg-type]
        return cls(config=config, cells=cells)


def run_sweep(config: SweepConfig = SweepConfig(),
              verbose: bool = False,
              collect_telemetry: bool = False) -> SweepResults:
    """Run the full sweep, fanning cells out over worker processes.

    With ``collect_telemetry`` every cell's best run carries a frozen
    :class:`TelemetrySnapshot` back from its worker process; the merged
    view lives on ``SweepResults.telemetry`` (see
    :mod:`repro.telemetry.aggregate` for cross-cell merging).
    """
    cells = config.configurations()
    args = [(benchmark, family, depth, config.phases, config.scale,
             None, collect_telemetry)
            for benchmark, family, depth in cells]

    jobs = config.jobs if config.jobs > 0 else (os.cpu_count() or 2)
    jobs = min(jobs, len(args))
    results: Dict[CellKey, RunResult] = {}
    telemetry: Optional[Dict[CellKey, TelemetrySnapshot]] = \
        {} if collect_telemetry else None

    if jobs <= 1:
        for arg in args:
            key, result, snapshot = _cell_worker(arg)
            results[key] = result
            if telemetry is not None and snapshot is not None:
                telemetry[key] = snapshot
            if verbose:
                print(f"  done {key}")
    else:
        with multiprocessing.Pool(jobs) as pool:
            for key, result, snapshot in pool.imap_unordered(
                    _cell_worker, args):
                results[key] = result
                if telemetry is not None and snapshot is not None:
                    telemetry[key] = snapshot
                if verbose:
                    print(f"  done {key}")
    return SweepResults(config=config, cells=results, telemetry=telemetry)


def load_or_run_sweep(cache_path: str,
                      config: SweepConfig = SweepConfig(),
                      verbose: bool = False) -> SweepResults:
    """Load a cached sweep when its config matches, else run and cache."""
    if os.path.exists(cache_path):
        try:
            with open(cache_path) as handle:
                cached = SweepResults.from_json(handle.read())
            if cached.config == config:
                return cached
        except (ValueError, KeyError, TypeError) as exc:
            # Corrupt or structurally stale cache: say so before quietly
            # regenerating, so surprising re-runs are explicable.
            warnings.warn(
                f"sweep cache {cache_path!r} is unreadable "
                f"({type(exc).__name__}: {exc}); regenerating it",
                RuntimeWarning, stacklevel=2)
    results = run_sweep(config, verbose=verbose)
    cache_dir = os.path.dirname(cache_path)
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
    with open(cache_path, "w") as handle:
        handle.write(results.to_json())
    return results
