"""The experiment runner: executes (benchmark x policy x depth) sweeps.

One *cell* of the sweep runs a freshly generated benchmark program under a
policy at several sampling phases and keeps the best run (minimum total
cycles), mirroring the paper's best-of-N methodology for its
non-deterministic timer-sampled system.  The benchmark program is built
once per cell and shared by every phase run (generation is
seed-deterministic and each :class:`AdaptiveRuntime` owns its own
hierarchy and code cache, so per-phase regeneration was pure waste).

Cells are independent, so the sweep fans out over worker processes.  The
pool layer is fault tolerant: a cell whose worker crashes or raises is
retried once serially and then recorded as a structured
:class:`CellFailure` instead of killing the sweep, a per-cell timeout
bounds stragglers, and when process pools are unavailable the sweep
degrades to in-process execution.  Each finished cell is persisted
immediately through the content-addressed per-cell cache
(:mod:`repro.experiments.cell_cache`), making interrupted sweeps
resumable: ``run_sweep`` first loads every valid cached cell and only
dispatches the missing ones.

Results are plain dataclasses; :class:`SweepResults` offers the lookups
the figure formatters need plus JSON (de)serialization so expensive
sweeps can be cached on disk.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from repro.aos.listeners import TerminationStatsProbe
from repro.aos.runtime import AdaptiveRuntime, RunResult
from repro.experiments.cell_cache import (CellCache, cell_cache_root,
                                          result_from_dict, result_to_dict)
from repro.experiments.config import SweepConfig
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.policies import make_policy
from repro.provenance.recorder import ProvenanceRecorder
from repro.provenance.records import ProvenanceRecord
from repro.telemetry.progress import ProgressTracker
from repro.telemetry.recorder import TelemetryRecorder, TelemetrySnapshot
from repro.workloads.spec import GeneratedBenchmark, build_benchmark

#: Key identifying one sweep cell.
CellKey = Tuple[str, str, int]  # (benchmark, family, depth)

#: Worker attempts per cell before a failure is recorded (the pool
#: attempt plus one serial retry).
MAX_CELL_ATTEMPTS = 2


def run_single(benchmark: str, family: str, depth: int,
               phase: float = 0.0, scale: float = 1.0,
               costs: CostModel = DEFAULT_COSTS,
               probe: Optional[TerminationStatsProbe] = None,
               telemetry: Optional[TelemetryRecorder] = None,
               provenance: Optional[ProvenanceRecorder] = None,
               progress: Optional[ProgressTracker] = None,
               generated: Optional[GeneratedBenchmark] = None) -> RunResult:
    """Run one benchmark under one policy at one sampling phase.

    ``generated`` lets callers reuse an already-built benchmark program
    (it is read-only to the runtime); without it the benchmark is built
    from scratch.  A ``progress`` tracker records main-loop throughput
    marks into ``RunResult.progress_points`` (zero-overhead, like
    telemetry and provenance).
    """
    if generated is None:
        generated = build_benchmark(benchmark, scale=scale)
    policy = make_policy(family, depth, costs)
    runtime = AdaptiveRuntime(generated.program, policy, costs,
                              probe=probe, sample_phase=phase,
                              telemetry=telemetry, provenance=provenance,
                              progress=progress)
    return runtime.run()


def decision_log_meta(benchmark: str, family: str, depth: int,
                      phase: float, scale: float,
                      result: RunResult) -> Dict[str, object]:
    """JSONL header metadata for one run's decision log.

    Carries the run-level metrics ``repro decisions diff`` attributes
    flips to (cycles, live code space, guard traffic) plus enough
    identity to label the diff.
    """
    return {
        "label": f"{benchmark}/{family}/max{depth}@{phase:g}",
        "benchmark": benchmark,
        "family": family,
        "depth": depth,
        "phase": phase,
        "scale": scale,
        "total_cycles": result.total_cycles,
        "live_opt_code_bytes": result.live_opt_code_bytes,
        "opt_code_bytes": result.opt_code_bytes,
        "opt_compilations": result.opt_compilations,
        "guard_tests": result.guard_tests,
        "guard_misses": result.guard_misses,
    }


#: ``(header meta, records)`` of one cell's best-run decision log.
DecisionLog = Tuple[Dict[str, object], List[ProvenanceRecord]]


def run_cell(benchmark: str, family: str, depth: int,
             phases: Sequence[float], scale: float = 1.0,
             costs: CostModel = DEFAULT_COSTS,
             probe: Optional[TerminationStatsProbe] = None,
             collect_telemetry: bool = False,
             collect_provenance: bool = False) \
        -> Union[RunResult, Tuple]:
    """Best-of-phases run for one sweep cell (paper methodology).

    The benchmark program is generated once and shared by all phase runs;
    every :class:`AdaptiveRuntime` builds its own hierarchy, code cache,
    and profile state, so runs stay independent.

    When a ``probe`` is passed, each phase runs under its own fresh
    :class:`TerminationStatsProbe` and only the *best* run's probe state
    is folded into the caller's probe -- the termination statistics then
    describe the run actually reported, not a mixture of all N attempts.
    With ``collect_telemetry`` each phase likewise runs under a fresh
    :class:`TelemetryRecorder` and the best run's frozen snapshot is
    returned alongside its :class:`RunResult`; with
    ``collect_provenance`` the best run's :data:`DecisionLog` (header
    meta plus record stream) is appended to the return tuple.  The
    return shape follows the flags: ``result``,
    ``(result, snapshot)``, ``(result, log)``, or
    ``(result, snapshot, log)``.
    """
    generated = build_benchmark(benchmark, scale=scale)
    best: Optional[RunResult] = None
    best_snapshot: Optional[TelemetrySnapshot] = None
    best_log: Optional[DecisionLog] = None
    best_probe: Optional[TerminationStatsProbe] = None
    for phase in phases:
        recorder = None
        if collect_telemetry:
            recorder = TelemetryRecorder(
                label=f"{benchmark}/{family}/max{depth}@{phase:g}")
        provenance = None
        if collect_provenance:
            provenance = ProvenanceRecorder(
                label=f"{benchmark}/{family}/max{depth}@{phase:g}")
        phase_probe = None
        if probe is not None:
            phase_probe = TerminationStatsProbe(costs, horizon=probe.horizon)
        result = run_single(benchmark, family, depth, phase, scale, costs,
                            probe=phase_probe, telemetry=recorder,
                            provenance=provenance, generated=generated)
        if best is None or result.total_cycles < best.total_cycles:
            best = result
            best_probe = phase_probe
            if recorder is not None:
                best_snapshot = recorder.snapshot()
            if provenance is not None:
                best_log = (decision_log_meta(benchmark, family, depth,
                                              phase, scale, result),
                            provenance.records)
    assert best is not None
    if probe is not None and best_probe is not None:
        probe.absorb(best_probe)
    extras: List[object] = []
    if collect_telemetry:
        assert best_snapshot is not None
        extras.append(best_snapshot)
    if collect_provenance:
        assert best_log is not None
        extras.append(best_log)
    if extras:
        return (best, *extras)
    return best


def _cell_worker(args) \
        -> Tuple[CellKey, RunResult, Optional[TelemetrySnapshot],
                 Optional[DecisionLog]]:
    (benchmark, family, depth, phases, scale, probe,
     collect_telemetry, collect_provenance) = args
    snapshot: Optional[TelemetrySnapshot] = None
    log: Optional[DecisionLog] = None
    outcome = run_cell(benchmark, family, depth, phases, scale,
                       probe=probe, collect_telemetry=collect_telemetry,
                       collect_provenance=collect_provenance)
    if collect_telemetry and collect_provenance:
        result, snapshot, log = outcome
    elif collect_telemetry:
        result, snapshot = outcome
    elif collect_provenance:
        result, log = outcome
    else:
        result = outcome
    return (benchmark, family, depth), result, snapshot, log


@dataclass
class CellFailure:
    """One cell that could not produce a result, with why and how hard
    the harness tried; recorded in :class:`SweepResults` instead of
    killing the sweep."""

    benchmark: str
    family: str
    depth: int
    error_type: str
    message: str
    attempts: int

    @property
    def key(self) -> CellKey:
        return (self.benchmark, self.family, self.depth)


@dataclass
class SweepResults:
    """All cell results of one sweep, with baseline-relative queries."""

    config: SweepConfig
    cells: Dict[CellKey, RunResult]
    #: Per-cell telemetry snapshots when the sweep ran with
    #: ``collect_telemetry``; ``None`` otherwise.  Deliberately excluded
    #: from the JSON cache (the on-disk format is unchanged), so loading a
    #: cached sweep yields ``telemetry=None``.
    telemetry: Optional[Dict[CellKey, TelemetrySnapshot]] = None
    #: Cells that failed even after retry, keyed like ``cells``.
    failures: Dict[CellKey, CellFailure] = field(default_factory=dict)

    # -- lookups ---------------------------------------------------------------

    def result(self, benchmark: str, family: str, depth: int) -> RunResult:
        return self.cells[(benchmark, family, depth)]

    def baseline(self, benchmark: str) -> RunResult:
        return self.cells[(benchmark, "cins", 1)]

    def speedup_percent(self, benchmark: str, family: str,
                        depth: int) -> float:
        """Wall-clock speedup over cins, as plotted in Figure 4."""
        base = self.baseline(benchmark).total_cycles
        new = self.result(benchmark, family, depth).total_cycles
        return 100.0 * (base / new - 1.0)

    def code_size_percent(self, benchmark: str, family: str,
                          depth: int) -> float:
        """Optimized code-space change vs cins (Figure 5; negative good)."""
        base = self.baseline(benchmark).live_opt_code_bytes
        new = self.result(benchmark, family, depth).live_opt_code_bytes
        if base == 0:
            return 0.0
        return 100.0 * (new / base - 1.0)

    def compile_time_percent(self, benchmark: str, family: str,
                             depth: int) -> float:
        """Optimizing-compile-time change vs cins (negative good)."""
        base = self.baseline(benchmark).opt_compile_cycles
        new = self.result(benchmark, family, depth).opt_compile_cycles
        if base == 0:
            return 0.0
        return 100.0 * (new / base - 1.0)

    # -- persistence ---------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "config": dataclasses.asdict(self.config),
            "cells": [
                {"key": list(key), "result": result_to_dict(result)}
                for key, result in sorted(self.cells.items())
            ],
        }
        if self.failures:
            payload["failures"] = [dataclasses.asdict(self.failures[key])
                                   for key in sorted(self.failures)]
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "SweepResults":
        payload = json.loads(text)
        raw_config = payload["config"]
        for field_name in ("benchmarks", "families", "depths", "phases"):
            raw_config[field_name] = tuple(raw_config[field_name])
        config = SweepConfig(**raw_config)
        cells: Dict[CellKey, RunResult] = {}
        for entry in payload["cells"]:
            key = tuple(entry["key"])
            cells[key] = result_from_dict(entry["result"])
        failures: Dict[CellKey, CellFailure] = {}
        for raw in payload.get("failures", []):
            failure = CellFailure(**raw)
            failures[failure.key] = failure
        return cls(config=config, cells=cells, failures=failures)


# -- the fault-tolerant cell executors -----------------------------------------

#: ``finish(key, result, snapshot, log)`` / ``fail(key, failure)`` sinks.
_FinishFn = Callable[[CellKey, RunResult, Optional[TelemetrySnapshot],
                      Optional[DecisionLog]], None]
_FailFn = Callable[[CellKey, "CellFailure"], None]


def _run_cell_with_retry(key: CellKey, args, finish: _FinishFn,
                         fail: _FailFn, attempts_before: int = 0,
                         worker=None) -> None:
    """Run one cell in-process; retry up to :data:`MAX_CELL_ATTEMPTS`.

    ``attempts_before`` counts attempts already burned on a worker pool
    (a crashed or erroring worker), so a pool failure gets exactly one
    serial retry before the failure is recorded.  ``worker`` swaps the
    cell function (the causal-profiler grid reuses this fault-tolerance
    layer with its own worker); it must return the same
    ``(key, result, snapshot, log)`` shape as :func:`_cell_worker`.
    """
    if worker is None:
        worker = _cell_worker
    attempts = attempts_before
    last: Optional[BaseException] = None
    while attempts < MAX_CELL_ATTEMPTS:
        attempts += 1
        try:
            _key, result, snapshot, log = worker(args)
        except Exception as exc:
            last = exc
            continue
        finish(key, result, snapshot, log)
        return
    assert last is not None
    fail(key, CellFailure(
        benchmark=key[0], family=key[1], depth=key[2],
        error_type=type(last).__name__, message=str(last),
        attempts=attempts))


def _run_cells_parallel(pending: Sequence[CellKey], args_for, jobs: int,
                        timeout: Optional[float], finish: _FinishFn,
                        fail: _FailFn, worker=None) -> List[CellKey]:
    """Fan pending cells out over a process pool, fault-tolerantly.

    Returns the cells that still need in-process execution: all of them
    when no pool could be created (platforms without working
    ``multiprocessing``), or the cells stranded when a worker crash broke
    the pool.  In-worker exceptions are retried once serially right here;
    per-cell timeouts become recorded failures (the cell already proved
    it exceeds its budget, so it is not retried).  ``worker`` swaps the
    cell function (see :func:`_run_cell_with_retry`); it must be
    picklable (module-level).
    """
    if worker is None:
        worker = _cell_worker
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool
        executor = ProcessPoolExecutor(max_workers=jobs)
        futures = [(key, executor.submit(worker, args_for(key)))
                   for key in pending]
    except Exception as exc:
        warnings.warn(
            f"worker pool unavailable ({type(exc).__name__}: {exc}); "
            f"running sweep cells in-process",
            RuntimeWarning, stacklevel=3)
        return list(pending)

    stranded: List[CellKey] = []
    try:
        for key, future in futures:
            try:
                _key, result, snapshot, log = future.result(timeout=timeout)
            except FutureTimeout:
                future.cancel()
                fail(key, CellFailure(
                    benchmark=key[0], family=key[1], depth=key[2],
                    error_type="TimeoutError",
                    message=f"cell exceeded the per-cell timeout "
                            f"of {timeout:g}s",
                    attempts=1))
            except BrokenProcessPool:
                # The pool lost a worker process (crash/OOM-kill); the
                # cells it still owed us run serially instead.
                stranded.append(key)
            except Exception:
                _run_cell_with_retry(key, args_for(key), finish, fail,
                                     attempts_before=1, worker=worker)
            else:
                finish(key, result, snapshot, log)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return stranded


def run_sweep(config: Optional[SweepConfig] = None,
              verbose: bool = False,
              collect_telemetry: bool = False,
              cache: Optional[CellCache] = None) -> SweepResults:
    """Run the full sweep, fanning cells out over worker processes.

    With a ``cache``, every valid cached cell is loaded up front and only
    the missing cells are dispatched; each fresh result is persisted the
    moment its worker finishes, so an interrupted sweep resumes where it
    died.  Cells that fail even after retry land in
    ``SweepResults.failures`` instead of aborting the sweep.

    With ``collect_telemetry`` every *freshly run* cell's best run
    carries a frozen :class:`TelemetrySnapshot` back from its worker
    process; cells served from the cache have no snapshot (see
    :func:`repro.telemetry.aggregate.merge_cell_telemetry` for combining
    partial maps across resumed runs).

    With ``config.decision_logs`` every freshly run cell's best run also
    carries its decision-provenance record stream back, persisted as
    ``<fingerprint>.decisions.jsonl`` beside the cached result.  A cached
    cell whose log is missing (e.g. cached by a sweep without the flag)
    is re-run so the log exists -- recording cannot change the result
    (zero-overhead contract), so the rerun reproduces the cached bits.
    """
    if config is None:
        config = SweepConfig()
    cells = list(config.configurations())
    total = len(cells)
    results: Dict[CellKey, RunResult] = {}
    failures: Dict[CellKey, CellFailure] = {}
    telemetry: Optional[Dict[CellKey, TelemetrySnapshot]] = \
        {} if collect_telemetry else None
    if config.decision_logs and cache is None:
        warnings.warn(
            "decision_logs requested without a per-cell cache; logs have "
            "nowhere to go and will be discarded",
            RuntimeWarning, stacklevel=2)

    fingerprints: Dict[CellKey, str] = {}
    if cache is not None:
        fingerprints = {key: config.cell_fingerprint(*key) for key in cells}
        results.update(cache.load_many(fingerprints))
        if config.decision_logs:
            # Results without a decision log must re-run to produce one.
            results = {key: result for key, result in results.items()
                       if cache.has_decision_log(fingerprints[key])}
        if verbose and results:
            print(f"  resumed {len(results)}/{total} cell(s) "
                  f"from {cache.root}")

    pending = [key for key in cells if key not in results]
    done = len(results)

    def finish(key: CellKey, result: RunResult,
               snapshot: Optional[TelemetrySnapshot],
               log: Optional["DecisionLog"]) -> None:
        nonlocal done
        results[key] = result
        if telemetry is not None and snapshot is not None:
            telemetry[key] = snapshot
        if cache is not None:
            cache.store(fingerprints[key], key, result)
            if log is not None:
                meta, records = log
                cache.store_decision_log(fingerprints[key], records, meta)
        done += 1
        if verbose:
            print(f"  [{done}/{total}] done {key}")

    def fail(key: CellKey, failure: CellFailure) -> None:
        nonlocal done
        failures[key] = failure
        done += 1
        if verbose:
            print(f"  [{done}/{total}] FAILED {key}: "
                  f"{failure.error_type}: {failure.message}")

    def args_for(key: CellKey):
        return (key[0], key[1], key[2], config.phases, config.scale,
                None, collect_telemetry, config.decision_logs)

    if pending:
        jobs = config.jobs if config.jobs > 0 else (os.cpu_count() or 2)
        jobs = min(jobs, len(pending))
        if jobs > 1:
            pending = _run_cells_parallel(pending, args_for, jobs,
                                          config.cell_timeout, finish, fail)
        for key in pending:
            _run_cell_with_retry(key, args_for(key), finish, fail)

    return SweepResults(config=config, cells=results, telemetry=telemetry,
                        failures=failures)


def _write_monolithic(cache_path: str, results: SweepResults) -> None:
    cache_dir = os.path.dirname(cache_path)
    if cache_dir:
        os.makedirs(cache_dir, exist_ok=True)
    with open(cache_path, "w") as handle:
        handle.write(results.to_json())


def _migrate_legacy_cells(legacy: SweepResults, cache: CellCache) -> None:
    """Seed the per-cell cache from a monolithic (legacy) sweep file.

    Entries are fingerprinted under the *legacy* config's phases and
    scale, so they are reused exactly when a new sweep would reproduce
    them -- including sweeps over a different benchmark/family subset.
    """
    for key, result in legacy.cells.items():
        fingerprint = legacy.config.cell_fingerprint(*key)
        if not cache.has(fingerprint):
            cache.store(fingerprint, key, result)


def load_or_run_sweep(cache_path: str,
                      config: Optional[SweepConfig] = None,
                      verbose: bool = False,
                      use_cache: bool = True,
                      resume: bool = True) -> SweepResults:
    """Load, resume, or run a sweep, keeping ``cache_path`` up to date.

    ``cache_path`` is the monolithic JSON snapshot (kept for the figure
    pipeline and as the fast path when its config matches exactly); the
    per-cell resumable cache lives beside it in
    ``cell_cache_root(cache_path)``.  A legacy monolithic file whose
    config does *not* match is migrated cell-by-cell into the per-cell
    cache, so its overlapping cells are still reused.  ``use_cache=False``
    ignores and overwrites every cache; ``resume=False`` keeps the
    monolithic fast path but skips the per-cell layer.
    """
    if config is None:
        config = SweepConfig()
    if not use_cache:
        results = run_sweep(config, verbose=verbose)
        _write_monolithic(cache_path, results)
        return results

    cache = CellCache(cell_cache_root(cache_path)) if resume else None
    legacy: Optional[SweepResults] = None
    if os.path.exists(cache_path):
        try:
            with open(cache_path) as handle:
                legacy = SweepResults.from_json(handle.read())
        except (ValueError, KeyError, TypeError) as exc:
            # Corrupt or structurally stale cache: say so before quietly
            # regenerating, so surprising re-runs are explicable.
            warnings.warn(
                f"sweep cache {cache_path!r} is unreadable "
                f"({type(exc).__name__}: {exc}); regenerating it",
                RuntimeWarning, stacklevel=2)
    if legacy is not None:
        if cache is not None:
            _migrate_legacy_cells(legacy, cache)
        if legacy.config == config and not legacy.failures:
            # With decision logs requested, the monolithic fast path is
            # only valid when every cell's log is actually on disk.
            if not config.decision_logs or (cache is not None and all(
                    cache.has_decision_log(config.cell_fingerprint(*key))
                    for key in config.configurations())):
                return legacy

    results = run_sweep(config, verbose=verbose, cache=cache)
    _write_monolithic(cache_path, results)
    return results
