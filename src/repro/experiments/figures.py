"""Regeneration of every table and figure in the paper's evaluation.

Each function consumes a :class:`~repro.experiments.runner.SweepResults`
(or runs the small dedicated experiment it needs) and returns both the raw
numbers and a rendered ASCII form, so the benches can print exactly the
rows/series the paper reports:

* :func:`table1` -- benchmark characteristics (classes, methods, bytecodes
  dynamically compiled);
* :func:`figure2` -- the HashMap example's context-insensitive vs
  context-sensitive profile split;
* :func:`figure4` -- wall-clock speedup per policy/depth/benchmark with the
  harmonic-mean bar;
* :func:`figure5` -- optimized code-space change, same axes;
* :func:`figure6` -- percent of execution time per AOS component;
* :func:`termination_stats` -- Section 4's in-text early-termination
  statistics;
* :func:`headline` -- the abstract's summary numbers.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.aos.cost_accounting import (AI_ORGANIZER, COMPILATION, CONTROLLER,
                                       DECAY_ORGANIZER, LISTENERS,
                                       METHOD_ORGANIZER)
from repro.aos.listeners import TerminationStatsProbe
from repro.aos.runtime import AdaptiveRuntime
from repro.experiments.runner import SweepResults, run_single
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.metrics.report import (format_fraction_bars, format_percent,
                                  format_percent_matrix, format_table)
from repro.metrics.stats import harmonic_mean_speedup
from repro.policies import make_policy
from repro.profiles.dcg import DynamicCallGraph
from repro.workloads.hashmap_example import build as build_hashmap
from repro.workloads.spec import BENCHMARK_ORDER, build_benchmark

#: Figure 6's component order (legend order in the paper).
FIGURE6_COMPONENTS = (LISTENERS, COMPILATION, DECAY_ORGANIZER, AI_ORGANIZER,
                      METHOD_ORGANIZER, CONTROLLER)

HARMEAN = "harMean"


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def table1(scale: float = 1.0) -> Tuple[List[dict], str]:
    """Benchmark characteristics, measured on a context-insensitive run."""
    rows = []
    for name in BENCHMARK_ORDER:
        result = run_single(name, "cins", 1, scale=scale)
        rows.append({
            "benchmark": name,
            "classes": result.classes_loaded,
            "methods": result.methods_compiled,
            "bytecodes": result.bytecodes_compiled,
        })
    rendered = format_table(
        ["Benchmark", "Classes", "Methods", "Bytecodes"],
        [[r["benchmark"], str(r["classes"]), str(r["methods"]),
          str(r["bytecodes"])] for r in rows],
        title="Table 1: benchmark characteristics (dynamically compiled)")
    return rows, rendered


# ---------------------------------------------------------------------------
# Figure 2 (the HashMap motivating example)
# ---------------------------------------------------------------------------

def figure2(iterations: int = 4000) -> Tuple[dict, str]:
    """Edge vs depth-2 profiles of the Figure 1 program.

    Runs the HashMapTest program once under edge profiling and once under
    depth-2 fixed sensitivity, then reports the target distribution at the
    ``hashCode`` site inside ``HashMap.get`` -- globally (50/50 in the
    paper's Figure 2b) and per ``runTest`` call-site context (100%/100% in
    Figure 2c).
    """
    data: Dict[str, dict] = {}
    for label, family, depth in (("edge", "cins", 1), ("trace", "fixed", 2)):
        built = build_hashmap(iterations)
        runtime = AdaptiveRuntime(built.program, make_policy(family, depth))
        runtime.run()
        dcg = runtime.state.dcg
        distribution = dcg.site_target_distribution(
            "HashMap.get", built.sites.hash_site)
        total = sum(distribution.values()) or 1.0
        global_split = {callee: weight / total
                        for callee, weight in sorted(distribution.items())}
        per_context: Dict[str, Dict[str, float]] = {}
        for key, weight in dcg.items():
            if (key.context[0] != ("HashMap.get", built.sites.hash_site)
                    or key.depth < 2):
                continue
            context_name = f"runTest@cs{key.context[1][1]}"
            bucket = per_context.setdefault(context_name, {})
            bucket[key.callee] = bucket.get(key.callee, 0.0) + weight
        for bucket in per_context.values():
            bucket_total = sum(bucket.values())
            for callee in bucket:
                bucket[callee] /= bucket_total
        data[label] = {"global": global_split, "per_context": per_context}

    lines = ["Figure 2: HashMap example profile data",
             "  (b) context-insensitive split at HashMap.get->hashCode:"]
    for callee, share in data["edge"]["global"].items():
        lines.append(f"      {callee}: {100 * share:.0f}%")
    lines.append("  (c) context-sensitive split per runTest call site:")
    for context_name, bucket in sorted(data["trace"]["per_context"].items()):
        for callee, share in sorted(bucket.items()):
            lines.append(f"      {context_name} => {callee}: "
                         f"{100 * share:.0f}%")
    return data, "\n".join(lines)


# ---------------------------------------------------------------------------
# Figures 4 and 5
# ---------------------------------------------------------------------------

def _metric_matrix(results: SweepResults, family: str,
                   metric) -> Dict[str, Dict[int, float]]:
    matrix: Dict[str, Dict[int, float]] = {}
    for benchmark in results.config.benchmarks:
        matrix[benchmark] = {depth: metric(benchmark, family, depth)
                             for depth in results.config.depths}
    matrix[HARMEAN] = {
        depth: harmonic_mean_speedup(
            [matrix[b][depth] for b in results.config.benchmarks])
        for depth in results.config.depths}
    return matrix


def figure4(results: SweepResults) -> Tuple[Dict[str, dict], str]:
    """Wall-clock speedup panels (one per policy family)."""
    panels = {family: _metric_matrix(results, family,
                                     results.speedup_percent)
              for family in results.config.families}
    rendered = "\n\n".join(
        format_percent_matrix(
            f"Figure 4 ({family}): wall-clock speedup vs cins",
            list(results.config.benchmarks) + [HARMEAN],
            list(results.config.depths), panels[family])
        for family in results.config.families)
    return panels, rendered


def figure5(results: SweepResults) -> Tuple[Dict[str, dict], str]:
    """Optimized code-space change panels (negative = smaller code)."""
    panels = {family: _metric_matrix(results, family,
                                     results.code_size_percent)
              for family in results.config.families}
    rendered = "\n\n".join(
        format_percent_matrix(
            f"Figure 5 ({family}): optimized code space vs cins",
            list(results.config.benchmarks) + [HARMEAN],
            list(results.config.depths), panels[family])
        for family in results.config.families)
    return panels, rendered


def compile_time(results: SweepResults) -> Tuple[Dict[str, dict], str]:
    """Optimizing-compilation-time change (the paper's compile-time claim)."""
    panels = {family: _metric_matrix(results, family,
                                     results.compile_time_percent)
              for family in results.config.families}
    rendered = "\n\n".join(
        format_percent_matrix(
            f"Compile time ({family}): optimizing compilation vs cins",
            list(results.config.benchmarks) + [HARMEAN],
            list(results.config.depths), panels[family])
        for family in results.config.families)
    return panels, rendered


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

def figure6(results: SweepResults) -> Tuple[Dict[str, Dict[str, float]], str]:
    """Percent of execution time in each AOS component.

    Averaged across benchmarks for the baseline and for each (family,
    depth) configuration, matching the paper's grouped bars.
    """
    series: Dict[str, Dict[str, float]] = {}
    labels: List[str] = []

    def average(family: str, depth: int) -> Dict[str, float]:
        sums = {component: 0.0 for component in FIGURE6_COMPONENTS}
        for benchmark in results.config.benchmarks:
            run = results.result(benchmark, family, depth)
            for component in FIGURE6_COMPONENTS:
                sums[component] += (run.component_cycles[component]
                                    / run.total_cycles)
        n = len(results.config.benchmarks)
        return {component: sums[component] / n
                for component in FIGURE6_COMPONENTS}

    labels.append("cins")
    series["cins"] = average("cins", 1)
    for family in results.config.families:
        for depth in results.config.depths:
            label = f"{family}-{depth}"
            labels.append(label)
            series[label] = average(family, depth)

    rendered = format_fraction_bars(
        "Figure 6: percent of execution time per AOS component",
        labels, series, FIGURE6_COMPONENTS)
    return series, rendered


# ---------------------------------------------------------------------------
# Section 4 in-text statistics
# ---------------------------------------------------------------------------

def termination_stats(scale: float = 1.0,
                      costs: CostModel = DEFAULT_COSTS
                      ) -> Tuple[Dict[str, dict], str]:
    """Early-termination statistics across the suite (Section 4.2/4.3)."""
    per_benchmark: Dict[str, dict] = {}
    for name in BENCHMARK_ORDER:
        probe = TerminationStatsProbe(costs)
        run_single(name, "cins", 1, scale=scale, costs=costs, probe=probe)
        per_benchmark[name] = {
            "samples": probe.samples,
            "immediately_parameterless":
                probe.fraction_immediately_parameterless(),
            "parameterless_within_5":
                probe.fraction_parameterless_within(5),
            "class_method_within_2":
                probe.fraction_class_method_within(2),
            "large_at_or_beyond_4":
                probe.fraction_large_at_or_beyond(4),
        }
    rows = [[name,
             f"{stats['immediately_parameterless'] * 100:.0f}%",
             f"{stats['parameterless_within_5'] * 100:.0f}%",
             f"{stats['class_method_within_2'] * 100:.0f}%",
             f"{stats['large_at_or_beyond_4'] * 100:.0f}%"]
            for name, stats in per_benchmark.items()]
    rendered = format_table(
        ["Benchmark", "paramless@0", "paramless<=5", "classMeth<=2",
         "large>=4"],
        rows,
        title=("Section 4 termination statistics "
               "(paper: ~20%, 50-80%, 50-80%, ~50%)"))
    return per_benchmark, rendered


# ---------------------------------------------------------------------------
# Headline numbers (abstract)
# ---------------------------------------------------------------------------

def headline(results: SweepResults) -> Tuple[dict, str]:
    """The abstract's summary: perf within ~+/-1% on average, ~10% code and
    compile-time reductions, with per-benchmark extremes."""
    speedups: List[float] = []
    code_changes: List[float] = []
    compile_changes: List[float] = []
    for benchmark in results.config.benchmarks:
        for family in results.config.families:
            for depth in results.config.depths:
                speedups.append(
                    results.speedup_percent(benchmark, family, depth))
                code_changes.append(
                    results.code_size_percent(benchmark, family, depth))
                compile_changes.append(
                    results.compile_time_percent(benchmark, family, depth))

    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values)

    data = {
        "mean_speedup_percent": mean(speedups),
        "min_speedup_percent": min(speedups),
        "max_speedup_percent": max(speedups),
        "mean_code_change_percent": mean(code_changes),
        "best_code_reduction_percent": min(code_changes),
        "mean_compile_change_percent": mean(compile_changes),
        "best_compile_reduction_percent": min(compile_changes),
    }
    rendered = "\n".join([
        "Headline numbers (paper: perf +/-1% avg, -4.2%..+5.3% extremes;",
        "  ~10% code/compile reductions; up to -56.7% code, -33.0% compile)",
        f"  mean speedup      {format_percent(data['mean_speedup_percent'])}",
        f"  speedup extremes  {format_percent(data['min_speedup_percent'])}"
        f" .. {format_percent(data['max_speedup_percent'])}",
        f"  mean code change  "
        f"{format_percent(data['mean_code_change_percent'])}",
        f"  best code change  "
        f"{format_percent(data['best_code_reduction_percent'])}",
        f"  mean compile time "
        f"{format_percent(data['mean_compile_change_percent'])}",
        f"  best compile time "
        f"{format_percent(data['best_compile_reduction_percent'])}",
    ])
    return data, rendered
