"""Ablation experiments for the design choices DESIGN.md calls out.

* :func:`threshold_sweep` (E8) -- the paper fixes the hot-edge threshold at
  1.5% of total profile weight.  Sweeping it shows the profile-dilution
  mechanism directly: with deeper contexts, a higher threshold suppresses
  more rules (less inlining, smaller code), a lower one re-admits the
  diluted traces.
* :func:`decay_ablation` (E9) -- the decay organizer exists so hot-edge
  detection tracks recent behaviour (Section 3.2).  Running the two-phase
  workload with and without decay measures what it buys: without decay the
  phase-1 profile never fades, the phase-2 target never becomes hot, and
  the stale guarded inline keeps missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.aos.runtime import AdaptiveRuntime, RunResult
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.metrics.report import format_table
from repro.policies import make_policy
from repro.workloads import phase_shift
from repro.workloads.spec import build_benchmark


@dataclass
class ThresholdPoint:
    """One point of the threshold sweep."""

    threshold: float
    rules: int
    total_cycles: float
    live_code_bytes: int
    opt_compile_cycles: float


def threshold_sweep(benchmark: str = "db",
                    thresholds: Sequence[float] = (0.005, 0.010, 0.015,
                                                   0.030, 0.050),
                    family: str = "fixed", depth: int = 3,
                    scale: float = 1.0) -> Tuple[List[ThresholdPoint], str]:
    """Sweep the hot-edge threshold for one benchmark/policy."""
    points = []
    for threshold in thresholds:
        costs = DEFAULT_COSTS.replace(hot_edge_threshold=threshold)
        generated = build_benchmark(benchmark, scale=scale)
        runtime = AdaptiveRuntime(generated.program,
                                  make_policy(family, depth, costs), costs)
        result = runtime.run()
        points.append(ThresholdPoint(
            threshold=threshold,
            rules=result.rule_count,
            total_cycles=result.total_cycles,
            live_code_bytes=result.live_opt_code_bytes,
            opt_compile_cycles=result.opt_compile_cycles))

    rows = [[f"{p.threshold * 100:.1f}%", str(p.rules),
             f"{p.total_cycles / 1e6:.3f}M", str(p.live_code_bytes),
             f"{p.opt_compile_cycles / 1e3:.0f}k"]
            for p in points]
    rendered = format_table(
        ["threshold", "rules", "cycles", "opt code B", "compile cyc"],
        rows,
        title=(f"E8: hot-edge threshold sweep on {benchmark} "
               f"({family}, max={depth}; paper uses 1.5%)"))
    return points, rendered


@dataclass
class DecayOutcome:
    """One arm of the decay ablation."""

    label: str
    guard_misses: int
    recompiles_of_hot_method: int
    total_cycles: float
    final_rule_targets: Tuple[str, ...]


def decay_ablation(iterations: int = 80_000,
                   switch_fraction: float = 0.75
                   ) -> Tuple[Dict[str, DecayOutcome], str]:
    """Two-phase workload with and without profile decay.

    The receiver flips late in the run (default: at 75%), so only a system
    that *forgets* the first phase can re-optimize for the second.
    """
    outcomes: Dict[str, DecayOutcome] = {}
    for label, costs in (
            ("decay on", DEFAULT_COSTS),
            ("decay off", DEFAULT_COSTS.replace(
                decay_period=10 ** 12))):
        built = phase_shift.build(iterations, switch_fraction)
        runtime = AdaptiveRuntime(built.program, make_policy("cins", 1),
                                  costs)
        result = runtime.run()
        targets = tuple(sorted(
            rule.callee for rule in runtime.state.rules
            if rule.context[0] == ("App.work", built.step_site)))
        outcomes[label] = DecayOutcome(
            label=label,
            guard_misses=result.guard_misses,
            recompiles_of_hot_method=runtime.database.version_count(
                "App.work"),
            total_cycles=result.total_cycles,
            final_rule_targets=targets)

    rows = [[o.label, str(o.guard_misses),
             str(o.recompiles_of_hot_method),
             f"{o.total_cycles / 1e6:.3f}M",
             ", ".join(o.final_rule_targets) or "(none)"]
            for o in outcomes.values()]
    rendered = format_table(
        ["config", "guard misses", "App.work versions", "cycles",
         "final rules at step site"],
        rows,
        title="E9: decay organizer ablation on the two-phase workload")
    return outcomes, rendered
