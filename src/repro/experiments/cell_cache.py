"""The resumable per-cell sweep cache.

One sweep cell = one JSON file, written atomically the moment the cell's
worker finishes and named by the cell's content fingerprint (see
:func:`repro.experiments.config.cell_fingerprint`).  This replaces the
old all-or-nothing monolithic cache, whose single file lost every
completed cell to one corrupt byte or one crashed worker -- exactly the
failure mode profile-collection pipelines have to survive.

Properties the harness relies on:

* **Resumability** -- a killed sweep leaves every finished cell on disk;
  the restarted sweep loads them and dispatches only the missing ones.
* **Content addressing** -- the fingerprint covers benchmark, family,
  depth, phases, scale, and the full cost model, so entries are reused
  across differently-shaped sweep configs and never reused stale.
* **Corruption isolation** -- an unreadable entry costs exactly one cell
  rerun (with a warning), never the whole sweep.
* **Atomicity** -- entries are written to a temp file and ``os.replace``d
  into place, so a kill mid-write cannot leave a half-entry that poisons
  the next resume.

Failures are deliberately *not* cached: a cell that crashed or timed out
is retried on the next run.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from typing import Dict, Mapping, Optional, Tuple

from repro.aos.runtime import RunResult
from repro.provenance.records import read_decision_log, write_decision_log

#: Schema version of one cell entry file.
CELL_FORMAT = 1

CellKey = Tuple[str, str, int]  # (benchmark, family, depth)


def result_to_dict(result: RunResult) -> dict:
    """JSON-ready payload for one :class:`RunResult`."""
    return dataclasses.asdict(result)


def result_from_dict(raw: Mapping) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    fields = dict(raw)
    fields["depth_histogram"] = {int(k): v for k, v
                                 in fields["depth_histogram"].items()}
    fields["component_cycles"] = dict(fields["component_cycles"])
    return RunResult(**fields)  # type: ignore[arg-type]


def cell_cache_root(cache_path: str) -> str:
    """The per-cell cache directory paired with a monolithic cache path.

    ``sweep.json`` gets its cells in ``sweep.cells/`` next to it, so the
    two stay visibly associated and one ``rm -r`` clears both.
    """
    stem, ext = os.path.splitext(cache_path)
    return (stem if ext == ".json" else cache_path) + ".cells"


class CellCache:
    """Directory of fingerprint-named single-cell result files."""

    def __init__(self, root: str):
        self.root = root

    def path_for(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint + ".json")

    def has(self, fingerprint: str) -> bool:
        return os.path.exists(self.path_for(fingerprint))

    def load(self, fingerprint: str) -> Optional[RunResult]:
        """The cached result for a fingerprint, or ``None``.

        Missing entries return ``None`` silently; corrupt or mismatched
        entries return ``None`` with a warning (costing one cell rerun,
        never the sweep).
        """
        path = self.path_for(fingerprint)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            if payload.get("fingerprint") != fingerprint:
                raise ValueError("entry fingerprint does not match its "
                                 "file name")
            return result_from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"sweep cell cache entry {path!r} is unreadable "
                f"({type(exc).__name__}: {exc}); rerunning that cell",
                RuntimeWarning, stacklevel=2)
            return None

    def load_many(self, fingerprints: Mapping[CellKey, str]) \
            -> Dict[CellKey, RunResult]:
        """All cached results among ``{cell key: fingerprint}``."""
        found: Dict[CellKey, RunResult] = {}
        for key, fingerprint in fingerprints.items():
            result = self.load(fingerprint)
            if result is not None:
                found[key] = result
        return found

    def store(self, fingerprint: str, key: CellKey,
              result: RunResult) -> str:
        """Atomically persist one cell result; returns the entry path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(fingerprint)
        payload = {
            "format": CELL_FORMAT,
            "key": list(key),
            "fingerprint": fingerprint,
            "result": result_to_dict(result),
        }
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        return path

    # -- decision-provenance logs ------------------------------------------

    def decision_log_path(self, fingerprint: str) -> str:
        """Where a cell's decision log lives (sibling of its result)."""
        return os.path.join(self.root, fingerprint + ".decisions.jsonl")

    def has_decision_log(self, fingerprint: str) -> bool:
        return os.path.exists(self.decision_log_path(fingerprint))

    def store_decision_log(self, fingerprint: str, records,
                           meta: Optional[dict] = None) -> str:
        """Atomically persist one cell's decision log; returns its path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.decision_log_path(fingerprint)
        write_decision_log(path, records, meta or {})
        return path

    def load_decision_log(self, fingerprint: str):
        """``(meta, records)`` for a cached log, or ``None``.

        Same tolerance policy as :meth:`load`: missing is silent, corrupt
        warns and costs a re-record, never the sweep.
        """
        path = self.decision_log_path(fingerprint)
        try:
            return read_decision_log(path)
        except FileNotFoundError:
            return None
        except (ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"decision log {path!r} is unreadable "
                f"({type(exc).__name__}: {exc}); ignoring it",
                RuntimeWarning, stacklevel=2)
            return None
