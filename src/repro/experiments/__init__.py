"""Experiment harness: sweeps, figure regeneration, ablations, extensions."""
