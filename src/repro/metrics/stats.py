"""Statistical helpers used by the experiment harness.

The paper aggregates per-benchmark speedups with a harmonic mean (the
``harMean`` bars of Figures 4-5); this module provides that plus the
percent-change conventions used throughout the reports.
"""

from __future__ import annotations

import math
from typing import Iterable, NamedTuple, Sequence


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of positive values.

    Raises ``ValueError`` on empty input or non-positive entries (a
    harmonic mean of ratios is only meaningful for positive ratios).
    """
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of empty sequence")
    for v in values:
        if v <= 0:
            raise ValueError(f"harmonic mean needs positive values, got {v}")
    return len(values) / sum(1.0 / v for v in values)


def percent_change(new: float, old: float) -> float:
    """``new`` relative to ``old`` as a percentage (positive = bigger)."""
    if old == 0:
        raise ValueError("percent change from zero")
    return 100.0 * (new - old) / old


def speedup_percent(baseline_time: float, new_time: float) -> float:
    """Wall-clock speedup as the paper plots it (positive = faster).

    A bar of +5% means the new configuration ran the same work in
    ``baseline/1.05`` of the time.
    """
    if new_time <= 0:
        raise ValueError("non-positive execution time")
    return 100.0 * (baseline_time / new_time - 1.0)


def harmonic_mean_speedup(speedups_percent: Iterable[float]) -> float:
    """Aggregate per-benchmark speedups the way the paper's harMean does.

    Speedup percentages are converted to time ratios, averaged
    harmonically, and converted back.
    """
    ratios = [1.0 + s / 100.0 for s in speedups_percent]
    return 100.0 * (harmonic_mean(ratios) - 1.0)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used by ablation reports)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric mean needs positive values, got {v}")
        product *= v
    return product ** (1.0 / len(values))


def median(values: Sequence[float]) -> float:
    """Median (no statistics-module dependency for the hot path)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ---------------------------------------------------------------------------
# Confidence intervals (causal-profiler reporting)
#
# Multi-seed causal experiments report every predicted speedup with a
# t-based confidence interval and flag cells whose *relative* CI width
# makes the headline number misleading (the RCIW criterion of the
# microbenchmark-rigor literature).  No scipy: the two-sided 95% t-table
# is inlined for the small sample counts a seed grid produces.
# ---------------------------------------------------------------------------

#: Two-sided 95% Student-t critical values by degrees of freedom.  Seed
#: grids are small (2-10 runs); beyond df=30 the normal value is used.
_T_CRITICAL_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
    25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}
_Z_CRITICAL_95 = 1.960


class ConfidenceInterval(NamedTuple):
    """A mean with its two-sided 95% confidence bounds."""

    mean: float
    low: float
    high: float
    n: int

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2.0


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on empty input."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_stddev(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation; needs at least two values."""
    values = list(values)
    if len(values) < 2:
        raise ValueError("sample stddev needs at least two values")
    centre = sum(values) / len(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values)
                     / (len(values) - 1))


def confidence_interval(values: Sequence[float]) -> ConfidenceInterval:
    """Two-sided 95% t-interval for the mean of ``values``.

    A single observation carries no variance information, so ``n == 1``
    yields infinite bounds (maximally uncertain) rather than a
    deceptively tight zero-width interval -- downstream RCIW checks then
    flag the cell as noisy instead of trusting it.
    """
    values = list(values)
    if not values:
        raise ValueError("confidence interval of empty sequence")
    centre = sum(values) / len(values)
    n = len(values)
    if n == 1:
        return ConfidenceInterval(centre, -math.inf, math.inf, 1)
    t = _T_CRITICAL_95.get(n - 1, _Z_CRITICAL_95)
    half = t * sample_stddev(values) / math.sqrt(n)
    return ConfidenceInterval(centre, centre - half, centre + half, n)


def relative_ci_width(values: Sequence[float]) -> float:
    """Relative CI width: (high - low) / |mean|, the RCIW noise metric.

    Edge cases are defined so downstream flagging stays monotone:
    identical samples have zero width and return ``0.0`` (perfectly
    stable even around a zero mean), while any nonzero width around a
    zero mean -- or a single-sample interval -- returns ``inf`` (the
    headline number cannot be trusted at all).
    """
    interval = confidence_interval(values)
    width = interval.high - interval.low
    if width == 0.0:
        return 0.0
    if not math.isfinite(width) or interval.mean == 0.0:
        return math.inf
    return width / abs(interval.mean)
