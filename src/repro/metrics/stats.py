"""Statistical helpers used by the experiment harness.

The paper aggregates per-benchmark speedups with a harmonic mean (the
``harMean`` bars of Figures 4-5); this module provides that plus the
percent-change conventions used throughout the reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of positive values.

    Raises ``ValueError`` on empty input or non-positive entries (a
    harmonic mean of ratios is only meaningful for positive ratios).
    """
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of empty sequence")
    for v in values:
        if v <= 0:
            raise ValueError(f"harmonic mean needs positive values, got {v}")
    return len(values) / sum(1.0 / v for v in values)


def percent_change(new: float, old: float) -> float:
    """``new`` relative to ``old`` as a percentage (positive = bigger)."""
    if old == 0:
        raise ValueError("percent change from zero")
    return 100.0 * (new - old) / old


def speedup_percent(baseline_time: float, new_time: float) -> float:
    """Wall-clock speedup as the paper plots it (positive = faster).

    A bar of +5% means the new configuration ran the same work in
    ``baseline/1.05`` of the time.
    """
    if new_time <= 0:
        raise ValueError("non-positive execution time")
    return 100.0 * (baseline_time / new_time - 1.0)


def harmonic_mean_speedup(speedups_percent: Iterable[float]) -> float:
    """Aggregate per-benchmark speedups the way the paper's harMean does.

    Speedup percentages are converted to time ratios, averaged
    harmonically, and converted back.
    """
    ratios = [1.0 + s / 100.0 for s in speedups_percent]
    return 100.0 * (harmonic_mean(ratios) - 1.0)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used by ablation reports)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric mean needs positive values, got {v}")
        product *= v
    return product ** (1.0 / len(values))


def median(values: Sequence[float]) -> float:
    """Median (no statistics-module dependency for the hot path)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0
