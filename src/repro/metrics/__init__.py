"""Statistics and report rendering shared by the experiment harness."""
