"""ASCII rendering of the paper's tables and figures.

The bench harness prints the same rows/series the paper reports; these
helpers keep the formatting consistent (fixed column widths, one row per
benchmark, one column per max-depth, harMean row at the bottom -- the
textual equivalent of the paper's bar charts).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str = "") -> str:
    """Render a simple fixed-width table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_percent(value: float) -> str:
    return f"{value:+.1f}%"


def format_percent_matrix(title: str,
                          row_names: Sequence[str],
                          col_names: Sequence[int],
                          values: Mapping[str, Mapping[int, float]]) -> str:
    """A benchmark x depth matrix of percentages (one Figure 4/5 panel)."""
    headers = ["benchmark"] + [f"max={c}" for c in col_names]
    rows = []
    for name in row_names:
        row = [name]
        for col in col_names:
            try:
                row.append(format_percent(values[name][col]))
            except KeyError:
                row.append("--")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_fraction_bars(title: str,
                         labels: Sequence[str],
                         series: Mapping[str, Mapping[str, float]],
                         components: Sequence[str]) -> str:
    """Figure-6-style stacked percentages: one row per configuration."""
    headers = ["config"] + list(components) + ["total"]
    rows = []
    for label in labels:
        fractions = series[label]
        row = [label]
        total = 0.0
        for component in components:
            value = 100.0 * fractions.get(component, 0.0)
            total += value
            row.append(f"{value:.3f}%")
        row.append(f"{total:.3f}%")
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_bar_chart(title: str,
                     values: Mapping[str, float],
                     width: int = 40,
                     unit: str = "%") -> str:
    """Render labeled values as a signed horizontal ASCII bar chart.

    A textual analogue of the paper's bar figures: negative bars extend
    left of the axis, positive bars right, scaled to the largest absolute
    value.  Used by the CLI's figure output for quick visual comparison.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        return title
    label_width = max(len(label) for label in values)
    peak = max(abs(v) for v in values.values()) or 1.0
    half = width // 2
    for label, value in values.items():
        magnitude = int(round(abs(value) / peak * half))
        if value < 0:
            bar = " " * (half - magnitude) + "#" * magnitude + "|"
            bar += " " * half
        else:
            bar = " " * half + "|" + "#" * magnitude
            bar += " " * (half - magnitude)
        lines.append(f"{label.ljust(label_width)} {bar} "
                     f"{value:+.1f}{unit}")
    return "\n".join(lines)
