"""Method size classification (paper Section 3.1).

Jikes RVM classifies inlining candidates into four categories by the
estimated machine-code size of their inlined body, expressed relative to
the size of a call instruction:

* **tiny** (< 2x call) -- unconditionally inlined when statically bound
  without a guard;
* **small** (2-5x) -- inlined subject to code-expansion and depth
  heuristics when statically bindable (possibly with a guard);
* **medium** (5-25x) -- candidates for profile-directed inlining only;
* **large** (> 25x) -- never inlined.

The estimate is adjusted for dataflow properties of the actual arguments:
constant arguments shrink the estimate, modeling downstream constant
folding (the paper's Section 3.1 footnote).
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.jvm.costs import CostModel
from repro.jvm.program import Const, Expr, MethodDef


class SizeClass(enum.Enum):
    """The four inlining size categories of Section 3.1."""

    TINY = "tiny"
    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"


#: Fractional size reduction applied per constant actual argument.
CONST_ARG_DISCOUNT = 0.08

#: The estimate never shrinks below this fraction of the raw size.
MIN_ESTIMATE_FRACTION = 0.6


def count_constant_args(args: Sequence[Expr]) -> int:
    """How many actual arguments at a call site are compile-time constants."""
    return sum(1 for a in args if isinstance(a, Const))


def estimate_inlined_bytecodes(method: MethodDef, constant_args: int = 0) -> int:
    """Estimated bytecodes the method contributes when inlined.

    Each constant argument reduces the estimate by
    :data:`CONST_ARG_DISCOUNT`, floored at :data:`MIN_ESTIMATE_FRACTION` of
    the raw body size and never below 1.
    """
    raw = method.bytecodes
    factor = max(MIN_ESTIMATE_FRACTION, 1.0 - CONST_ARG_DISCOUNT * constant_args)
    return max(1, int(raw * factor))


#: Classification cache bound; far above any realistic (methods x
#: const-arg signatures x cost limits) working set, so in practice the
#: cache never cycles -- the bound only protects pathological sweeps
#: that churn through thousands of distinct cost models.
_CLASSIFY_CACHE_LIMIT = 4096

_classify_cache: dict = {}
_classify_hits = 0
_classify_misses = 0


def classify(method: MethodDef, costs: CostModel,
             constant_args: int = 0) -> SizeClass:
    """Classify a method into its inlining size category.

    Memoized: the oracle re-classifies the same callee at every call
    site, compilation, and recompilation, and the answer depends only on
    the method (hashed by identity -- ``MethodDef`` bodies are frozen
    after program construction), the constant-argument count, and the
    three size limits.  ``CostModel`` itself is mutable and unhashable,
    so the key carries the limits it contributes, not the model.
    """
    global _classify_hits, _classify_misses
    key = (method, constant_args,
           costs.tiny_limit, costs.small_limit, costs.medium_limit)
    cached = _classify_cache.get(key)
    if cached is not None:
        _classify_hits += 1
        return cached
    _classify_misses += 1
    size = estimate_inlined_bytecodes(method, constant_args)
    if size < costs.tiny_limit:
        result = SizeClass.TINY
    elif size <= costs.small_limit:
        result = SizeClass.SMALL
    elif size <= costs.medium_limit:
        result = SizeClass.MEDIUM
    else:
        result = SizeClass.LARGE
    if len(_classify_cache) >= _CLASSIFY_CACHE_LIMIT:
        _classify_cache.clear()
    _classify_cache[key] = result
    return result


def classify_cache_info() -> dict:
    """Hit/miss/size counters for the classification memo."""
    return {"hits": _classify_hits, "misses": _classify_misses,
            "size": len(_classify_cache)}


def clear_classify_cache() -> None:
    """Drop the classification memo and reset its counters (tests)."""
    global _classify_hits, _classify_misses
    _classify_cache.clear()
    _classify_hits = 0
    _classify_misses = 0


def is_large(method: MethodDef, costs: CostModel) -> bool:
    """True when the method is in the never-inlined category.

    Used both by the oracle and by the Large-Methods early-termination
    policy (Section 4.3), which stops trace collection one level above a
    large method.
    """
    return classify(method, costs) is SizeClass.LARGE
