"""Simulated compiler tiers: baseline (in the code cache) and optimizing."""
