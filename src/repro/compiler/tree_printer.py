"""Pretty-printer for inline trees.

Renders a :class:`~repro.compiler.compiled_method.CompiledMethod`'s inline
tree as an indented ASCII tree annotated with sizes, guard kinds, and the
call sites each expansion hangs from -- the compiled-code view the paper's
discussion reasons about (which targets were inlined where, behind which
guards).  Used by the ``inspect`` CLI command and handy in tests and
debugging sessions.
"""

from __future__ import annotations

from typing import List

from repro.compiler.compiled_method import (CompiledMethod, GUARDED,
                                            InlineDecision, InlineNode)


def render_inline_tree(compiled: CompiledMethod) -> str:
    """Render one compiled method's inline tree."""
    lines: List[str] = [
        f"{compiled.method.id} v{compiled.version} "
        f"[{compiled.inlined_bytecodes} bc inlined, "
        f"{compiled.code_bytes} bytes]"
    ]
    _render_node(compiled.root, "", lines)
    return "\n".join(lines)


def _render_node(node: InlineNode, indent: str, lines: List[str]) -> None:
    for site in sorted(node.decisions):
        decision = node.decisions[site]
        marker = "guarded" if decision.kind == GUARDED else "direct"
        for position, option in enumerate(decision.options):
            guard = ""
            if decision.kind == GUARDED:
                guard = f" guard#{position + 1}({option.guard_class})"
            lines.append(
                f"{indent}  @site {site} {marker}{guard} -> "
                f"{option.target.id} [{option.target.bytecodes} bc]")
            _render_node(option.node, indent + "    ", lines)
        if decision.kind == GUARDED:
            lines.append(f"{indent}  @site {site} fallback -> "
                         f"virtual dispatch")


def render_code_cache(code_cache, top: int = 10) -> str:
    """Render the inline trees of the largest installed optimized methods."""
    compiled_methods = sorted(code_cache.opt_methods(),
                              key=lambda cm: -cm.inlined_bytecodes)[:top]
    if not compiled_methods:
        return "(no optimized methods installed)"
    sections = [render_inline_tree(cm) for cm in compiled_methods]
    return "\n\n".join(sections)
