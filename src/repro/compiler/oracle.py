"""The inline oracle: policy module deciding what gets inlined where.

Jikes RVM cleanly separates inlining *mechanism* (the optimizing compiler)
from inlining *policy* (the oracle the compiler consults per call site);
this module is the policy side (paper Section 3.1).  One oracle class
serves both context-insensitive and context-sensitive configurations --
the difference is entirely in the depth of the
:class:`~repro.profiles.trace.InlineRule` contexts it is constructed with,
exactly as in the paper's implementation.

Static heuristics (applied before any profile data):

* **tiny** statically-bound callees are always inlined (depth-capped);
* **small** statically-bound callees are inlined subject to the code
  expansion budget and depth limit;
* **medium** callees are inlined only when a hot profile rule predicts
  them;
* **large** callees are never inlined (and the refusal is recorded in the
  AOS database so the missing-edge organizer stops recommending them).

Profile data additionally enables **guarded inlining** at virtual sites
that class hierarchy analysis cannot bind, using the paper's Equation-3
partial-context match plus intersection-of-target-sets to pick targets.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler.size_estimator import (SizeClass, classify,
                                           count_constant_args,
                                           estimate_inlined_bytecodes)
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (E_ARG, InterfaceCall, MethodDef, Program,
                               StaticCall, VirtualCall)
from repro.profiles.partial_match import candidate_targets, contexts_compatible
from repro.profiles.trace import Context, InlineRule
from repro.telemetry.recorder import NULL_RECORDER

#: Refusal reasons that are permanent for a given rule set and therefore
#: recorded in the AOS database (the missing-edge organizer must not keep
#: recommending recompilation for them).
RECORDED_REFUSALS = ("large", "space", "budget", "recursive")

#: Callback signature: (caller_id, site, callee_id, reason).
RefusalSink = Callable[[str, int, str, str], None]

#: Callback signature: (root_id, selector, target_id) -- a loaded-world CHA
#: devirtualization this compiled code depends on.
DependencySink = Callable[[str, str, str], None]


def build_site_trace_index(dcg) -> Dict[Tuple[str, int], list]:
    """Index DCG traces by their innermost (caller, site) edge."""
    index: Dict[Tuple[str, int], list] = {}
    for key, weight in dcg.items():
        index.setdefault(key.context[0], []).append((key, weight))
    return index


def guard_coverage(site_traces, comp_context: Context, chosen) -> float:
    """Fraction of context-applicable dispatches the chosen targets cover.

    ``site_traces`` is the (key, weight) list for one call site from
    :func:`build_site_trace_index`.  Returns 1.0 when there is no
    applicable data (nothing contradicts the choice).
    """
    total = 0.0
    covered = 0.0
    for key, weight in site_traces:
        if not contexts_compatible(key.context, comp_context):
            continue
        total += weight
        if key.callee in chosen:
            covered += weight
    if total <= 0.0:
        return 1.0
    return covered / total


class Decision:
    """The oracle's answer for one call site."""

    __slots__ = ("inline", "guarded", "targets", "reason")

    def __init__(self, inline: bool, guarded: bool = False,
                 targets: Sequence[MethodDef] = (), reason: str = ""):
        self.inline = inline
        self.guarded = guarded
        self.targets = tuple(targets)
        self.reason = reason

    @classmethod
    def no(cls, reason: str) -> "Decision":
        return cls(False, reason=reason)

    @classmethod
    def direct(cls, target: MethodDef, reason: str = "") -> "Decision":
        return cls(True, guarded=False, targets=(target,), reason=reason)

    @classmethod
    def guarded_inline(cls, targets: Sequence[MethodDef]) -> "Decision":
        return cls(True, guarded=True, targets=targets, reason="profile")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.inline:
            return f"<Decision no ({self.reason})>"
        kind = "guarded" if self.guarded else "direct"
        return f"<Decision {kind} {[t.id for t in self.targets]}>"


class InlineOracle:
    """Profile-directed inlining policy over a fixed rule set.

    The oracle is constructed per compilation plan (as in Jikes RVM, where
    a compilation plan carries an Inlining Oracle object encapsulating the
    applicable rules) and is therefore immutable during one compilation.
    """

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 costs: CostModel, rules: Sequence[InlineRule] = (),
                 on_refusal: Optional[RefusalSink] = None,
                 dcg=None,
                 on_cha_dependency: Optional[DependencySink] = None,
                 telemetry=NULL_RECORDER):
        self._program = program
        self._hierarchy = hierarchy
        self._costs = costs
        self._on_refusal = on_refusal
        self._on_cha_dependency = on_cha_dependency
        self._telemetry = telemetry
        #: Optional read-only view of the dynamic call graph, used for the
        #: guard-coverage (receiver-skew) test.  ``None`` disables the test
        #: (useful for unit tests of the pure rule logic).
        self._dcg = dcg
        self._site_traces = None  # lazily built (caller, site) index
        # Pre-index rules by the innermost (caller, site) edge: a rule can
        # only ever apply to the call site it names.
        self._rules_by_site: Dict[Tuple[str, int], List[InlineRule]] = {}
        for rule in rules:
            edge = rule.context[0]
            self._rules_by_site.setdefault(edge, []).append(rule)
        self.rule_count = len(tuple(rules))

    # -- public API ----------------------------------------------------------

    def decide(self, stmt, comp_context: Context, depth: int,
               current_size: int, root: MethodDef) -> Decision:
        """Decide inlining for one call statement.

        ``comp_context`` is the innermost-first chain of (method, site)
        pairs ending at the compilation root -- the context available at
        compile time for Equation-3 matching.  ``current_size`` is the
        bytecodes already committed to this compilation, ``depth`` the
        inline nesting depth of the site.
        """
        if isinstance(stmt, StaticCall):
            decision = self._decide_static(stmt, comp_context, depth,
                                           current_size, root)
        elif isinstance(stmt, (VirtualCall, InterfaceCall)):
            decision = self._decide_virtual(stmt, comp_context, depth,
                                            current_size, root)
        else:
            raise TypeError(f"not a call statement: {stmt!r}")
        self._telemetry.count("oracle.decisions")
        if decision.inline:
            self._telemetry.count("oracle.inlines.guarded" if decision.guarded
                                  else "oracle.inlines.direct")
        return decision

    def profile_predicts(self, caller_id: str, site: int,
                         comp_context: Context) -> Dict[str, float]:
        """Profile candidates for a site under Eq. 3 + set intersection."""
        rules = self._rules_by_site.get((caller_id, site))
        if not rules:
            return {}
        return candidate_targets(rules, comp_context)

    # -- static (and statically-bound virtual) calls --------------------------

    def _decide_static(self, stmt: StaticCall, comp_context: Context,
                       depth: int, current_size: int,
                       root: MethodDef) -> Decision:
        target = self._program.method(stmt.target)
        return self._decide_bound(target, stmt, comp_context, depth,
                                  current_size, root)

    def _decide_bound(self, target: MethodDef, stmt, comp_context: Context,
                      depth: int, current_size: int,
                      root: MethodDef) -> Decision:
        """Shared path for statically-bound callees (no guard needed)."""
        costs = self._costs
        caller_id, site = comp_context[0]

        if self._is_recursive(target, comp_context, root):
            return self._refuse(caller_id, site, target.id, "recursive")
        if depth >= costs.max_inline_depth:
            return Decision.no("depth")

        const_args = count_constant_args(stmt.args)
        size_class = classify(target, costs, const_args)
        if size_class is SizeClass.LARGE:
            return self._refuse(caller_id, site, target.id, "large")

        estimate = estimate_inlined_bytecodes(target, const_args)
        if current_size + estimate > costs.absolute_size_cap:
            return self._refuse(caller_id, site, target.id, "space")

        if size_class is SizeClass.TINY:
            return Decision.direct(target, "tiny")

        predicted = self.profile_predicts(caller_id, site, comp_context)
        if size_class is SizeClass.SMALL:
            budget = max(root.bytecodes * costs.space_expansion_factor,
                         4.0 * costs.small_limit)
            if current_size + estimate <= budget:
                return Decision.direct(target, "small")
            # Past the normal limits: profile data may still force it
            # (paper Section 3.1, third profile use).
            if target.id in predicted:
                return Decision.direct(target, "small-hot")
            return self._refuse(caller_id, site, target.id, "budget")

        # MEDIUM: profile-directed only.
        if target.id in predicted:
            return Decision.direct(target, "medium-hot")
        return Decision.no("no_profile")

    # -- virtual calls ---------------------------------------------------------

    def _decide_virtual(self, stmt: VirtualCall, comp_context: Context,
                        depth: int, current_size: int,
                        root: MethodDef) -> Decision:
        declared_sole = self._hierarchy.sole_implementation(stmt.selector)
        if declared_sole is not None:
            # Closed-world CHA: no class that could ever load overrides
            # this, so the binding needs neither guard nor dependency.
            return self._decide_bound(declared_sole, stmt, comp_context,
                                      depth, current_size, root)

        loaded_sole = self._hierarchy.sole_loaded_target(stmt.selector)
        if loaded_sole is not None:
            # Loaded-world CHA (class analysis over classes instantiated so
            # far).  Sound today, breakable by future class loading:
            #
            # * a receiver that *pre-exists* the activation (flows in as a
            #   parameter) lets us inline without a guard -- in-flight
            #   activations stay safe when a conflicting class loads, and
            #   the recorded dependency gets the code invalidated for
            #   future invocations (Detlefs & Agesen's pre-existence);
            # * any other receiver might be an instance of a class loaded
            #   *during* the activation, so the inline goes behind a
            #   method-test guard instead.
            decision = self._decide_bound(loaded_sole, stmt, comp_context,
                                          depth, current_size, root)
            if not decision.inline:
                return decision
            if stmt.receiver.kind == E_ARG and depth == 0:
                # Pre-existence holds only for parameters of the *root*
                # activation: once this body is inlined into a caller, its
                # Arg slots map to the caller's locals, which may hold
                # objects allocated during the activation.
                if self._on_cha_dependency is not None:
                    self._on_cha_dependency(root.id, stmt.selector,
                                            loaded_sole.id)
                return decision
            return Decision.guarded_inline([loaded_sole])

        costs = self._costs
        caller_id, site = comp_context[0]
        if depth >= costs.max_inline_depth:
            return Decision.no("depth")

        predicted = self.profile_predicts(caller_id, site, comp_context)
        if not predicted:
            return Decision.no("no_profile")

        const_args = count_constant_args(stmt.args)
        survivors: List[Tuple[MethodDef, float]] = []
        running_size = current_size
        for callee_id, weight in sorted(predicted.items(),
                                        key=lambda kv: (-kv[1], kv[0])):
            try:
                target = self._program.method(callee_id)
            except Exception:
                continue
            if self._is_recursive(target, comp_context, root):
                self._record(caller_id, site, target.id, "recursive")
                continue
            size_class = classify(target, costs, const_args)
            if size_class is SizeClass.LARGE:
                self._record(caller_id, site, target.id, "large")
                continue
            estimate = estimate_inlined_bytecodes(target, const_args)
            if running_size + estimate > costs.absolute_size_cap:
                self._record(caller_id, site, target.id, "space")
                continue
            survivors.append((target, weight))
            running_size += estimate
            if len(survivors) >= costs.max_guarded_targets:
                break

        if not survivors:
            return Decision.no("no_eligible_target")
        if not self._coverage_ok(caller_id, site, comp_context,
                                 {t.id for t, _w in survivors}):
            return Decision.no("unskewed")
        return Decision.guarded_inline([t for t, _w in survivors])

    # -- guard coverage (receiver skew) --------------------------------------------

    def _coverage_ok(self, caller_id: str, site: int, comp_context: Context,
                     chosen: set) -> bool:
        """Do the chosen targets cover enough of the site's dispatches?

        Considers every profiled trace at the site whose context is
        Eq.-3-compatible with the compilation context -- including traces
        too cold to have become rules -- and requires the chosen targets'
        weight share to reach ``guard_coverage_min``.  This is the
        skewed-receiver-distribution requirement of Jikes RVM's guarded
        inlining: guards that miss often cost more than plain dispatch.
        """
        if self._dcg is None:
            return True
        if self._site_traces is None:
            self._site_traces = build_site_trace_index(self._dcg)
        traces = self._site_traces.get((caller_id, site))
        if not traces:
            return True  # no data beyond the rules themselves
        coverage = guard_coverage(traces, comp_context, chosen)
        return coverage >= self._costs.guard_coverage_min

    # -- helpers ----------------------------------------------------------------

    def _is_recursive(self, target: MethodDef, comp_context: Context,
                      root: MethodDef) -> bool:
        if target.id == root.id:
            return True
        return any(caller == target.id for caller, _site in comp_context)

    def _refuse(self, caller_id: str, site: int, callee_id: str,
                reason: str) -> Decision:
        self._record(caller_id, site, callee_id, reason)
        return Decision.no(reason)

    def _record(self, caller_id: str, site: int, callee_id: str,
                reason: str) -> None:
        if self._on_refusal is not None and reason in RECORDED_REFUSALS:
            self._telemetry.count(f"oracle.refusals.{reason}")
            self._on_refusal(caller_id, site, callee_id, reason)
