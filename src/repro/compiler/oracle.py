"""The inline oracle: policy module deciding what gets inlined where.

Jikes RVM cleanly separates inlining *mechanism* (the optimizing compiler)
from inlining *policy* (the oracle the compiler consults per call site);
this module is the policy side (paper Section 3.1).  One oracle class
serves both context-insensitive and context-sensitive configurations --
the difference is entirely in the depth of the
:class:`~repro.profiles.trace.InlineRule` contexts it is constructed with,
exactly as in the paper's implementation.

Static heuristics (applied before any profile data):

* **tiny** statically-bound callees are always inlined (depth-capped);
* **small** statically-bound callees are inlined subject to the code
  expansion budget and depth limit;
* **medium** callees are inlined only when a hot profile rule predicts
  them;
* **large** callees are never inlined (and the refusal is recorded in the
  AOS database so the missing-edge organizer stops recommending them).

Profile data additionally enables **guarded inlining** at virtual sites
that class hierarchy analysis cannot bind, using the paper's Equation-3
partial-context match plus intersection-of-target-sets to pick targets.

Every verdict carries a :class:`~repro.provenance.reasons.ReasonCode` --
a closed vocabulary instead of free text -- plus the evidence behind it
(size class, size estimate, Equation-3 coverage, profile weight, guard
kind), and is reported to the compilation's
:class:`~repro.provenance.recorder.ProvenanceRecorder` when one is
attached.  Recording is pure instrumentation: it changes no decisions
and charges no cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.compiler.compiled_method import (DEOPT_CHEAP_EXIT,
                                            DEOPT_FULL_GUARD,
                                            DEOPT_GUARD_FREE)
from repro.compiler.size_estimator import (SizeClass, classify,
                                           count_constant_args,
                                           estimate_inlined_bytecodes)
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (E_ARG, InterfaceCall, MethodDef, Program,
                               StaticCall, VirtualCall)
from repro.profiles.partial_match import candidate_targets, contexts_compatible
from repro.profiles.trace import ORIGIN_FLEET, Context, InlineRule
from repro.provenance.reasons import (GUARD_CLASS_TEST, GUARD_METHOD_TEST,
                                      GUARD_PREEXISTENCE, ReasonCode,
                                      VERDICT_DIRECT, VERDICT_GUARDED,
                                      VERDICT_REFUSED, reason_value)
from repro.provenance.recorder import NULL_PROVENANCE
from repro.telemetry.recorder import NULL_RECORDER

#: Refusal reasons that are permanent for a given rule set and therefore
#: recorded in the AOS database (the missing-edge organizer must not keep
#: recommending recompilation for them).  Derived from the closed
#: :class:`ReasonCode` vocabulary so the two cannot drift.
RECORDED_REFUSALS = (ReasonCode.LARGE.value, ReasonCode.SPACE.value,
                     ReasonCode.BUDGET.value, ReasonCode.RECURSIVE.value)

#: Callback signature: (caller_id, site, callee_id, reason).
RefusalSink = Callable[[str, int, str, str], None]

#: Callback signature: (root_id, selector, target_id) -- a loaded-world CHA
#: devirtualization this compiled code depends on.
DependencySink = Callable[[str, str, str], None]


def build_site_trace_index(dcg) -> Dict[Tuple[str, int], list]:
    """Index DCG traces by their innermost (caller, site) edge."""
    index: Dict[Tuple[str, int], list] = {}
    for key, weight in dcg.items():
        index.setdefault(key.context[0], []).append((key, weight))
    return index


def guard_coverage(site_traces, comp_context: Context, chosen) -> float:
    """Fraction of context-applicable dispatches the chosen targets cover.

    ``site_traces`` is the (key, weight) list for one call site from
    :func:`build_site_trace_index`.  Returns 1.0 when there is no
    applicable data (nothing contradicts the choice).
    """
    total = 0.0
    covered = 0.0
    for key, weight in site_traces:
        if not contexts_compatible(key.context, comp_context):
            continue
        total += weight
        if key.callee in chosen:
            covered += weight
    if total <= 0.0:
        return 1.0
    return covered / total


class Decision:
    """The oracle's answer for one call site, with its evidence.

    ``reason`` is always a :class:`ReasonCode` value (the stable string,
    normalized in the constructor).  The evidence fields (``size_class``,
    ``estimate``, ``coverage``, ``weight``, ``guard_kind``) are filled in
    by whichever oracle branch produced the verdict and flow into the
    decision-provenance records; they never influence the verdict itself.
    """

    __slots__ = ("inline", "guarded", "targets", "reason", "size_class",
                 "estimate", "coverage", "weight", "guard_kind",
                 "guard_elided", "guard_elided_last", "deopt", "exit_live")

    def __init__(self, inline: bool, guarded: bool = False,
                 targets: Sequence[MethodDef] = (), reason: str = "", *,
                 size_class=None, estimate: Optional[int] = None,
                 coverage: Optional[float] = None,
                 weight: Optional[float] = None,
                 guard_kind: Optional[str] = None,
                 guard_elided: bool = False,
                 guard_elided_last: bool = False,
                 deopt: Optional[str] = None,
                 exit_live: Sequence[int] = ()):
        self.inline = inline
        self.guarded = guarded
        self.targets = tuple(targets)
        self.reason = reason_value(reason)
        self.size_class = getattr(size_class, "value", size_class)
        self.estimate = estimate
        self.coverage = coverage
        self.weight = weight
        self.guard_kind = guard_kind
        #: True when the verdict is guarded but the speculation pass
        #: proved the guard test unnecessary (preexistent receiver): the
        #: compiler emits the inline with an elided guard.  The verdict
        #: string stays "guarded" -- elision changes cost, not outcome.
        self.guard_elided = guard_elided
        #: True when the *last* guarded option's test is exhaustive: the
        #: chosen targets' acceptance sets cover every class that can
        #: reach the site, so once every earlier guard missed the final
        #: test cannot fail and is compiled out.
        self.guard_elided_last = guard_elided_last
        #: Deopt planner verdict for this site (a strategy string from
        #: :mod:`repro.compiler.compiled_method`) or ``None`` when no
        #: planner was consulted; ``exit_live`` carries the live-local
        #: set a cheap-exit deoptimization at the site must map out.
        self.deopt = deopt
        self.exit_live = frozenset(exit_live)

    @property
    def verdict(self) -> str:
        """The provenance verdict string: direct / guarded / refused."""
        if not self.inline:
            return VERDICT_REFUSED
        return VERDICT_GUARDED if self.guarded else VERDICT_DIRECT

    @classmethod
    def no(cls, reason: str, **evidence) -> "Decision":
        return cls(False, reason=reason, **evidence)

    @classmethod
    def direct(cls, target: MethodDef, reason: str = "",
               **evidence) -> "Decision":
        return cls(True, guarded=False, targets=(target,), reason=reason,
                   **evidence)

    @classmethod
    def guarded_inline(cls, targets: Sequence[MethodDef],
                       reason: str = ReasonCode.PROFILE,
                       **evidence) -> "Decision":
        return cls(True, guarded=True, targets=targets, reason=reason,
                   **evidence)

    def __repr__(self) -> str:
        """Stable rendering derived from the verdict and reason code."""
        if not self.inline:
            return f"<Decision refused:{self.reason}>"
        kind = "guarded" if self.guarded else "direct"
        targets = ",".join(t.id for t in self.targets)
        return f"<Decision {kind}:{self.reason} [{targets}]>"


class InlineOracle:
    """Profile-directed inlining policy over a fixed rule set.

    The oracle is constructed per compilation plan (as in Jikes RVM, where
    a compilation plan carries an Inlining Oracle object encapsulating the
    applicable rules) and is therefore immutable during one compilation.
    """

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 costs: CostModel, rules: Sequence[InlineRule] = (),
                 on_refusal: Optional[RefusalSink] = None,
                 dcg=None,
                 on_cha_dependency: Optional[DependencySink] = None,
                 telemetry=NULL_RECORDER,
                 provenance=NULL_PROVENANCE,
                 speculation=None,
                 deopt=None):
        self._program = program
        self._hierarchy = hierarchy
        self._costs = costs
        self._on_refusal = on_refusal
        self._on_cha_dependency = on_cha_dependency
        self._telemetry = telemetry
        self._provenance = provenance
        #: Optional :class:`repro.analysis.dataflow.SpeculationAnalysis`
        #: (duck-typed: anything with ``speculate``).  ``None`` -- the
        #: default, and the only configuration subclass oracles use --
        #: reproduces pre-speculation behaviour exactly.
        self._speculation = speculation
        #: Optional :class:`repro.analysis.deopt.DeoptPlanner` (duck-typed:
        #: anything with ``plan_site``).  When attached, guarded virtual
        #: sites are routed through the planner instead of the speculation
        #: branch; ``None`` reproduces stock behaviour exactly.
        self._deopt = deopt
        #: Optional read-only view of the dynamic call graph, used for the
        #: guard-coverage (receiver-skew) test.  ``None`` disables the test
        #: (useful for unit tests of the pure rule logic).
        self._dcg = dcg
        self._site_traces = None  # lazily built (caller, site) index
        # Pre-index rules by the innermost (caller, site) edge: a rule can
        # only ever apply to the call site it names.
        self._rules_by_site: Dict[Tuple[str, int], List[InlineRule]] = {}
        for rule in rules:
            edge = rule.context[0]
            self._rules_by_site.setdefault(edge, []).append(rule)
        self.rule_count = len(tuple(rules))

    # -- public API ----------------------------------------------------------

    def decide(self, stmt, comp_context: Context, depth: int,
               current_size: int, root: MethodDef) -> Decision:
        """Decide inlining for one call statement.

        ``comp_context`` is the innermost-first chain of (method, site)
        pairs ending at the compilation root -- the context available at
        compile time for Equation-3 matching.  ``current_size`` is the
        bytecodes already committed to this compilation, ``depth`` the
        inline nesting depth of the site.
        """
        if isinstance(stmt, StaticCall):
            site_kind, selector = "static", stmt.target
            decision = self._decide_static(stmt, comp_context, depth,
                                           current_size, root)
        elif isinstance(stmt, (VirtualCall, InterfaceCall)):
            site_kind = ("interface" if isinstance(stmt, InterfaceCall)
                         else "virtual")
            selector = stmt.selector
            decision = self._decide_virtual(stmt, comp_context, depth,
                                            current_size, root)
        else:
            raise TypeError(f"not a call statement: {stmt!r}")
        self._telemetry.count("oracle.decisions")
        if decision.inline:
            self._telemetry.count("oracle.inlines.guarded" if decision.guarded
                                  else "oracle.inlines.direct")
        if self._provenance.enabled:
            caller_id, site = comp_context[0]
            self._provenance.decision(
                root=root.id, caller=caller_id, site=site, depth=depth,
                site_kind=site_kind, selector=selector,
                verdict=decision.verdict, reason=decision.reason,
                context=comp_context,
                targets=[t.id for t in decision.targets],
                size_class=decision.size_class,
                size_estimate=decision.estimate,
                current_size=current_size, coverage=decision.coverage,
                guard_kind=decision.guard_kind,
                profile_weight=decision.weight)
        return decision

    def profile_predicts(self, caller_id: str, site: int,
                         comp_context: Context) -> Dict[str, float]:
        """Profile candidates for a site under Eq. 3 + set intersection."""
        rules = self._rules_by_site.get((caller_id, site))
        if not rules:
            return {}
        return candidate_targets(rules, comp_context)

    def _profile_reason(self, default: ReasonCode, caller_id: str, site: int,
                        comp_context: Context, target_ids) -> ReasonCode:
        """FLEET_WARM when the prediction rests only on fleet-origin rules.

        A profile-driven verdict gets the ``fleet-warm`` reason code when
        every Eq.-3-applicable rule naming one of the chosen targets was
        seeded from fleet-aggregated profiles rather than this runtime's
        own samples -- the decision is then attributable to the warm
        start.  Once any local rule corroborates the target, the stock
        reason returns, so cold runs are byte-identical to pre-fleet
        builds (their rules are all local).
        """
        rules = self._rules_by_site.get((caller_id, site))
        if not rules:
            return default
        relevant = [r for r in rules
                    if r.callee in target_ids
                    and contexts_compatible(r.context, comp_context)]
        if relevant and all(r.origin == ORIGIN_FLEET for r in relevant):
            return ReasonCode.FLEET_WARM
        return default

    # -- static (and statically-bound virtual) calls --------------------------

    def _decide_static(self, stmt: StaticCall, comp_context: Context,
                       depth: int, current_size: int,
                       root: MethodDef) -> Decision:
        target = self._program.method(stmt.target)
        return self._decide_bound(target, stmt, comp_context, depth,
                                  current_size, root)

    def _decide_bound(self, target: MethodDef, stmt, comp_context: Context,
                      depth: int, current_size: int,
                      root: MethodDef) -> Decision:
        """Shared path for statically-bound callees (no guard needed)."""
        costs = self._costs
        caller_id, site = comp_context[0]

        if self._is_recursive(target, comp_context, root):
            return self._refuse(caller_id, site, target.id,
                                ReasonCode.RECURSIVE)
        if depth >= costs.max_inline_depth:
            return Decision.no(ReasonCode.DEPTH)

        const_args = count_constant_args(stmt.args)
        size_class = classify(target, costs, const_args)
        if size_class is SizeClass.LARGE:
            return self._refuse(caller_id, site, target.id, ReasonCode.LARGE,
                                size_class=size_class)

        estimate = estimate_inlined_bytecodes(target, const_args)
        if current_size + estimate > costs.absolute_size_cap:
            return self._refuse(caller_id, site, target.id, ReasonCode.SPACE,
                                size_class=size_class, estimate=estimate)

        if size_class is SizeClass.TINY:
            return Decision.direct(target, ReasonCode.TINY,
                                   size_class=size_class, estimate=estimate)

        predicted = self.profile_predicts(caller_id, site, comp_context)
        if size_class is SizeClass.SMALL:
            budget = max(root.bytecodes * costs.space_expansion_factor,
                         4.0 * costs.small_limit)
            if current_size + estimate <= budget:
                return Decision.direct(target, ReasonCode.SMALL,
                                       size_class=size_class,
                                       estimate=estimate)
            # Past the normal limits: profile data may still force it
            # (paper Section 3.1, third profile use).
            if target.id in predicted:
                reason = self._profile_reason(
                    ReasonCode.SMALL_HOT, caller_id, site, comp_context,
                    {target.id})
                return Decision.direct(target, reason,
                                       size_class=size_class,
                                       estimate=estimate,
                                       weight=predicted[target.id])
            return self._refuse(caller_id, site, target.id, ReasonCode.BUDGET,
                                size_class=size_class, estimate=estimate)

        # MEDIUM: profile-directed only.
        if target.id in predicted:
            reason = self._profile_reason(
                ReasonCode.MEDIUM_HOT, caller_id, site, comp_context,
                {target.id})
            return Decision.direct(target, reason,
                                   size_class=size_class, estimate=estimate,
                                   weight=predicted[target.id])
        return Decision.no(ReasonCode.NO_PROFILE, size_class=size_class,
                           estimate=estimate)

    # -- virtual calls ---------------------------------------------------------

    def _decide_virtual(self, stmt: VirtualCall, comp_context: Context,
                        depth: int, current_size: int,
                        root: MethodDef) -> Decision:
        declared_sole = self._hierarchy.sole_implementation(stmt.selector)
        if declared_sole is not None:
            # Closed-world CHA: no class that could ever load overrides
            # this, so the binding needs neither guard nor dependency.
            return self._decide_bound(declared_sole, stmt, comp_context,
                                      depth, current_size, root)

        loaded_sole = self._hierarchy.sole_loaded_target(stmt.selector)
        if loaded_sole is not None:
            # Loaded-world CHA (class analysis over classes instantiated so
            # far).  Sound today, breakable by future class loading:
            #
            # * a receiver that *pre-exists* the activation (flows in as a
            #   parameter) lets us inline without a guard -- in-flight
            #   activations stay safe when a conflicting class loads, and
            #   the recorded dependency gets the code invalidated for
            #   future invocations (Detlefs & Agesen's pre-existence);
            # * any other receiver might be an instance of a class loaded
            #   *during* the activation, so the inline goes behind a
            #   method-test guard instead.
            decision = self._decide_bound(loaded_sole, stmt, comp_context,
                                          depth, current_size, root)
            if not decision.inline:
                return decision
            if stmt.receiver.kind == E_ARG and depth == 0:
                # Pre-existence holds only for parameters of the *root*
                # activation: once this body is inlined into a caller, its
                # Arg slots map to the caller's locals, which may hold
                # objects allocated during the activation.
                if self._on_cha_dependency is not None:
                    self._on_cha_dependency(root.id, stmt.selector,
                                            loaded_sole.id)
                decision.guard_kind = GUARD_PREEXISTENCE
                return decision
            if self._deopt is not None:
                caller_id, site = comp_context[0]
                cov = self._coverage(caller_id, site, comp_context,
                                     {loaded_sole.id})
                return self._plan_guarded(
                    stmt, comp_context, [loaded_sole], root,
                    GUARD_METHOD_TEST, cov,
                    size_class=decision.size_class,
                    estimate=decision.estimate, weight=decision.weight)
            if self._speculation is not None:
                verdict = self._speculation.speculate(stmt, comp_context,
                                                      loaded_sole)
                if verdict.action == "refuse":
                    # The assumption's invalidation cone carries too much
                    # predicted churn: compiling it is near-certain waste.
                    return Decision.no(ReasonCode.SPECULATION_RISK,
                                       size_class=decision.size_class,
                                       estimate=decision.estimate)
                if verdict.action == "elide":
                    # The dataflow analysis proved the receiver preexists
                    # the root activation even through the inline chain,
                    # so invalidation alone protects the inline; the
                    # guard is compiled out.  The verdict stays guarded
                    # (only cost changes), but the dependency must be
                    # recorded exactly as for the depth-0 case above.
                    if self._on_cha_dependency is not None:
                        self._on_cha_dependency(root.id, stmt.selector,
                                                loaded_sole.id)
                    return Decision.guarded_inline(
                        [loaded_sole],
                        reason=ReasonCode.GUARD_ELIDED_PREEXIST,
                        size_class=decision.size_class,
                        estimate=decision.estimate, weight=decision.weight,
                        guard_kind=GUARD_PREEXISTENCE, guard_elided=True)
            return Decision.guarded_inline(
                [loaded_sole], reason=decision.reason,
                size_class=decision.size_class, estimate=decision.estimate,
                weight=decision.weight, guard_kind=GUARD_METHOD_TEST)

        costs = self._costs
        caller_id, site = comp_context[0]
        if depth >= costs.max_inline_depth:
            return Decision.no(ReasonCode.DEPTH)

        predicted = self.profile_predicts(caller_id, site, comp_context)
        if not predicted:
            return Decision.no(ReasonCode.NO_PROFILE)

        const_args = count_constant_args(stmt.args)
        survivors: List[Tuple[MethodDef, float]] = []
        total_estimate = 0
        running_size = current_size
        for callee_id, weight in sorted(predicted.items(),
                                        key=lambda kv: (-kv[1], kv[0])):
            try:
                target = self._program.method(callee_id)
            except Exception:
                continue
            if self._is_recursive(target, comp_context, root):
                self._record(caller_id, site, target.id,
                             ReasonCode.RECURSIVE)
                continue
            size_class = classify(target, costs, const_args)
            if size_class is SizeClass.LARGE:
                self._record(caller_id, site, target.id, ReasonCode.LARGE)
                continue
            estimate = estimate_inlined_bytecodes(target, const_args)
            if running_size + estimate > costs.absolute_size_cap:
                self._record(caller_id, site, target.id, ReasonCode.SPACE)
                continue
            survivors.append((target, weight))
            running_size += estimate
            total_estimate += estimate
            if len(survivors) >= costs.max_guarded_targets:
                break

        if not survivors:
            return Decision.no(ReasonCode.NO_ELIGIBLE_TARGET)
        coverage = self._coverage(caller_id, site, comp_context,
                                  {t.id for t, _w in survivors})
        if coverage is not None and coverage < costs.guard_coverage_min:
            return Decision.no(ReasonCode.UNSKEWED, coverage=coverage,
                               estimate=total_estimate,
                               weight=sum(w for _t, w in survivors))
        reason = self._profile_reason(
            ReasonCode.PROFILE, caller_id, site, comp_context,
            {t.id for t, _w in survivors})
        targets = [t for t, _w in survivors]
        if self._deopt is not None:
            return self._plan_guarded(
                stmt, comp_context, targets, root, GUARD_CLASS_TEST,
                coverage, estimate=total_estimate,
                weight=sum(w for _t, w in survivors))
        elided_last = False
        if self._speculation is not None and len(targets) >= 2:
            verdict = self._speculation.speculate_exhaustive(
                stmt, comp_context, targets)
            if verdict.action == "elide":
                # The chosen targets' acceptance sets cover every class
                # that can dispatch here, so after the earlier guards
                # miss the last test cannot fail: compile it out.  When
                # coverage holds only over the *loaded* world (nonempty
                # cone) the elision additionally leans on receiver
                # preexistence, so record the dependency -- a class load
                # resolving outside the chosen set invalidates the code
                # -- and surface the reliance in the reason code.
                elided_last = True
                if verdict.cone_size:
                    if self._on_cha_dependency is not None:
                        self._on_cha_dependency(
                            root.id, stmt.selector,
                            frozenset(t.id for t in targets))
                    reason = ReasonCode.GUARD_ELIDED_PREEXIST
        return Decision.guarded_inline(
            targets, reason=reason, coverage=coverage,
            estimate=total_estimate,
            weight=sum(w for _t, w in survivors),
            guard_kind=GUARD_CLASS_TEST, guard_elided_last=elided_last)

    # -- deoptimization planning ------------------------------------------------

    def _plan_guarded(self, stmt, comp_context: Context,
                      targets: Sequence[MethodDef], root: MethodDef,
                      guard_kind: str, coverage: Optional[float],
                      **evidence) -> Decision:
        """Route a guarded verdict through the attached deopt planner.

        The planner picks the per-site strategy; the oracle translates it
        back into a decision the compiler can execute.  ``guard-free``
        reuses the speculation pass's elision contract (record the CHA
        dependency, emit no guard); ``cheap-exit-osr`` compiles the site
        as a deoptimization point carrying its pruned live-state map;
        ``full-guard`` keeps the stock guard chain but surfaces that the
        planner considered and rejected the exit.
        """
        plan = self._deopt.plan_site(
            stmt, comp_context, targets,
            coverage=1.0 if coverage is None else coverage,
            interface=isinstance(stmt, InterfaceCall))
        if plan.strategy == DEOPT_GUARD_FREE:
            if self._on_cha_dependency is not None:
                self._on_cha_dependency(root.id, stmt.selector,
                                        targets[0].id)
            return Decision.guarded_inline(
                targets, reason=ReasonCode.GUARD_ELIDED_PREEXIST,
                coverage=coverage, guard_kind=GUARD_PREEXISTENCE,
                guard_elided=True, deopt=DEOPT_GUARD_FREE, **evidence)
        if plan.strategy == DEOPT_CHEAP_EXIT:
            return Decision.guarded_inline(
                targets, reason=ReasonCode.DEOPT_PLANNED_OSR,
                coverage=coverage, guard_kind=guard_kind,
                deopt=DEOPT_CHEAP_EXIT, exit_live=plan.live, **evidence)
        return Decision.guarded_inline(
            targets, reason=ReasonCode.DEOPT_PLANNED_GUARD,
            coverage=coverage, guard_kind=guard_kind,
            deopt=DEOPT_FULL_GUARD, exit_live=plan.live, **evidence)

    # -- guard coverage (receiver skew) ----------------------------------------

    def _coverage(self, caller_id: str, site: int, comp_context: Context,
                  chosen: set) -> Optional[float]:
        """Eq.-3-compatible dispatch coverage of the chosen targets.

        Considers every profiled trace at the site whose context is
        Eq.-3-compatible with the compilation context -- including traces
        too cold to have become rules.  Returns ``None`` when no DCG is
        attached or the site has no trace data (nothing contradicts the
        choice); the caller compares the value against
        ``guard_coverage_min``, the skewed-receiver-distribution
        requirement of Jikes RVM's guarded inlining: guards that miss
        often cost more than plain dispatch.
        """
        if self._dcg is None:
            return None
        if self._site_traces is None:
            self._site_traces = build_site_trace_index(self._dcg)
        traces = self._site_traces.get((caller_id, site))
        if not traces:
            return None  # no data beyond the rules themselves
        return guard_coverage(traces, comp_context, chosen)

    # -- helpers ----------------------------------------------------------------

    def _is_recursive(self, target: MethodDef, comp_context: Context,
                      root: MethodDef) -> bool:
        if target.id == root.id:
            return True
        return any(caller == target.id for caller, _site in comp_context)

    def _refuse(self, caller_id: str, site: int, callee_id: str,
                reason: ReasonCode, **evidence) -> Decision:
        self._record(caller_id, site, callee_id, reason)
        return Decision.no(reason, **evidence)

    def _record(self, caller_id: str, site: int, callee_id: str,
                reason: ReasonCode) -> None:
        code = reason_value(reason)
        if self._on_refusal is not None and code in RECORDED_REFUSALS:
            self._telemetry.count(f"oracle.refusals.{code}")
            self._on_refusal(caller_id, site, callee_id, code)
