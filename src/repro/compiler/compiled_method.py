"""Compiled-code artifacts: inline trees, decisions, and compiled methods.

The optimizing compiler's output for a root method is an *inline tree*
(:class:`InlineNode`): each node is one (possibly inlined) method body, and
each call site in that body may carry an :class:`InlineDecision` naming the
target(s) expanded inline at that site.  The tree doubles as

* the execution plan for the interpreter (which body to run at a call site,
  which guards to test), and
* the inline map used to reconstruct source-level stack frames, exactly as
  Jikes RVM's OPT compiler maps do (paper Section 3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.jvm.program import MethodDef

#: Inline decision kinds.
DIRECT = "direct"      # statically bound, no guard needed
GUARDED = "guarded"    # class/method-test guards with virtual fallback

#: Guard-elision kinds (``GuardOption.elided``).
ELIDE_PREEXIST = "preexist"    # receiver preexists; invalidation protects
ELIDE_DOMINATED = "dominated"  # a dominating guard's result is reused
ELIDE_EXHAUSTIVE = "exhaustive"  # earlier guards missing implies this hits
ELIDE_OSR_EXIT = "osr-exit"    # cheap-exit OSR point; miss deoptimizes

#: Per-site deoptimization strategies (``InlineDecision.deopt``); mirror
#: the :mod:`repro.analysis.deopt` lattice without importing it (the
#: compiler layer never depends on the analysis layer).
DEOPT_FULL_GUARD = "full-guard"
DEOPT_CHEAP_EXIT = "cheap-exit-osr"
DEOPT_GUARD_FREE = "guard-free"


class InlineNode:
    """One method body within an inline tree.

    ``decisions`` maps call-site ids (within *this* body) to the decision
    taken for that site.  Sites absent from the map were left as out-of-line
    calls.
    """

    __slots__ = ("method", "decisions", "depth")

    def __init__(self, method: MethodDef, depth: int = 0):
        self.method = method
        self.depth = depth
        self.decisions: Dict[int, "InlineDecision"] = {}

    def inlined_bytecodes(self) -> int:
        """Total bytecodes of this subtree (the body plus inlined callees)."""
        total = self.method.bytecodes
        for decision in self.decisions.values():
            for option in decision.options:
                total += option.node.inlined_bytecodes()
        return total

    def walk(self):
        """Yield every node of this subtree, preorder."""
        yield self
        for decision in self.decisions.values():
            for option in decision.options:
                yield from option.node.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InlineNode {self.method.id} depth={self.depth} " \
               f"sites={sorted(self.decisions)}>"


class GuardOption:
    """One inlined target at a call site, optionally behind a guard.

    ``guard_class`` is ``None`` for an unguarded (direct) expansion; for
    guarded expansions the interpreter performs a method test: it resolves
    the receiver's dynamic class and compares the result against
    ``target``.

    ``elided`` marks a guarded option whose test was removed by the
    speculation pass: :data:`ELIDE_PREEXIST` options enter their inline
    body unconditionally (CHA invalidation protects them),
    :data:`ELIDE_EXHAUSTIVE` options (always last in their decision)
    enter unconditionally because the decision's acceptance sets cover
    every class that can reach the site, and
    :data:`ELIDE_DOMINATED` options reuse a dominating guard's result --
    ``elided_on`` names that guard as a ``(selector, target)`` pair the
    interpreter re-evaluates at zero guard-test cost, and
    :data:`ELIDE_OSR_EXIT` options carry no test because the site was
    compiled as a cheap-exit OSR point: the option enters only when the
    resolved target matches, and a broken speculation deoptimizes (maps
    the live state out and finishes at the baseline tier) instead of
    falling back in optimized code.
    """

    __slots__ = ("target", "node", "guard_class", "elided", "elided_on")

    def __init__(self, target: MethodDef, node: InlineNode,
                 guard_class: Optional[str] = None,
                 elided: Optional[str] = None,
                 elided_on: Optional[Tuple[str, MethodDef]] = None):
        self.target = target
        self.node = node
        self.guard_class = guard_class
        self.elided = elided
        self.elided_on = elided_on

    def elide(self, kind: str,
              on: Optional[Tuple[str, MethodDef]] = None) -> None:
        """Mark this option's guard as elided (``kind`` names why)."""
        if kind not in (ELIDE_PREEXIST, ELIDE_DOMINATED, ELIDE_EXHAUSTIVE,
                        ELIDE_OSR_EXIT):
            raise ValueError(f"bad elision kind {kind!r}")
        self.elided = kind
        self.elided_on = on

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        g = f" guard={self.guard_class}" if self.guard_class else ""
        e = f" elided={self.elided}" if self.elided else ""
        return f"<GuardOption {self.target.id}{g}{e}>"


class InlineDecision:
    """The outcome for one call site: which targets were expanded inline.

    ``deopt`` names the per-site deoptimization strategy the planner
    chose (one of the ``DEOPT_*`` constants) or ``None`` when planning
    was off for this compilation; ``exit_live`` is the statically
    computed live-local set a cheap-exit deoptimization at this site
    must map out (always empty unless ``deopt`` is
    :data:`DEOPT_CHEAP_EXIT`).
    """

    __slots__ = ("kind", "options", "deopt", "exit_live")

    def __init__(self, kind: str, options: Sequence[GuardOption],
                 deopt: Optional[str] = None,
                 exit_live: Sequence[int] = ()):
        if kind not in (DIRECT, GUARDED):
            raise ValueError(f"bad decision kind {kind!r}")
        if kind == DIRECT and len(options) != 1:
            raise ValueError("direct decisions have exactly one option")
        self.kind = kind
        self.options = tuple(options)
        self.deopt = deopt
        self.exit_live = frozenset(exit_live)

    @property
    def sole(self) -> GuardOption:
        """The single option of a DIRECT decision."""
        return self.options[0]

    def targets(self) -> List[str]:
        return [o.target.id for o in self.options]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<InlineDecision {self.kind} {self.targets()}>"


class CompiledMethod:
    """One optimizing-compiler product for a root method.

    Attributes
    ----------
    root:
        The inline tree; ``root.method`` is the compiled method itself.
    inlined_bytecodes:
        Total bytecodes compiled (root body + all inlined bodies).  Compile
        time and machine-code size scale with this -- the quantity
        context-sensitive inlining reduces in the paper.
    code_bytes:
        Emitted machine-code size in bytes (Figure 5's metric).
    compile_cycles:
        Cycles charged to the compilation thread for producing this code.
    version:
        Recompilation counter for the root method (1 = first opt compile).
    rules_fingerprint:
        Hash of the inlining-rule set used, letting the missing-edge
        organizer cheaply detect "compiled before this rule existed".
    """

    __slots__ = ("root", "inlined_bytecodes", "code_bytes", "compile_cycles",
                 "version", "rules_fingerprint")

    def __init__(self, root: InlineNode, inlined_bytecodes: int,
                 code_bytes: int, compile_cycles: int, version: int,
                 rules_fingerprint: int = 0):
        self.root = root
        self.inlined_bytecodes = inlined_bytecodes
        self.code_bytes = code_bytes
        self.compile_cycles = compile_cycles
        self.version = version
        self.rules_fingerprint = rules_fingerprint

    @property
    def method(self) -> MethodDef:
        return self.root.method

    def inline_node_count(self) -> int:
        """Number of method bodies in the inline tree (root included)."""
        return sum(1 for _node in self.root.walk())

    def guard_count(self) -> int:
        """Guard tests actually compiled in (elided options emit none)."""
        guards = 0
        for node in self.root.walk():
            for decision in node.decisions.values():
                if decision.kind == GUARDED:
                    guards += sum(1 for option in decision.options
                                  if option.elided is None)
        return guards

    def elided_guard_count(self) -> int:
        """Guarded options whose test the speculation pass removed."""
        elided = 0
        for node in self.root.walk():
            for decision in node.decisions.values():
                if decision.kind == GUARDED:
                    elided += sum(1 for option in decision.options
                                  if option.elided is not None)
        return elided

    def elisions(self) -> List[Tuple[str, int, str, str]]:
        """Inline-map records of every elided guard.

        Each entry is ``(caller_id, site, elision_kind, target_id)`` --
        the same shape as :meth:`inlined_edges` plus the elision kind, so
        stack reconstruction and provenance tooling can see which guards
        were never emitted.
        """
        records = []
        for node in self.root.walk():
            for site, decision in node.decisions.items():
                if decision.kind != GUARDED:
                    continue
                for option in decision.options:
                    if option.elided is not None:
                        records.append((node.method.id, site,
                                        option.elided, option.target.id))
        return records

    def inlined_edges(self) -> List[Tuple[str, int, str]]:
        """All (caller_id, site, callee_id) edges expanded in this code."""
        edges = []
        for node in self.root.walk():
            for site, decision in node.decisions.items():
                for option in decision.options:
                    edges.append((node.method.id, site, option.target.id))
        return edges

    def has_inlined(self, site: int, callee_id: str) -> bool:
        """True when ``callee_id`` is inlined at ``site`` anywhere in the tree."""
        for node in self.root.walk():
            decision = node.decisions.get(site)
            if decision is not None:
                if any(o.target.id == callee_id for o in decision.options):
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CompiledMethod {self.method.id} v{self.version} "
                f"{self.inlined_bytecodes} bc, {self.code_bytes} bytes>")
