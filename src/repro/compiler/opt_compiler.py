"""The optimizing compiler: builds inline trees by consulting the oracle.

The compiler owns the *mechanism* of inlining: it walks a root method's
body, asks the :class:`~repro.compiler.oracle.InlineOracle` about every
call site (passing the compilation context chain needed for Equation-3
matching), expands approved callees recursively, and emits a
:class:`~repro.compiler.compiled_method.CompiledMethod` whose compile time
and machine-code size scale with the total bytecodes compiled.

When a speculation analysis is attached, two guard-elision mechanisms
run: preexistent-receiver elisions arrive from the oracle per decision,
and a dominance post-pass elides guards whose outcome is implied by a
same-receiver guard that executed on every path to the site.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.compiler.compiled_method import (CompiledMethod, DEOPT_CHEAP_EXIT,
                                            DIRECT, ELIDE_DOMINATED,
                                            ELIDE_EXHAUSTIVE, ELIDE_OSR_EXIT,
                                            ELIDE_PREEXIST,
                                            GUARDED, GuardOption,
                                            InlineDecision, InlineNode)
from repro.compiler.guards import classes_for_target
from repro.compiler.oracle import InlineOracle
from repro.compiler.size_estimator import (count_constant_args,
                                           estimate_inlined_bytecodes)
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (S_IF, S_INTERFACE_CALL, S_LOOP,
                               S_STATIC_CALL, S_VIRTUAL_CALL, MethodDef,
                               Program, Stmt)
from repro.profiles.trace import Context
from repro.telemetry.recorder import NULL_RECORDER


def iter_call_sites(body) -> Iterator[Stmt]:
    """Yield every call statement in a body, preorder, nested blocks included."""
    for stmt in body:
        k = stmt.kind
        if k in (S_STATIC_CALL, S_VIRTUAL_CALL, S_INTERFACE_CALL):
            yield stmt
        elif k == S_IF:
            yield from iter_call_sites(stmt.then_body)
            yield from iter_call_sites(stmt.else_body)
        elif k == S_LOOP:
            yield from iter_call_sites(stmt.body)


class OptCompiler:
    """Simulated optimizing compiler for one program."""

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 costs: CostModel, telemetry=NULL_RECORDER,
                 speculation=None):
        self._program = program
        self._hierarchy = hierarchy
        self._costs = costs
        self._telemetry = telemetry
        #: Optional :class:`repro.analysis.dataflow.SpeculationAnalysis`.
        #: ``None`` (the default) disables both elision mechanisms and
        #: reproduces pre-speculation output byte for byte.
        self._speculation = speculation

    def compile(self, method: MethodDef, oracle: InlineOracle,
                version: int = 1,
                rules_fingerprint: int = 0) -> CompiledMethod:
        """Compile ``method`` at the optimizing tier under ``oracle``."""
        root = InlineNode(method, depth=0)
        # Mutable single-element list so nested expansion sees committed size.
        total_size = [method.bytecodes]
        sites = [0, 0]  # [considered, inlined] across the whole expansion
        self._expand(root, (), total_size, method, oracle, sites)
        if self._speculation is not None:
            self._elide_dominated(root)

        self._telemetry.count("opt_compiler.compiles")
        self._telemetry.count("opt_compiler.sites_considered", sites[0])
        self._telemetry.count("opt_compiler.sites_inlined", sites[1])
        inlined_bytecodes = total_size[0]
        code_bytes = inlined_bytecodes * self._costs.opt_bytes_per_bc
        compile_cycles = inlined_bytecodes * self._costs.opt_compile_cycles_per_bc
        return CompiledMethod(root, inlined_bytecodes, code_bytes,
                              compile_cycles, version, rules_fingerprint)

    # -- expansion --------------------------------------------------------------

    def _expand(self, node: InlineNode, context_above: Context,
                total_size: List[int], root: MethodDef,
                oracle: InlineOracle, sites: List[int]) -> None:
        """Decide every call site in ``node`` and recurse into inlined bodies."""
        for stmt in iter_call_sites(node.method.body):
            sites[0] += 1
            comp_context: Context = (
                ((node.method.id, stmt.site),) + context_above)
            decision = oracle.decide(stmt, comp_context, node.depth,
                                     total_size[0], root)
            if not decision.inline:
                continue
            sites[1] += 1

            const_args = count_constant_args(stmt.args)
            if decision.guarded and decision.deopt == DEOPT_CHEAP_EXIT:
                # Cheap-exit OSR point: no guard test is ever compiled --
                # every option enters on a resolved-target match, and an
                # all-options miss deoptimizes through the site's pruned
                # live-state map instead of dispatching in opt code.
                elided = ELIDE_OSR_EXIT
            elif decision.guarded and decision.guard_elided:
                elided = ELIDE_PREEXIST
            else:
                elided = None
            options = []
            for index, target in enumerate(decision.targets):
                child = InlineNode(target, depth=node.depth + 1)
                total_size[0] += estimate_inlined_bytecodes(target, const_args)
                option_elided = elided
                if (decision.guard_elided_last and option_elided is None
                        and index == len(decision.targets) - 1):
                    option_elided = ELIDE_EXHAUSTIVE
                options.append(GuardOption(
                    target, child,
                    guard_class=target.klass if decision.guarded else None,
                    elided=option_elided))
                self._expand(child, comp_context, total_size, root, oracle,
                             sites)

            kind = GUARDED if decision.guarded else DIRECT
            node.decisions[stmt.site] = InlineDecision(
                kind, options, deopt=decision.deopt,
                exit_live=decision.exit_live)

    # -- dominance-based redundant-guard elimination ----------------------------

    def _elide_dominated(self, root: InlineNode) -> None:
        """Elide guards implied by a same-receiver dominating guard.

        Within each inline-tree body, a single-target guarded site B may
        drop its own test when some other single-target guarded site A
        (with an un-elided, still-compiled guard) on the *same receiver
        value* executes on every path to B -- must-availability from the
        dataflow pass -- and B's acceptance set contains A's: A's guard
        passing implies B's would too.  The compiled code for B reuses
        A's already-computed outcome (recorded as ``elided_on``), paying
        no guard test; when A's guard missed, B falls through to its
        dispatch fallback exactly as a miss would.
        """
        spec = self._speculation
        for node in root.walk():
            if not node.decisions:
                continue
            summary = spec.summary(node.method)
            for site in sorted(node.decisions):
                decision = node.decisions[site]
                if decision.kind != GUARDED or len(decision.options) != 1:
                    continue
                option = decision.options[0]
                if option.elided is not None:
                    continue
                facts = summary.call_facts.get(site)
                tag = summary.receiver_tags.get(site)
                if facts is None or facts.selector is None or tag is None:
                    continue
                accept_here: Optional[set] = None
                for dom_site, dom_selector, dom_tag in \
                        summary.available.get(site, ()):
                    if dom_site == site or dom_tag != tag:
                        continue
                    dominator = node.decisions.get(dom_site)
                    if dominator is None or dominator.kind != GUARDED \
                            or len(dominator.options) != 1:
                        continue
                    dom_option = dominator.options[0]
                    if dom_option.elided is not None:
                        continue
                    accept_dom = classes_for_target(
                        self._hierarchy, dom_selector, dom_option.target)
                    if not accept_dom:
                        continue
                    if accept_here is None:
                        accept_here = classes_for_target(
                            self._hierarchy, facts.selector, option.target)
                    if accept_dom <= accept_here:
                        option.elide(ELIDE_DOMINATED,
                                     (dom_selector, dom_option.target))
                        self._telemetry.count(
                            "opt_compiler.guards_elided_dominated")
                        break
