"""The optimizing compiler: builds inline trees by consulting the oracle.

The compiler owns the *mechanism* of inlining: it walks a root method's
body, asks the :class:`~repro.compiler.oracle.InlineOracle` about every
call site (passing the compilation context chain needed for Equation-3
matching), expands approved callees recursively, and emits a
:class:`~repro.compiler.compiled_method.CompiledMethod` whose compile time
and machine-code size scale with the total bytecodes compiled.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.compiler.compiled_method import (CompiledMethod, DIRECT, GUARDED,
                                            GuardOption, InlineDecision,
                                            InlineNode)
from repro.compiler.oracle import InlineOracle
from repro.compiler.size_estimator import (count_constant_args,
                                           estimate_inlined_bytecodes)
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (S_IF, S_INTERFACE_CALL, S_LOOP,
                               S_STATIC_CALL, S_VIRTUAL_CALL, MethodDef,
                               Program, Stmt)
from repro.profiles.trace import Context
from repro.telemetry.recorder import NULL_RECORDER


def iter_call_sites(body) -> Iterator[Stmt]:
    """Yield every call statement in a body, preorder, nested blocks included."""
    for stmt in body:
        k = stmt.kind
        if k in (S_STATIC_CALL, S_VIRTUAL_CALL, S_INTERFACE_CALL):
            yield stmt
        elif k == S_IF:
            yield from iter_call_sites(stmt.then_body)
            yield from iter_call_sites(stmt.else_body)
        elif k == S_LOOP:
            yield from iter_call_sites(stmt.body)


class OptCompiler:
    """Simulated optimizing compiler for one program."""

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 costs: CostModel, telemetry=NULL_RECORDER):
        self._program = program
        self._hierarchy = hierarchy
        self._costs = costs
        self._telemetry = telemetry

    def compile(self, method: MethodDef, oracle: InlineOracle,
                version: int = 1,
                rules_fingerprint: int = 0) -> CompiledMethod:
        """Compile ``method`` at the optimizing tier under ``oracle``."""
        root = InlineNode(method, depth=0)
        # Mutable single-element list so nested expansion sees committed size.
        total_size = [method.bytecodes]
        sites = [0, 0]  # [considered, inlined] across the whole expansion
        self._expand(root, (), total_size, method, oracle, sites)

        self._telemetry.count("opt_compiler.compiles")
        self._telemetry.count("opt_compiler.sites_considered", sites[0])
        self._telemetry.count("opt_compiler.sites_inlined", sites[1])
        inlined_bytecodes = total_size[0]
        code_bytes = inlined_bytecodes * self._costs.opt_bytes_per_bc
        compile_cycles = inlined_bytecodes * self._costs.opt_compile_cycles_per_bc
        return CompiledMethod(root, inlined_bytecodes, code_bytes,
                              compile_cycles, version, rules_fingerprint)

    # -- expansion --------------------------------------------------------------

    def _expand(self, node: InlineNode, context_above: Context,
                total_size: List[int], root: MethodDef,
                oracle: InlineOracle, sites: List[int]) -> None:
        """Decide every call site in ``node`` and recurse into inlined bodies."""
        for stmt in iter_call_sites(node.method.body):
            sites[0] += 1
            comp_context: Context = (
                ((node.method.id, stmt.site),) + context_above)
            decision = oracle.decide(stmt, comp_context, node.depth,
                                     total_size[0], root)
            if not decision.inline:
                continue
            sites[1] += 1

            const_args = count_constant_args(stmt.args)
            options = []
            for target in decision.targets:
                child = InlineNode(target, depth=node.depth + 1)
                total_size[0] += estimate_inlined_bytecodes(target, const_args)
                options.append(GuardOption(
                    target, child,
                    guard_class=target.klass if decision.guarded else None))
                self._expand(child, comp_context, total_size, root, oracle,
                             sites)

            kind = GUARDED if decision.guarded else DIRECT
            node.decisions[stmt.site] = InlineDecision(kind, options)
