"""Guard synthesis for speculative (guarded) inlining.

When static analysis cannot bind a virtual call but the profile predicts
one or two dominant targets, the compiler inlines those targets behind
runtime guards with a virtual-dispatch fallback (paper Section 3.1).  The
simulated machine implements *method-test* guards: the receiver's dynamic
class is resolved and compared against the inlined target.  For
completeness (and for tests of guard semantics) this module can also
enumerate the receiver classes each guard accepts, which is what an
exact class-test guard would check.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.compiler.compiled_method import GuardOption, InlineNode
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import MethodDef


def classes_for_target(hierarchy: ClassHierarchy, selector: str,
                       target: MethodDef) -> Set[str]:
    """All dynamic receiver classes that dispatch ``selector`` to ``target``.

    This is the acceptance set of a method-test guard -- a class-test
    implementation would emit one comparison per member.
    """
    accepted: Set[str] = set()
    for class_name in hierarchy.subclasses(target.klass):
        if hierarchy.resolve(class_name, selector) is target:
            accepted.add(class_name)
    return accepted


def order_guard_targets(
        candidates: Sequence[Tuple[MethodDef, float]]) -> List[MethodDef]:
    """Order guarded-inline targets hottest-first, deterministically.

    Guard tests execute in this order at runtime, so putting the dominant
    target first minimizes expected guard cost (the mechanism behind the
    paper's jess speedup: fewer guards executed before the hit).
    """
    ranked = sorted(candidates, key=lambda item: (-item[1], item[0].id))
    return [method for method, _weight in ranked]


def build_guard_options(targets: Sequence[MethodDef],
                        nodes: Sequence[InlineNode]) -> List[GuardOption]:
    """Pair each target with its inline-tree node as a guarded option."""
    if len(targets) != len(nodes):
        raise ValueError("targets and nodes must align")
    return [GuardOption(t, n, guard_class=t.klass)
            for t, n in zip(targets, nodes)]
