"""Guard synthesis for speculative (guarded) inlining.

When static analysis cannot bind a virtual call but the profile predicts
one or two dominant targets, the compiler inlines those targets behind
runtime guards with a virtual-dispatch fallback (paper Section 3.1).  The
simulated machine implements *method-test* guards: the receiver's dynamic
class is resolved and compared against the inlined target.  For
completeness (and for tests of guard semantics) this module can also
enumerate the receiver classes each guard accepts, which is what an
exact class-test guard would check.

Acceptance sets are memoized per hierarchy, keyed on the hierarchy's
load generation: the set for a (selector, target) pair only changes
when a class loads, and the dominance-based guard-elision pass queries
the same pairs repeatedly during one compilation.
"""

from __future__ import annotations

import math
import weakref
from typing import Dict, List, Sequence, Set, Tuple

from repro.compiler.compiled_method import GuardOption, InlineNode
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import MethodDef

#: Acceptance-set entries kept per hierarchy before the cache resets.
_ACCEPT_CACHE_LIMIT = 4096

_accept_cache: "weakref.WeakKeyDictionary[ClassHierarchy, Dict]" = \
    weakref.WeakKeyDictionary()
_accept_hits = 0
_accept_misses = 0


def classes_for_target(hierarchy: ClassHierarchy, selector: str,
                       target: MethodDef) -> Set[str]:
    """All dynamic receiver classes that dispatch ``selector`` to ``target``.

    This is the acceptance set of a method-test guard -- a class-test
    implementation would emit one comparison per member.  Results are
    memoized keyed on (hierarchy generation, selector, target); a class
    load bumps the generation and thereby invalidates every entry.
    """
    global _accept_hits, _accept_misses
    per_hierarchy = _accept_cache.get(hierarchy)
    if per_hierarchy is None:
        per_hierarchy = {}
        _accept_cache[hierarchy] = per_hierarchy
    key = (hierarchy.generation, selector, target)
    cached = per_hierarchy.get(key)
    if cached is not None:
        _accept_hits += 1
        return set(cached)
    _accept_misses += 1
    accepted: Set[str] = set()
    for class_name in hierarchy.subclasses(target.klass):
        if hierarchy.resolve(class_name, selector) is target:
            accepted.add(class_name)
    if len(per_hierarchy) >= _ACCEPT_CACHE_LIMIT:
        per_hierarchy.clear()
    per_hierarchy[key] = frozenset(accepted)
    return accepted


def accept_cache_info() -> Dict[str, int]:
    """Hit/miss counters and live size of the acceptance-set cache."""
    return {"hits": _accept_hits, "misses": _accept_misses,
            "size": sum(len(per) for per in _accept_cache.values())}


def clear_accept_cache() -> None:
    """Drop all memoized acceptance sets and reset the counters."""
    global _accept_hits, _accept_misses
    _accept_cache.clear()
    _accept_hits = 0
    _accept_misses = 0


def order_guard_targets(
        candidates: Sequence[Tuple[MethodDef, float]]) -> List[MethodDef]:
    """Order guarded-inline targets hottest-first, deterministically.

    Guard tests execute in this order at runtime, so putting the dominant
    target first minimizes expected guard cost (the mechanism behind the
    paper's jess speedup: fewer guards executed before the hit).  Equal
    weights tie-break on ``method.id``; a NaN or infinite weight would
    make the order depend on input position, so non-finite weights are
    rejected outright.
    """
    for method, weight in candidates:
        if not math.isfinite(weight):
            raise ValueError(
                f"non-finite guard weight {weight!r} for {method.id}")
    ranked = sorted(candidates, key=lambda item: (-item[1], item[0].id))
    return [method for method, _weight in ranked]


def build_guard_options(targets: Sequence[MethodDef],
                        nodes: Sequence[InlineNode]) -> List[GuardOption]:
    """Pair each target with its inline-tree node as a guarded option."""
    if len(targets) != len(nodes):
        raise ValueError("targets and nodes must align")
    return [GuardOption(t, n, guard_class=t.klass)
            for t, n in zip(targets, nodes)]
