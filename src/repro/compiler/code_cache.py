"""The code cache: which compiled code exists for each method.

Tracks baseline-compiled methods (compiled lazily at first invocation, as
in Jikes RVM's FastAdaptive configurations) and the current optimized
version of each recompiled method.  Also accumulates the metrics the
paper's evaluation reports:

* ``opt_code_bytes`` -- cumulative bytes of optimized machine code emitted
  (Figure 5; old versions are not reclaimed in Jikes RVM 2.1.1, so the
  cumulative measure is the faithful one),
* ``opt_compile_cycles`` -- cumulative optimizing-compilation time,
* Table 1's "methods / bytecodes dynamically compiled" counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.compiler.compiled_method import CompiledMethod
from repro.jvm.costs import CostModel
from repro.jvm.program import MethodDef
from repro.provenance.reasons import EventKind
from repro.provenance.recorder import NULL_PROVENANCE
from repro.telemetry.recorder import NULL_RECORDER


class CodeCache:
    """Registry of compiled code plus compilation metrics."""

    def __init__(self, costs: CostModel):
        self._costs = costs
        #: Telemetry sink for size counters (the adaptive runtime swaps in
        #: its recorder); the NullRecorder default costs nothing.
        self.telemetry = NULL_RECORDER
        #: Provenance sink for eviction/invalidation events (same swap-in
        #: pattern; the NullProvenance default is a no-op).
        self.provenance = NULL_PROVENANCE
        self._baseline: Set[str] = set()
        self._opt: Dict[str, CompiledMethod] = {}
        self._versions: Dict[str, int] = {}

        self.baseline_compiled_methods = 0
        self.baseline_compiled_bytecodes = 0
        self.baseline_code_bytes = 0
        self.opt_compilations = 0
        self.invalidated_compilations = 0
        self.opt_code_bytes = 0
        self.opt_compile_cycles = 0.0
        self.opt_inlined_bytecodes = 0

    # -- baseline tier -----------------------------------------------------

    def has_baseline(self, method_id: str) -> bool:
        return method_id in self._baseline

    def compile_baseline(self, method: MethodDef) -> float:
        """Record a baseline compilation; returns the cycles it cost."""
        if method.id in self._baseline:
            return 0.0
        self._baseline.add(method.id)
        cycles = method.bytecodes * self._costs.baseline_compile_cycles_per_bc
        self.baseline_compiled_methods += 1
        self.baseline_compiled_bytecodes += method.bytecodes
        self.baseline_code_bytes += method.bytecodes * self._costs.baseline_bytes_per_bc
        self.telemetry.count("code_cache.baseline_compilations")
        self.telemetry.count("code_cache.baseline_code_bytes",
                             method.bytecodes * self._costs.baseline_bytes_per_bc)
        return float(cycles)

    # -- optimizing tier ---------------------------------------------------

    def opt_version(self, method_id: str) -> Optional[CompiledMethod]:
        """The currently installed optimized code for a method, if any."""
        return self._opt.get(method_id)

    def next_version(self, method_id: str) -> int:
        return self._versions.get(method_id, 0) + 1

    def install(self, compiled: CompiledMethod) -> None:
        """Install new optimized code, replacing any previous version."""
        method_id = compiled.method.id
        replaced = self._opt.get(method_id)
        if replaced is not None:
            # The old version stops receiving new invocations: an eviction
            # in the live-code-space sense (cumulative opt_code_bytes still
            # counts it, faithfully to Jikes RVM 2.1.1's non-reclaiming
            # code space).
            self.provenance.event(
                EventKind.EVICTION, method_id, version=replaced.version,
                code_bytes=replaced.code_bytes,
                replaced_by=compiled.version)
        self._opt[method_id] = compiled
        self._versions[method_id] = compiled.version
        self.opt_compilations += 1
        self.opt_code_bytes += compiled.code_bytes
        self.opt_compile_cycles += compiled.compile_cycles
        self.opt_inlined_bytecodes += compiled.inlined_bytecodes
        self.telemetry.count("code_cache.opt_compilations")
        self.telemetry.count("code_cache.opt_code_bytes", compiled.code_bytes)
        self.telemetry.gauge("code_cache.live_opt_code_bytes",
                             self.live_opt_code_bytes())
        self.telemetry.gauge("code_cache.installed_methods", len(self._opt))

    def opt_methods(self) -> List[CompiledMethod]:
        """Currently installed optimized methods (latest versions only)."""
        return list(self._opt.values())

    def invalidate(self, method_id: str, **context) -> bool:
        """Discard installed optimized code (CHA dependency broken).

        Future invocations fall back to baseline code until the adaptive
        system recompiles; the version counter keeps advancing so the
        recompile is observably a new version.  In-flight activations keep
        running the old inline tree -- which is exactly what pre-existence
        licenses (their receivers predate the class that just loaded).

        ``context`` (e.g. the broken selector and the class whose loading
        broke it) is attached to the provenance event verbatim.
        """
        removed = self._opt.pop(method_id, None)
        if removed is None:
            return False
        self.invalidated_compilations += 1
        self.provenance.event(
            EventKind.INVALIDATE, method_id, version=removed.version,
            code_bytes=removed.code_bytes, **context)
        self.telemetry.count("code_cache.invalidations")
        self.telemetry.gauge("code_cache.live_opt_code_bytes",
                             self.live_opt_code_bytes())
        self.telemetry.gauge("code_cache.installed_methods", len(self._opt))
        return True

    def live_opt_code_bytes(self) -> int:
        """Bytes of the latest versions only (alternative code-space view)."""
        return sum(cm.code_bytes for cm in self._opt.values())

    # -- Table 1 metrics ---------------------------------------------------

    @property
    def dynamically_compiled_methods(self) -> int:
        """Methods compiled at least once (Table 1's 'Methods' column)."""
        return self.baseline_compiled_methods

    @property
    def dynamically_compiled_bytecodes(self) -> int:
        """Bytecodes of dynamically compiled methods (Table 1)."""
        return self.baseline_compiled_bytecodes
