"""The AOS controller and compilation thread (paper Section 3.2).

The controller is the decision-making component: it reads organizer events
and uses an analytic cost/benefit model (in the style of Arnold et al.,
OOPSLA 2000) to decide what to recompile.  Approved decisions become
compilation plans -- each carrying an :class:`~repro.compiler.oracle.
InlineOracle` that encapsulates the inlining rules current at plan-creation
time -- and the compilation thread executes them, charging compile cycles
and installing the new code.

Analytic model.  A method with ``S`` timer samples has executed for about
``S * sample_interval`` cycles.  Assuming the program continues to behave
as it has so far (the standard online assumption; the paper stresses that
online decisions cannot see the future), the method's *future* time equals
its past time.  Recompiling at the optimizing tier is worthwhile when::

    compile_cost  <  future_time * (1 - 1/estimated_speedup)

where ``compile_cost`` scales with the method's size (times an expansion
allowance for inlining).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, NamedTuple, Optional, Set

from repro.aos.cost_accounting import COMPILATION, CONTROLLER
from repro.aos.database import AOSDatabase, CompilationEvent
from repro.aos.organizers import AOSState, MAX_OPT_VERSIONS
from repro.compiler.code_cache import CodeCache
from repro.compiler.opt_compiler import OptCompiler
from repro.compiler.oracle import InlineOracle
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import Program
from repro.provenance.reasons import EventKind
from repro.provenance.recorder import NULL_PROVENANCE
from repro.telemetry.recorder import NULL_RECORDER

#: Inlining typically grows the compiled size; the controller's cost model
#: assumes this expansion factor when estimating compile cost up front.
EXPANSION_GUESS = 1.6


class CompilationPlan(NamedTuple):
    """One approved recompilation, ready for the compilation thread."""

    method_id: str
    oracle: InlineOracle
    version: int
    rules_fingerprint: int
    reason: str


class Controller:
    """Reads organizer events, applies the analytic model, emits plans."""

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 state: AOSState, code_cache: CodeCache,
                 database: AOSDatabase, costs: CostModel,
                 telemetry=NULL_RECORDER, provenance=NULL_PROVENANCE,
                 oracle_factory=None, speculation=None, deopt=None):
        self._program = program
        self._hierarchy = hierarchy
        self._state = state
        self._code_cache = code_cache
        self._database = database
        self._costs = costs
        self._telemetry = telemetry
        self._provenance = provenance
        #: Optional speculation analysis handed to every *stock* oracle.
        #: Factory-made oracles (static policies) keep their fixed keyword
        #: contract and never see it.
        self._speculation = speculation
        #: Optional deopt planner, same wiring contract as speculation.
        self._deopt = deopt
        #: Optional hook replacing the stock :class:`InlineOracle` for
        #: every compilation plan.  Called with the same keyword wiring
        #: the stock oracle receives (refusal/CHA-dependency sinks,
        #: telemetry, provenance); policies expose it as ``make_oracle``
        #: so e.g. the static oracle rides the unmodified controller.
        self._oracle_factory = oracle_factory

        self._hot_events: Dict[str, float] = {}
        self._missing_edge_events: Set[str] = set()
        self._osr_events: Set[str] = set()
        self._last_plan_clock: Dict[str, float] = {}
        self.compilation_queue: Deque[CompilationPlan] = deque()
        self.decisions_evaluated = 0
        self.plans_created = 0

    # -- event intake (called by organizers) -----------------------------------

    def method_is_hot(self, method_id: str, samples: float) -> None:
        self._hot_events[method_id] = samples

    def recompile_for_missing_edge(self, method_id: str) -> None:
        self._missing_edge_events.add(method_id)

    def osr_request(self, method_id: str) -> None:
        """A baseline loop crossed the OSR back-edge threshold.

        Long-running loops hide from invocation-biased timer sampling, so
        the back-edge trigger bypasses the sample-count model: the loop
        has *proved* it is hot.  The compilation itself still happens on
        the compilation thread at the next organizer wake, and the running
        loop transfers onto the new code when it polls (on-stack
        replacement).
        """
        self._osr_events.add(method_id)

    # -- decision making ----------------------------------------------------------

    def process_events(self, machine) -> int:
        """Evaluate pending events; enqueue approved compilation plans."""
        costs = self._costs
        created = 0

        hot_events = sorted(self._hot_events.items())
        self._hot_events.clear()
        missing = sorted(self._missing_edge_events)
        self._missing_edge_events.clear()
        osr = sorted(self._osr_events)
        self._osr_events.clear()

        events = len(hot_events) + len(missing) + len(osr)
        span_id = None
        if events:
            span_id = self._telemetry.begin_span(
                CONTROLLER, "process_events", events=events)
            machine.charge(CONTROLLER, events * costs.controller_event_cost)
        self.decisions_evaluated += events

        for method_id, samples in hot_events:
            if self._code_cache.opt_version(method_id) is not None:
                continue  # already optimized; missing-edge path handles more
            if self._approve_first_compile(method_id, samples):
                self._enqueue_plan(method_id, "hot", machine.clock)
                created += 1
            elif self._provenance.enabled:
                immature = (self._state.dcg.total_weight
                            < costs.first_compile_min_weight)
                self._provenance.event(
                    EventKind.PLAN_DEFERRED, method_id, trigger="hot",
                    why="immature_profile" if immature else "unprofitable",
                    samples=samples)

        for method_id in osr:
            if self._code_cache.opt_version(method_id) is not None:
                continue
            self._enqueue_plan(method_id, "osr", machine.clock)
            created += 1

        for method_id in missing:
            compiled = self._code_cache.opt_version(method_id)
            if compiled is None:
                # Became a candidate before ever being optimized; treat as hot.
                self._enqueue_plan(method_id, "missing_edge", machine.clock)
                created += 1
                continue
            if compiled.version >= MAX_OPT_VERSIONS:
                self._provenance.event(
                    EventKind.PLAN_DEFERRED, method_id,
                    trigger="missing_edge", why="max_versions",
                    version=compiled.version)
                continue
            if compiled.rules_fingerprint == self._state.rules_fingerprint:
                continue  # installed code already reflects the rules
            # Rate-limit profile-driven recompilation of any one method.
            last = self._last_plan_clock.get(method_id, float("-inf"))
            if machine.clock - last < costs.recompile_cooldown:
                self._provenance.event(
                    EventKind.PLAN_DEFERRED, method_id,
                    trigger="missing_edge", why="cooldown")
                continue
            self._enqueue_plan(method_id, "missing_edge", machine.clock)
            created += 1

        self.plans_created += created
        if span_id is not None:
            self._telemetry.count("controller.events", events)
            if created:
                self._telemetry.count("controller.plans", created)
            self._telemetry.end_span(span_id, plans=created)
        return created

    def _approve_first_compile(self, method_id: str, samples: float) -> bool:
        costs = self._costs
        # Wait for the profile to mature: optimizing against a half-formed
        # rule set just schedules a missing-edge recompile moments later.
        if self._state.dcg.total_weight < costs.first_compile_min_weight:
            return False
        method = self._program.method(method_id)
        future_time = samples * costs.sample_interval
        speedup = costs.estimated_opt_speedup
        benefit = future_time * (1.0 - 1.0 / speedup)
        compile_cost = (method.bytecodes * EXPANSION_GUESS
                        * costs.opt_compile_cycles_per_bc)
        return benefit > compile_cost

    def _enqueue_plan(self, method_id: str, reason: str,
                      clock: float = 0.0) -> None:
        state = self._state
        database = self._database
        self._last_plan_clock[method_id] = clock
        if self._oracle_factory is not None:
            oracle = self._oracle_factory(
                self._program, self._hierarchy, self._costs,
                on_refusal=database.record_refusal,
                on_cha_dependency=database.record_cha_dependency,
                telemetry=self._telemetry, provenance=self._provenance)
        else:
            oracle = InlineOracle(
                self._program, self._hierarchy, self._costs, state.rules,
                on_refusal=database.record_refusal, dcg=state.dcg,
                on_cha_dependency=database.record_cha_dependency,
                telemetry=self._telemetry, provenance=self._provenance,
                speculation=self._speculation, deopt=self._deopt)
        plan = CompilationPlan(
            method_id=method_id,
            oracle=oracle,
            version=self._code_cache.next_version(method_id),
            rules_fingerprint=state.rules_fingerprint,
            reason=reason)
        self._provenance.event(
            EventKind.PLAN, method_id, reason=reason, version=plan.version,
            rules=len(state.rules), rules_fingerprint=plan.rules_fingerprint)
        self.compilation_queue.append(plan)


class CompilationThread:
    """Executes compilation plans and installs the resulting code."""

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 code_cache: CodeCache, database: AOSDatabase,
                 costs: CostModel, telemetry=NULL_RECORDER,
                 provenance=NULL_PROVENANCE, speculation=None):
        self._compiler = OptCompiler(program, hierarchy, costs,
                                     telemetry=telemetry,
                                     speculation=speculation)
        self._program = program
        self._code_cache = code_cache
        self._database = database
        self._telemetry = telemetry
        self._provenance = provenance
        self.compilations_done = 0

    def run(self, machine, queue: Deque[CompilationPlan]) -> int:
        telemetry = self._telemetry
        provenance = self._provenance
        done = 0
        while queue:
            plan = queue.popleft()
            method = self._program.method(plan.method_id)
            # Fresh code records fresh CHA dependencies; drop the old set.
            self._database.clear_cha_dependencies(plan.method_id)
            span_id = telemetry.begin_span(
                COMPILATION, "opt_compile", method=plan.method_id,
                version=plan.version, reason=plan.reason)
            # Bracket the compile so the oracle's decision records carry
            # this compilation's version.
            provenance.begin_compilation(plan.method_id, plan.version,
                                         plan.reason, plan.rules_fingerprint)
            compiled = self._compiler.compile(
                method, plan.oracle, plan.version, plan.rules_fingerprint)
            machine.charge(COMPILATION, compiled.compile_cycles)
            provenance.end_compilation(compiled.inlined_bytecodes,
                                       compiled.code_bytes,
                                       compiled.compile_cycles)
            self._code_cache.install(compiled)
            telemetry.end_span(
                span_id, self_cycles=compiled.compile_cycles,
                inlined_bytecodes=compiled.inlined_bytecodes,
                code_bytes=compiled.code_bytes,
                inline_nodes=compiled.inline_node_count(),
                guards=compiled.guard_count(),
                guards_elided=compiled.elided_guard_count())
            telemetry.observe("opt_compile.cycles", compiled.compile_cycles)
            telemetry.observe("opt_compile.inlined_bytecodes",
                              compiled.inlined_bytecodes)
            self._database.log_compilation(CompilationEvent(
                method_id=plan.method_id,
                version=plan.version,
                inlined_bytecodes=compiled.inlined_bytecodes,
                code_bytes=compiled.code_bytes,
                compile_cycles=compiled.compile_cycles,
                clock=machine.clock,
                reason=plan.reason))
            done += 1
        self.compilations_done += done
        return done
