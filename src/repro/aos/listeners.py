"""AOS listeners: method, edge, and trace sampling (paper Sections 3.2-3.3).

Listeners run at every timer sample:

* the **method listener** records the physical method whose machine code is
  executing -- this drives hot-method detection and the controller's
  recompilation decisions;
* the **trace listener** (the paper's addition; it subsumes the edge
  listener, which is exactly the depth-1 walk) inspects the *source-level*
  call stack and records a trace sample of the form
  ``caller_1, callsite_1, ..., caller_n, callsite_n, callee`` where the
  depth ``n`` is governed by the active context-sensitivity policy.

Because the interpreter pushes marker frames for inlined activations, the
trace listener naturally sees through optimized stack frames -- the
"missing frame" hazard of Section 3.3 cannot occur here, mirroring Jikes
RVM's use of its source-level stack decoding mechanisms.

The listeners charge their cycles to the ``aos_listeners`` component, with
the trace listener paying per frame traversed; Figure 6's observation that
context-sensitive listeners cost up to 2x more (yet stay negligible)
reproduces directly from this accounting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.aos.cost_accounting import LISTENERS
from repro.compiler.size_estimator import is_large
from repro.jvm.costs import CostModel
from repro.jvm.frames import Frame, physical_method
from repro.jvm.program import MethodDef
from repro.policies.base import ContextSensitivityPolicy
from repro.profiles.trace import TraceKey


class MethodListener:
    """Records one (physical) method sample per timer tick."""

    def __init__(self) -> None:
        self.buffer: List[str] = []
        self.samples_taken = 0

    def sample(self, stack: List[Frame]) -> Optional[str]:
        method = physical_method(stack)
        if method is None:
            return None
        self.samples_taken += 1
        self.buffer.append(method.id)
        return method.id

    def drain(self) -> List[str]:
        out = self.buffer
        self.buffer = []
        return out


class TraceListener:
    """Samples policy-bounded call traces from the source-level stack.

    The walk (shared by every policy; see
    :class:`repro.policies.base.ContextSensitivityPolicy` for the hook
    semantics):

    1. ``m0`` is the sampled callee (top of the source-level stack); edge 1
       (its immediate caller and call site) is always recorded -- it is the
       classic context-insensitive edge sample;
    2. before adding edge *e* (e >= 2), stop if ``policy.stop_below`` holds
       for ``m_{e-2}``;
    3. after adding edge *e*, stop if ``policy.stop_at`` holds for the
       caller just added;
    4. never exceed ``policy.depth_limit(caller_1, site_1)`` edges.
    """

    def __init__(self, policy: ContextSensitivityPolicy):
        self.policy = policy
        self.buffer: List[TraceKey] = []
        self.samples_taken = 0
        #: Histogram of frames traversed per sample (edge count -> samples).
        self.depth_histogram: Dict[int, int] = {}
        #: Why each walk ended: "max_depth", "stack", "stop_below", "stop_at".
        self.termination_reasons: Dict[str, int] = {}

    def sample(self, stack: List[Frame]) -> Optional[TraceKey]:
        """Take one trace sample; returns the recorded key (or None)."""
        if len(stack) < 2 or stack[-1].site is None:
            return None  # no call edge exists yet (still in main's prologue)

        policy = self.policy
        callee = stack[-1].method
        # Edge 1 determines the per-site depth limit.
        caller_1 = stack[-2].method
        site_1 = stack[-1].site
        limit = min(policy.max_depth, policy.depth_limit(caller_1.id, site_1))

        context: List[Tuple[str, int]] = [(caller_1.id, site_1)]
        chain: List[MethodDef] = [callee, caller_1]
        reason = "max_depth"

        if policy.stop_at(caller_1):
            reason = "stop_at"
        else:
            edges = 1
            while edges < limit:
                # Gate for edge e+1: can state flow through m_{e-1}?
                if policy.stop_below(chain[edges - 1]):
                    reason = "stop_below"
                    break
                if len(stack) < edges + 2 or stack[-1 - edges].site is None:
                    reason = "stack"
                    break
                next_caller = stack[-2 - edges].method
                context.append((next_caller.id, stack[-1 - edges].site))
                chain.append(next_caller)
                edges += 1
                if policy.stop_at(next_caller):
                    reason = "stop_at"
                    break

        key = TraceKey(callee.id, tuple(context))
        self.buffer.append(key)
        self.samples_taken += 1
        depth = key.depth
        self.depth_histogram[depth] = self.depth_histogram.get(depth, 0) + 1
        self.termination_reasons[reason] = \
            self.termination_reasons.get(reason, 0) + 1
        return key

    def drain(self) -> List[TraceKey]:
        out = self.buffer
        self.buffer = []
        return out

    def walk_cost(self, key: TraceKey, costs: CostModel) -> float:
        """Listener cycles for one sample: per-frame traversal cost."""
        return (key.depth + 1) * costs.trace_frame_cost

    def mean_depth(self) -> float:
        total = sum(self.depth_histogram.values())
        if total == 0:
            return 0.0
        return sum(d * n for d, n in self.depth_histogram.items()) / total


class TerminationStatsProbe:
    """Instrumentation reproducing the paper's Section 4 in-text statistics.

    Independently of the active policy, records for each sample where the
    first parameterless method, first class (static) method, and first
    large method occur in the call chain (positions are 0 for the callee
    itself, 1 for its caller, and so on, capped at ``horizon``).
    """

    def __init__(self, costs: CostModel, horizon: int = 6):
        self._costs = costs
        self.horizon = horizon
        self.samples = 0
        self.first_parameterless: Dict[int, int] = {}   # position -> count
        self.first_class_method: Dict[int, int] = {}
        self.first_large: Dict[int, int] = {}
        self._NOT_FOUND = horizon + 1

    def sample(self, stack: List[Frame]) -> None:
        if len(stack) < 2 or stack[-1].site is None:
            return
        self.samples += 1
        chain = [f.method for f in reversed(stack)][:self.horizon + 1]

        self._record(self.first_parameterless, chain,
                     lambda m: m.is_parameterless)
        self._record(self.first_class_method, chain, lambda m: m.is_static)
        self._record(self.first_large, chain,
                     lambda m: is_large(m, self._costs))

    def _record(self, histogram: Dict[int, int], chain, predicate) -> None:
        position = self._NOT_FOUND
        for index, method in enumerate(chain):
            if predicate(method):
                position = index
                break
        histogram[position] = histogram.get(position, 0) + 1

    def absorb(self, other: "TerminationStatsProbe") -> None:
        """Fold another probe's recorded state into this one.

        The best-of-N harness runs each sampling phase under its own
        fresh probe and absorbs only the *best* run's probe into the
        caller's -- so the reported statistics describe the run actually
        reported, not a mixture of all N attempts.  Callers sharing one
        probe across cells still aggregate across those best runs.
        """
        self.samples += other.samples
        for mine, theirs in ((self.first_parameterless,
                              other.first_parameterless),
                             (self.first_class_method,
                              other.first_class_method),
                             (self.first_large, other.first_large)):
            for position, count in theirs.items():
                mine[position] = mine.get(position, 0) + count

    # -- the paper's quoted statistics -----------------------------------------

    def fraction_immediately_parameterless(self) -> float:
        """Paper: ~20% of sampled callees are immediately parameterless."""
        if self.samples == 0:
            return 0.0
        return self.first_parameterless.get(0, 0) / self.samples

    def fraction_parameterless_within(self, levels: int = 5) -> float:
        """Paper: 50-80% contain a parameterless call within five levels."""
        if self.samples == 0:
            return 0.0
        hits = sum(n for pos, n in self.first_parameterless.items()
                   if pos <= levels)
        return hits / self.samples

    def fraction_class_method_within(self, edges: int = 2) -> float:
        """Paper: 50-80% hit a class method within two call edges."""
        if self.samples == 0:
            return 0.0
        hits = sum(n for pos, n in self.first_class_method.items()
                   if pos <= edges)
        return hits / self.samples

    def fraction_large_at_or_beyond(self, edges: int = 4) -> float:
        """Paper: ~half need four or more edges to reach a large method."""
        if self.samples == 0:
            return 0.0
        hits = sum(n for pos, n in self.first_large.items() if pos >= edges)
        return hits / self.samples
