"""AOS organizers (paper Section 3.2, Figure 3).

Organizers periodically convert raw listener samples into digested forms
and feed the controller:

* :class:`DCGOrganizer` -- collates trace samples into the weighted
  dynamic call graph (and gives adaptive policies their feedback hook);
* :class:`AIOrganizer` -- derives inlining rules from traces above the hot
  threshold (1.5% of total profile weight);
* :class:`HotMethodsOrganizer` -- aggregates method samples and raises
  hot-method events for the controller;
* :class:`DecayOrganizer` -- decays profile data toward recent behaviour so
  the system adapts to phase shifts;
* :class:`MissingEdgeOrganizer` -- finds hot optimized methods whose code
  predates a rule that would now apply, and requests recompilation unless
  the AOS database says the compiler already refused that edge.

Each organizer charges its cycles to its Figure-6 component.  (As in the
paper's figure, the dynamic-call-graph work is accounted under the AI
organizer.)
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Set, Tuple

from repro.aos.cost_accounting import (AI_ORGANIZER, DECAY_ORGANIZER,
                                       METHOD_ORGANIZER)
from repro.aos.database import AOSDatabase
from repro.aos.listeners import MethodListener, TraceListener
from repro.compiler.code_cache import CodeCache
from repro.compiler.compiled_method import GUARDED
from repro.compiler.opt_compiler import iter_call_sites
from repro.compiler.oracle import build_site_trace_index, guard_coverage
from repro.jvm.program import S_INTERFACE_CALL, S_VIRTUAL_CALL
from repro.jvm.costs import CostModel
from repro.policies.base import ContextSensitivityPolicy
from repro.profiles.dcg import DynamicCallGraph
from repro.profiles.partial_match import candidate_targets
from repro.profiles.trace import ORIGIN_FLEET, ORIGIN_LOCAL, InlineRule

#: Hard cap on optimizing recompilations of one method, bounding any
#: recompile churn from rapidly-shifting early profiles.
MAX_OPT_VERSIONS = 4


def rules_fingerprint_of(rules) -> int:
    """Process-independent fingerprint of a rule set.

    The builtin ``hash()`` is salted by PYTHONHASHSEED, so the AOS uses a
    CRC over the sorted-stable rule identity instead: rule-set equality
    still gates recompilation, and decision-provenance logs recorded on
    different machines carry comparable fingerprints.  Shared by the AI
    organizer and the fleet warm-start bootstrap so a warm-seeded rule
    set and its first local re-derivation agree byte-for-byte.
    """
    return zlib.crc32(repr(
        tuple((r.key.callee, r.key.context) for r in rules)).encode())


class AOSState:
    """Profile state shared between organizers and the controller."""

    def __init__(self) -> None:
        self.dcg = DynamicCallGraph()
        self.rules: List[InlineRule] = []
        self.rules_fingerprint: int = 0
        self.method_samples: Dict[str, float] = {}
        #: Trace keys seeded from fleet-aggregated profiles (empty for
        #: cold runs).  Rules over these keys keep ``origin="fleet"``
        #: even when the AI organizer re-derives them from the (seeded)
        #: DCG, so warm-start decisions stay provenance-traceable.
        self.warm_keys: frozenset = frozenset()

    def total_method_samples(self) -> float:
        return sum(self.method_samples.values())


class DCGOrganizer:
    """Drains the trace listener's buffer into the dynamic call graph."""

    def __init__(self, state: AOSState, policy: ContextSensitivityPolicy,
                 costs: CostModel):
        self._state = state
        self._policy = policy
        self._costs = costs

    def run(self, machine, trace_listener: TraceListener) -> int:
        samples = trace_listener.drain()
        for key in samples:
            self._state.dcg.add(key)
        if samples:
            machine.charge(AI_ORGANIZER,
                           len(samples) * self._costs.dcg_ingest_cost)
            # Adaptive policies (imprecision-driven) react to fresh data.
            self._policy.observe(self._state.dcg)
        return len(samples)


class AIOrganizer:
    """Derives inlining rules from hot traces (threshold share of weight).

    Traces whose share hovers at the threshold would otherwise enter and
    leave the rule set on every epoch (sampling noise plus decay pruning),
    and each flicker looks like "rules changed" to the missing-edge
    organizer -- triggering useless recompilation.  The organizer therefore
    applies hysteresis: a trace must be hot for :data:`ENTER_STREAK`
    consecutive epochs to become a rule, and a rule is only dropped after
    :data:`EXIT_STREAK` consecutive cold epochs.
    """

    #: Consecutive hot epochs before a trace becomes a rule.
    ENTER_STREAK = 1
    #: Consecutive epochs below the retention band before a rule retires.
    EXIT_STREAK = 4
    #: A rule is retained while its share stays above this fraction of the
    #: entry threshold (hysteresis in share space).
    RETAIN_FRACTION = 0.6

    def __init__(self, state: AOSState, costs: CostModel):
        self._state = state
        self._costs = costs
        self._hot_streak: Dict[object, int] = {}
        self._cold_streak: Dict[object, int] = {}
        self._active: Dict[object, float] = {}  # key -> last hot weight

    def run(self, machine) -> List[InlineRule]:
        state = self._state
        machine.charge(AI_ORGANIZER,
                       len(state.dcg) * self._costs.ai_examine_cost)
        total = state.dcg.total_weight
        if total < self._costs.ai_min_total_weight:
            return state.rules  # too little data to act on yet

        threshold = self._costs.hot_edge_threshold
        hot = state.dcg.hot_traces(threshold)
        hot_keys = {key for key, _weight in hot}
        warm_keys = {key for key, _weight
                     in state.dcg.hot_traces(threshold * self.RETAIN_FRACTION)}

        for key, weight in hot:
            self._hot_streak[key] = self._hot_streak.get(key, 0) + 1
            self._cold_streak.pop(key, None)
            if (key in self._active
                    or self._hot_streak[key] >= self.ENTER_STREAK):
                self._active[key] = weight
        for key in list(self._hot_streak):
            if key not in hot_keys:
                del self._hot_streak[key]
        for key in list(self._active):
            if key in warm_keys:
                self._cold_streak.pop(key, None)
                continue
            streak = self._cold_streak.get(key, 0) + 1
            self._cold_streak[key] = streak
            if streak >= self.EXIT_STREAK:
                del self._active[key]
                del self._cold_streak[key]

        rules = [InlineRule(key, weight, weight / total if total else 0.0,
                            origin=(ORIGIN_FLEET if key in state.warm_keys
                                    else ORIGIN_LOCAL))
                 for key, weight in sorted(
                     self._active.items(),
                     key=lambda kv: (-kv[1], kv[0].callee, kv[0].context))]
        state.rules = rules
        state.rules_fingerprint = rules_fingerprint_of(rules)
        return rules


class HotMethodsOrganizer:
    """Aggregates method samples; raises hot-method events."""

    def __init__(self, state: AOSState, costs: CostModel):
        self._state = state
        self._costs = costs

    def run(self, machine, method_listener: MethodListener,
            controller) -> int:
        samples = method_listener.drain()
        if not samples:
            return 0
        machine.charge(METHOD_ORGANIZER,
                       len(samples) * self._costs.method_organizer_cost)
        counts = self._state.method_samples
        touched: Set[str] = set()
        for method_id in samples:
            counts[method_id] = counts.get(method_id, 0.0) + 1.0
            touched.add(method_id)
        for method_id in sorted(touched):
            if counts[method_id] >= self._costs.hot_method_samples:
                controller.method_is_hot(method_id, counts[method_id])
        return len(samples)


class DecayOrganizer:
    """Periodically decays all profile data (paper Section 3.2)."""

    def __init__(self, state: AOSState, costs: CostModel):
        self._state = state
        self._costs = costs
        self.runs = 0

    def run(self, machine) -> None:
        self.runs += 1
        state = self._state
        processed = state.dcg.decay(self._costs.decay_rate)
        for method_id in list(state.method_samples):
            decayed = state.method_samples[method_id] * self._costs.decay_rate
            if decayed < 0.25:
                del state.method_samples[method_id]
            else:
                state.method_samples[method_id] = decayed
        processed += len(state.method_samples)
        machine.charge(DECAY_ORGANIZER,
                       processed * self._costs.decay_entry_cost)


class MissingEdgeOrganizer:
    """Detects hot edges that became hot after their caller was compiled.

    For every installed optimized method compiled under an older rule set,
    checks whether some current rule names a call site in that method whose
    callee is not inlined there.  Unless the AOS database records a refusal
    for that edge, a recompilation event is raised.
    """

    def __init__(self, state: AOSState, code_cache: CodeCache,
                 database: AOSDatabase, costs: CostModel):
        self._state = state
        self._code_cache = code_cache
        self._database = database
        self._costs = costs

    def run(self, machine, controller) -> int:
        state = self._state
        rules_by_site: Dict[Tuple[str, int], List[InlineRule]] = {}
        for rule in state.rules:
            rules_by_site.setdefault(rule.context[0], []).append(rule)
        # The replay must agree with the oracle's guard-coverage test or it
        # will request recompiles the compiler then declines, forever.
        self._site_traces = build_site_trace_index(state.dcg)

        self._checks = 0
        requested = 0
        hot_bar = self._costs.hot_method_samples
        for compiled in self._code_cache.opt_methods():
            if compiled.rules_fingerprint == state.rules_fingerprint:
                continue  # compiled under the current rules already
            method_id = compiled.method.id
            if compiled.version >= MAX_OPT_VERSIONS:
                continue
            # Only *hot* optimized methods are examined (Section 3.2).
            if state.method_samples.get(method_id, 0.0) < hot_bar:
                continue
            if self._needs_recompile(compiled.root, (), rules_by_site):
                controller.recompile_for_missing_edge(method_id)
                requested += 1
        if self._checks:
            machine.charge(AI_ORGANIZER,
                           self._checks * self._costs.missing_edge_check_cost)
        return requested

    def _needs_recompile(self, node, ctx_above,
                         rules_by_site: Dict[Tuple[str, int],
                                             List[InlineRule]]) -> bool:
        """Replay the oracle's profile predictions over an inline tree.

        A recompile is worthwhile when some call site in the compiled code
        (at its actual compilation context) either

        * *misses* a target the current rules would now inline there
          (the edge became hot after the last compile), or
        * carries a *stale guard*: a speculatively inlined target the
          current rules no longer predict -- meaning the guard is wasted
          (or worse, the dominant target changed).

        Sites the oracle refused for durable reasons (size, space,
        recursion -- recorded in the AOS database) and sites at the
        inline-depth cap are skipped; recommending those again would be
        pure churn.
        """
        method_id = node.method.id
        for stmt in iter_call_sites(node.method.body):
            self._checks += 1
            site = stmt.site
            site_key = (method_id, site)
            decision = node.decisions.get(site)
            inlined = ({option.target.id for option in decision.options}
                       if decision is not None else set())

            site_rules = rules_by_site.get(site_key)
            if site_rules and node.depth < self._costs.max_inline_depth:
                comp_context = ((method_id, site),) + ctx_above
                predicted = candidate_targets(site_rules, comp_context)
                if predicted and stmt.kind in (S_VIRTUAL_CALL,
                                               S_INTERFACE_CALL):
                    # Mirror the oracle: a guarded inline only happens when
                    # the predicted targets cover enough dispatches.
                    chosen = set(sorted(predicted,
                                        key=lambda t: -predicted[t])
                                 [:self._costs.max_guarded_targets])
                    coverage = guard_coverage(
                        self._site_traces.get(site_key, ()),
                        comp_context, chosen)
                    if coverage < self._costs.guard_coverage_min:
                        predicted = {}
                for target_id in predicted:
                    if (target_id not in inlined
                            and not self._database.was_refused(
                                method_id, site, target_id)):
                        return True
                if decision is not None and decision.kind == GUARDED:
                    for target_id in inlined:
                        if target_id not in predicted:
                            return True  # stale guard
            elif (decision is not None and decision.kind == GUARDED
                  and not site_rules):
                return True  # every rule for this guarded site retired

            if decision is not None:
                comp_context = ((method_id, site),) + ctx_above
                for option in decision.options:
                    if self._needs_recompile(option.node, comp_context,
                                             rules_by_site):
                        return True
        return False
