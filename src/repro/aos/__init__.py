"""The adaptive optimization system: listeners, organizers, controller."""
