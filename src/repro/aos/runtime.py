"""The adaptive runtime: wires the machine, listeners, organizers, and
controller into one online system (paper Figure 3).

:class:`AdaptiveRuntime` owns the scheduling that Jikes RVM gets from its
timer interrupts and organizer threads: the machine's tick hook fires
whenever the cycle clock crosses the next deadline, and the runtime then
takes samples, wakes periodic organizers, runs the controller, and lets
the compilation thread drain its queue.  Everything -- profiling, decision
making, and inlining -- happens *online* while the program runs, on
profile data limited to the execution so far.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from repro.aos.controller import CompilationThread, Controller
from repro.aos.cost_accounting import (AI_ORGANIZER, ALL_COMPONENTS, APP,
                                       CONTROLLER, DECAY_ORGANIZER,
                                       LISTENERS, METHOD_ORGANIZER,
                                       CostAccounting)
from repro.aos.database import AOSDatabase
from repro.aos.listeners import (MethodListener, TerminationStatsProbe,
                                 TraceListener)
from repro.aos.organizers import (AIOrganizer, AOSState, DCGOrganizer,
                                  DecayOrganizer, HotMethodsOrganizer,
                                  MissingEdgeOrganizer)
from repro.compiler.code_cache import CodeCache
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.interpreter import Machine
from repro.jvm.program import Program
from repro.jvm.values import Value
from repro.policies.base import ContextSensitivityPolicy
from repro.provenance.metrics import fold_into_telemetry
from repro.provenance.reasons import EventKind
from repro.provenance.recorder import NULL_PROVENANCE, ProvenanceRecorder
from repro.telemetry.progress import ProgressTracker, instrument_progress
from repro.telemetry.recorder import NULL_RECORDER, TelemetryRecorder


@dataclass
class RunResult:
    """Everything one adaptive run produces, for the experiment harness."""

    program_name: str
    policy_name: str
    return_value: Value

    total_cycles: float
    component_cycles: Dict[str, float]

    opt_code_bytes: int
    live_opt_code_bytes: int
    opt_compilations: int
    opt_compile_cycles: float
    opt_inlined_bytecodes: int

    classes_loaded: int
    methods_compiled: int
    bytecodes_compiled: int

    samples_taken: int
    traces_recorded: int
    mean_trace_depth: float
    depth_histogram: Dict[int, int]
    dcg_traces: int
    rule_count: int
    refusals: int

    guard_tests: int
    guard_misses: int
    dispatches: int
    inline_entries: int
    calls: int
    osr_transfers: int
    invalidations: int

    #: Per-progress-point statistics (``{name: {count, first_clock,
    #: last_clock}}``) when the run carried a
    #: :class:`~repro.telemetry.progress.ProgressTracker`; ``None``
    #: otherwise.  The causal profiler reports speedups as
    #: progress-rate changes computed from this payload.
    progress_points: Optional[Dict[str, Dict[str, float]]] = None

    # -- warm-start / fleet metrics (defaults keep old cached cells loadable) --
    #: Clock at which the rule set first became non-empty (0.0 for
    #: warm-started runs, ``None`` when no rule ever surfaced).
    first_rule_clock: Optional[float] = None
    #: Clock of the last optimizing compilation -- the run's
    #: cycles-to-steady-state proxy (``None`` when nothing compiled).
    steady_state_clock: Optional[float] = None
    #: Whether this runtime was bootstrapped from fleet-aggregated
    #: profiles before executing.
    warm_started: bool = False
    #: Inline entries through an elided guard (speculation pass); zero
    #: unless ``costs.speculation_enabled`` (default keeps old cached
    #: cells loadable).
    elided_entries: int = 0
    #: Zero-cost entries through cheap-exit OSR sites and deoptimization
    #: exits taken at them (deopt planner); both zero unless
    #: ``costs.deopt_planning_enabled`` (defaults keep old cached cells
    #: loadable).
    deopt_entries: int = 0
    deopt_exits: int = 0

    @property
    def app_cycles(self) -> float:
        return self.component_cycles[APP]

    def aos_fraction(self) -> float:
        total = self.total_cycles
        if total == 0:
            return 0.0
        return (total - self.component_cycles[APP]) / total


class AdaptiveRuntime:
    """One program execution under the adaptive optimization system."""

    def __init__(self, program: Program,
                 policy: ContextSensitivityPolicy,
                 costs: CostModel = DEFAULT_COSTS,
                 probe: Optional[TerminationStatsProbe] = None,
                 sample_phase: float = 0.0,
                 telemetry: Optional[TelemetryRecorder] = None,
                 provenance: Optional[ProvenanceRecorder] = None,
                 progress: Optional[ProgressTracker] = None):
        program.validate()
        self.program = program
        self.policy = policy
        self.costs = costs
        self.probe = probe
        # Telemetry is pure instrumentation (see repro.telemetry): it
        # charges no cycles, so traced and untraced runs are
        # cycle-identical.  The NullRecorder default makes every
        # instrumentation point a no-op.
        self.telemetry = telemetry if telemetry is not None else NULL_RECORDER
        # Decision provenance follows the same contract (see
        # repro.provenance): recording changes no decisions and charges no
        # cycles, so recorded and unrecorded runs are bit-identical.
        self.provenance = (provenance if provenance is not None
                           else NULL_PROVENANCE)

        self.hierarchy = ClassHierarchy(program)
        self.code_cache = CodeCache(costs)
        self.accounting = CostAccounting()
        self.database = AOSDatabase()
        self.state = AOSState()

        self.method_listener = MethodListener()
        self.trace_listener = TraceListener(policy)
        self.dcg_organizer = DCGOrganizer(self.state, policy, costs)
        self.ai_organizer = AIOrganizer(self.state, costs)
        self.hot_methods_organizer = HotMethodsOrganizer(self.state, costs)
        self.decay_organizer = DecayOrganizer(self.state, costs)
        # Speculation-risk static analysis (guard elision) is strictly
        # opt-in via the cost model; the import is local and gated so the
        # default configuration never touches repro.analysis (layering:
        # aos may depend on analysis, never the reverse).
        self.speculation = None
        if costs.speculation_enabled:
            from repro.analysis.dataflow import SpeculationAnalysis
            self.speculation = SpeculationAnalysis(program, self.hierarchy,
                                                   costs)
        # Deopt planning (OSR liveness + risk-directed strategy choice)
        # is gated the same way.  Under the stock "guard" strategy
        # dimension the planner still supplies the machine's OSR
        # live-state maps (map-in charging) but the oracle is never
        # routed through it -- the like-for-like baseline against which
        # the "osr-exit" and "planned" dimensions are measured.
        self.deopt = None
        oracle_deopt = None
        if costs.deopt_planning_enabled:
            from repro.analysis.deopt import DeoptPlanner
            self.deopt = DeoptPlanner(program, self.hierarchy, costs)
            if costs.deopt_strategy != "guard":
                oracle_deopt = self.deopt
        # A policy may supply its own per-compilation oracle (e.g. the
        # static-oracle baseline) via a ``make_oracle`` hook; the stock
        # policies have none and get the profile-directed InlineOracle.
        self.controller = Controller(program, self.hierarchy, self.state,
                                     self.code_cache, self.database, costs,
                                     telemetry=self.telemetry,
                                     provenance=self.provenance,
                                     oracle_factory=getattr(
                                         policy, "make_oracle", None),
                                     speculation=self.speculation,
                                     deopt=oracle_deopt)
        self.missing_edge_organizer = MissingEdgeOrganizer(
            self.state, self.code_cache, self.database, costs)
        self.compilation_thread = CompilationThread(
            program, self.hierarchy, self.code_cache, self.database, costs,
            telemetry=self.telemetry, provenance=self.provenance,
            speculation=self.speculation)

        self.machine = Machine(program, self.hierarchy, self.code_cache,
                               costs, self.accounting, self._tick)
        self.machine.osr_handler = self._osr_request
        self.machine.class_load_handler = self._on_class_load
        if self.deopt is not None:
            # Loop OSR transfers now charge the liveness-derived map-in
            # cost; keyed by statement identity (shared objects).
            self.machine.osr_liveness = self.deopt.loop_live_index()
        self.machine.telemetry = self.telemetry
        self.code_cache.telemetry = self.telemetry
        self.code_cache.provenance = self.provenance
        self.telemetry.bind(
            lambda: self.machine.clock,
            lambda component: self.accounting.cycles.get(component, 0.0))
        self.provenance.bind(lambda: self.machine.clock)
        # Progress points (see repro.telemetry.progress) are pure
        # instrumentation like telemetry and provenance: marking charges
        # no cycles, so tracked runs stay cycle-identical to untracked
        # ones.  Without a tracker the machine's marking hook stays cold.
        self.progress = progress
        if progress is not None:
            instrument_progress(self.machine, program, progress)

        # ``sample_phase`` (in [0, 1)) offsets the first timer tick, playing
        # the role of Jikes RVM's timer nondeterminism: the paper reports
        # the best of 20 runs precisely because sampling phase shifts the
        # adaptive system's decisions.  Experiments sweep a few phases and
        # aggregate.
        # -- warm-start bookkeeping (see repro.fleet.bootstrap) ----------------
        #: Clock at which the rule set first became non-empty.  Cold runs
        #: discover it at an organizer wake; the fleet bootstrap sets it
        #: to 0.0 when it installs warm rules before execution.
        self.first_rule_clock: Optional[float] = None
        #: True when profile state was seeded from fleet-aggregated data.
        self.warm_started = False
        #: Optional hook called after every periodic organizer wake with
        #: ``(runtime, epoch_index)``.  Pure observation on the host
        #: (Python) side: it is invoked outside any cycle charging, so a
        #: run with an observer stays cycle-identical to one without --
        #: the same zero-overhead contract as telemetry and provenance.
        self.epoch_observer: \
            Optional[Callable[["AdaptiveRuntime", int], None]] = None
        self._epoch = 0

        if not 0.0 <= sample_phase < 1.0:
            raise ValueError(f"sample_phase must be in [0, 1), "
                             f"got {sample_phase}")
        self._next_sample = float(costs.sample_interval) * (1.0 + sample_phase)
        self._next_organizer = float(costs.organizer_period) \
            * (1.0 + sample_phase)
        self._next_decay = float(costs.decay_period)
        # Timer ticks jitter around the nominal interval (as real timers
        # do); without jitter, fixed-interval sampling aliases against the
        # workload's loop structure and skews the profile's weight
        # distribution.  Seeded so runs stay reproducible.
        self._timer_rng = random.Random(int(sample_phase * 1_000_003) + 17)

    # -- scheduling --------------------------------------------------------------

    def _tick(self, machine: Machine) -> None:
        clock = machine.clock
        costs = self.costs

        while clock >= self._next_sample:
            self._take_sample(machine)
            self._next_sample += costs.sample_interval \
                * (0.5 + self._timer_rng.random())
            clock = machine.clock

        if clock >= self._next_organizer:
            self._organizer_wake(machine)
            self._next_organizer = machine.clock + costs.organizer_period

        if clock >= self._next_decay:
            with self.telemetry.span(DECAY_ORGANIZER, "decay_organizer"):
                self.decay_organizer.run(machine)
            self._next_decay = machine.clock + costs.decay_period

        machine.next_event = min(self._next_sample, self._next_organizer,
                                 self._next_decay)

    def _take_sample(self, machine: Machine) -> None:
        costs = self.costs
        telemetry = self.telemetry
        stack = machine.stack
        span_id = telemetry.begin_span(LISTENERS, "sample_tick")
        self.method_listener.sample(stack)
        machine.charge(LISTENERS, costs.method_listener_cost)
        key = self.trace_listener.sample(stack)
        if key is not None:
            machine.charge(LISTENERS,
                           self.trace_listener.walk_cost(key, costs))
        if self.probe is not None:
            self.probe.sample(stack)
        telemetry.end_span(span_id,
                           depth=0 if key is None else key.depth)
        # A full trace buffer wakes the DCG organizer early (Section 3.3).
        if len(self.trace_listener.buffer) >= costs.trace_buffer_capacity:
            with telemetry.span(AI_ORGANIZER, "dcg_organizer",
                                trigger="buffer_full"):
                self.dcg_organizer.run(machine, self.trace_listener)

    def _organizer_wake(self, machine: Machine) -> None:
        telemetry = self.telemetry
        fingerprint = self.state.rules_fingerprint
        wake_id = telemetry.begin_span("scheduler", "organizer_wake")
        with telemetry.span(AI_ORGANIZER, "dcg_organizer"):
            self.dcg_organizer.run(machine, self.trace_listener)
        with telemetry.span(AI_ORGANIZER, "ai_organizer"):
            self.ai_organizer.run(machine)
        with telemetry.span(METHOD_ORGANIZER, "hot_methods_organizer"):
            self.hot_methods_organizer.run(machine, self.method_listener,
                                           self.controller)
        with telemetry.span(AI_ORGANIZER, "missing_edge_organizer"):
            self.missing_edge_organizer.run(machine, self.controller)
        self.controller.process_events(machine)
        self.compilation_thread.run(machine,
                                    self.controller.compilation_queue)
        if self.state.rules_fingerprint != fingerprint:
            telemetry.instant(AI_ORGANIZER, "rules_changed",
                              rules=len(self.state.rules))
        if self.first_rule_clock is None and self.state.rules:
            self.first_rule_clock = machine.clock
        telemetry.end_span(wake_id)
        self._epoch += 1
        if self.epoch_observer is not None:
            self.epoch_observer(self, self._epoch)

    # -- OSR ---------------------------------------------------------------------

    def _osr_request(self, method_id: str) -> None:
        """Machine OSR trigger: note the event, forward to the controller."""
        self.telemetry.instant(CONTROLLER, "osr_request", method=method_id)
        self.provenance.event(EventKind.OSR, method_id)
        self.controller.osr_request(method_id)

    # -- class loading -------------------------------------------------------------

    def _on_class_load(self, class_name: str) -> None:
        """Invalidate compiled code whose CHA devirtualization just broke.

        Loading a class can add dispatch targets to selectors; any
        installed code that unguardedly inlined the previously-unique
        target of such a selector must be discarded.  Pre-existence keeps
        in-flight activations safe; future invocations run baseline until
        the hot-method machinery recompiles against the new hierarchy.
        """
        dependencies = self.database.cha_dependencies()
        for root_id, per_selector in dependencies.items():
            for selector, target_id in per_selector.items():
                allowed = (frozenset((target_id,))
                           if isinstance(target_id, str) else target_id)
                targets = self.hierarchy.loaded_targets(selector)
                if targets and not targets <= allowed:
                    # Only a *successful* invalidation may drop the
                    # root's dependency records: when there is no
                    # installed code to discard (e.g. the compile is
                    # still in flight), clearing here would orphan the
                    # remaining selectors and leave a later class load
                    # unable to ever invalidate this method.
                    if self.code_cache.invalidate(
                            root_id, selector=selector,
                            loaded_class=class_name):
                        self.database.log_invalidation(
                            root_id, selector, self.machine.clock)
                        self.telemetry.instant(
                            CONTROLLER, "invalidation", method=root_id,
                            selector=selector, loaded_class=class_name)
                        self.database.clear_cha_dependencies(root_id)
                        # Deoptimized back to baseline: re-arm OSR so a
                        # still-hot loop can request recompilation.
                        self.machine.on_code_invalidated(root_id)
                    break

    # -- execution ---------------------------------------------------------------

    def run(self, args: Sequence[Value] = ()) -> RunResult:
        """Execute the program to completion; return the collected metrics."""
        self.machine.next_event = min(self._next_sample, self._next_organizer,
                                      self._next_decay)
        value = self.machine.run(args)
        # Flush whatever the listeners buffered after the last wake, so
        # post-run profile inspection (and the offline-rule experiments)
        # see every sample taken.
        with self.telemetry.span(AI_ORGANIZER, "dcg_organizer",
                                 trigger="final_flush"):
            self.dcg_organizer.run(self.machine, self.trace_listener)
        with self.telemetry.span(METHOD_ORGANIZER, "hot_methods_organizer",
                                 trigger="final_flush"):
            self.hot_methods_organizer.run(self.machine,
                                           self.method_listener,
                                           self.controller)
        if self.provenance.enabled:
            # Fold the derived provenance metrics (dilution ratio, guard
            # eliminations, refusal histogram) into telemetry gauges so
            # they land in snapshots and the Chrome-trace export.
            fold_into_telemetry(self.provenance.decisions, self.telemetry)
        return self._result(value)

    def _result(self, value: Value) -> RunResult:
        machine = self.machine
        cache = self.code_cache
        return RunResult(
            program_name=self.program.name,
            policy_name=self.policy.name,
            return_value=value,
            total_cycles=machine.clock,
            component_cycles=self.accounting.snapshot(),
            opt_code_bytes=cache.opt_code_bytes,
            live_opt_code_bytes=cache.live_opt_code_bytes(),
            opt_compilations=cache.opt_compilations,
            opt_compile_cycles=cache.opt_compile_cycles,
            opt_inlined_bytecodes=cache.opt_inlined_bytecodes,
            classes_loaded=len(self.program.classes),
            methods_compiled=cache.dynamically_compiled_methods,
            bytecodes_compiled=cache.dynamically_compiled_bytecodes,
            samples_taken=self.method_listener.samples_taken,
            traces_recorded=self.trace_listener.samples_taken,
            mean_trace_depth=self.trace_listener.mean_depth(),
            depth_histogram=dict(self.trace_listener.depth_histogram),
            dcg_traces=len(self.state.dcg),
            rule_count=len(self.state.rules),
            refusals=self.database.refusal_count,
            guard_tests=machine.stats.guard_tests,
            guard_misses=machine.stats.guard_misses,
            dispatches=machine.stats.dispatches,
            inline_entries=machine.stats.inline_entries,
            calls=machine.stats.calls,
            osr_transfers=machine.stats.osr_transfers,
            invalidations=self.database.invalidation_count,
            elided_entries=machine.stats.elided_entries,
            deopt_entries=machine.stats.deopt_entries,
            deopt_exits=machine.stats.deopt_exits,
            progress_points=(self.progress.summary()
                             if self.progress is not None else None),
            first_rule_clock=self.first_rule_clock,
            steady_state_clock=(self.database.compilations[-1].clock
                                if self.database.compilations else None),
            warm_started=self.warm_started,
        )
