"""Per-component cycle accounting for the adaptive optimization system.

Figure 6 of the paper reports the percentage of execution time spent in
each AOS component (listeners, organizers, controller, compilation thread).
Every cycle the simulation spends is attributed to exactly one of the
components below; ``APP`` covers the application itself (including dispatch
overhead and inline guards, which are application-visible costs).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

#: Component names, mirroring Figure 6's legend.
APP = "app"
LISTENERS = "aos_listeners"
COMPILATION = "compilation_thread"
DECAY_ORGANIZER = "decay_organizer"
AI_ORGANIZER = "ai_organizer"
METHOD_ORGANIZER = "method_sample_organizer"
CONTROLLER = "controller_thread"

AOS_COMPONENTS = (LISTENERS, COMPILATION, DECAY_ORGANIZER, AI_ORGANIZER,
                  METHOD_ORGANIZER, CONTROLLER)
ALL_COMPONENTS = (APP,) + AOS_COMPONENTS

#: The organizer threads plus the controller: everything that runs "in the
#: background" between samples.  The causal profiler treats these as one
#: virtually-speedable component.
ORGANIZERS = (DECAY_ORGANIZER, AI_ORGANIZER, METHOD_ORGANIZER, CONTROLLER)


def component_share(cycles: Mapping[str, float],
                    components: Sequence[str]) -> float:
    """Fraction of total cycles attributed to the given components.

    Operates on a persisted ``component_cycles`` snapshot (e.g.
    ``RunResult.component_cycles``), so reports can contrast a causal
    experiment's *measured* effect with the component's *accounted*
    share without re-running anything.
    """
    total = sum(cycles.values())
    if total == 0:
        return 0.0
    return sum(cycles.get(name, 0.0) for name in components) / total


class CostAccounting:
    """Accumulates cycles per component and answers Figure-6-style queries."""

    def __init__(self) -> None:
        self.cycles: Dict[str, float] = {name: 0.0 for name in ALL_COMPONENTS}

    def charge(self, component: str, cycles: float) -> None:
        self.cycles[component] += cycles

    @property
    def total(self) -> float:
        return sum(self.cycles.values())

    def fractions(self) -> Dict[str, float]:
        """Fraction of total execution time per component (sums to 1)."""
        total = self.total
        if total == 0:
            return {name: 0.0 for name in ALL_COMPONENTS}
        return {name: c / total for name, c in self.cycles.items()}

    def aos_fraction(self) -> float:
        """Fraction of execution time spent in all AOS components combined."""
        total = self.total
        if total == 0:
            return 0.0
        return sum(self.cycles[name] for name in AOS_COMPONENTS) / total

    def snapshot(self) -> Dict[str, float]:
        return dict(self.cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v:.0f}" for k, v in self.cycles.items() if v)
        return f"<CostAccounting {parts}>"
