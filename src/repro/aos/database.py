"""The AOS database: a central repository of compilation decisions/events.

Paper Section 3.2: the inlining system records refusals by the optimizing
compiler to inline particular call edges; the AI missing-edge organizer
consults these records to avoid recommending recompilation for an edge the
compiler has already declined.  The database also keeps a log of every
compilation event, which the experiment harness reads for its reports.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Set, Tuple


class CompilationEvent(NamedTuple):
    """One optimizing compilation, as logged by the compilation thread."""

    method_id: str
    version: int
    inlined_bytecodes: int
    code_bytes: int
    compile_cycles: float
    clock: float
    reason: str  # "hot" (controller model) or "missing_edge"


class AOSDatabase:
    """Recorded refusals and compilation history."""

    def __init__(self) -> None:
        self._refusals: Set[Tuple[str, int, str]] = set()
        self._refusal_reasons: Dict[Tuple[str, int, str], str] = {}
        self.compilations: List[CompilationEvent] = []
        # CHA dependencies: root method id -> {selector: allowed target
        # id(s)} -- a plain string for the loaded-sole case, a frozenset
        # for an exhaustive guard set.  Compiled code that speculated on
        # loaded-world CHA is only valid while every loaded target of
        # the selector stays within the allowed set.
        self._cha_dependencies: Dict[str, Dict[str, object]] = {}
        self.invalidations: List[Tuple[str, str, float]] = []

    # -- refusals ---------------------------------------------------------------

    def record_refusal(self, caller_id: str, site: int, callee_id: str,
                       reason: str) -> None:
        key = (caller_id, site, callee_id)
        self._refusals.add(key)
        self._refusal_reasons[key] = reason

    def was_refused(self, caller_id: str, site: int, callee_id: str) -> bool:
        return (caller_id, site, callee_id) in self._refusals

    def refusal_reason(self, caller_id: str, site: int,
                       callee_id: str) -> Optional[str]:
        return self._refusal_reasons.get((caller_id, site, callee_id))

    @property
    def refusal_count(self) -> int:
        return len(self._refusals)

    # -- CHA dependencies ---------------------------------------------------------

    def record_cha_dependency(self, root_id: str, selector: str,
                              target_id) -> None:
        """Record that ``root_id``'s code assumes ``selector`` only
        dispatches into ``target_id`` -- a sole target id, or an
        iterable of ids for a guard set proved exhaustive over the
        loaded world.  Re-recording the same selector intersects the
        allowed sets: every recorded assumption must keep holding.
        """
        allowed = (frozenset((target_id,)) if isinstance(target_id, str)
                   else frozenset(target_id))
        per_root = self._cha_dependencies.setdefault(root_id, {})
        existing = per_root.get(selector)
        if existing is not None:
            previous = (frozenset((existing,))
                        if isinstance(existing, str) else existing)
            allowed &= previous
        # Singletons stay plain strings (the common loaded-sole case).
        per_root[selector] = (next(iter(allowed)) if len(allowed) == 1
                              else allowed)

    def cha_dependencies(self) -> Dict[str, Dict[str, object]]:
        return {root: dict(deps)
                for root, deps in self._cha_dependencies.items()}

    def clear_cha_dependencies(self, root_id: str) -> None:
        self._cha_dependencies.pop(root_id, None)

    def log_invalidation(self, root_id: str, selector: str,
                         clock: float) -> None:
        self.invalidations.append((root_id, selector, clock))

    @property
    def invalidation_count(self) -> int:
        return len(self.invalidations)

    # -- compilation log ----------------------------------------------------------

    def log_compilation(self, event: CompilationEvent) -> None:
        self.compilations.append(event)

    def compilations_of(self, method_id: str) -> List[CompilationEvent]:
        return [e for e in self.compilations if e.method_id == method_id]

    def version_count(self, method_id: str) -> int:
        return len(self.compilations_of(method_id))
