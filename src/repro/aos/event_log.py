"""Optional structured log of adaptive-optimization events.

Jikes RVM's AOS can emit a log of its decisions; reconstructing *why* the
online system did what it did (why was this method recompiled four times?
when did that rule first appear?) is otherwise archaeology.  This module
provides the same facility for the simulation: attach an
:class:`EventLog` to an :class:`~repro.aos.runtime.AdaptiveRuntime` and
every noteworthy event is recorded with its cycle timestamp.

The event-kind vocabulary is shared with the decision-provenance layer:
the module-level constants below are the values of
:class:`repro.provenance.reasons.EventKind`, so the two logs cannot
drift apart.  ``detail`` payloads may be plain strings (legacy) or
structured dicts; rendering flattens dicts to ``key=value`` text.

The log is pure instrumentation: it charges no cycles and changes no
decisions, so logged and unlogged runs are cycle-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

from repro.metrics.report import format_table
from repro.provenance.reasons import EventKind

#: Event kinds, in the vocabulary of the paper's Figure 3 -- derived from
#: the shared :class:`EventKind` enum (single source of truth with the
#: provenance recorder's event records).
COMPILE = EventKind.COMPILE.value
RULE_ADDED = EventKind.RULE_ADDED.value
RULE_RETIRED = EventKind.RULE_RETIRED.value
INVALIDATE = EventKind.INVALIDATE.value
OSR = EventKind.OSR.value
DECAY = EventKind.DECAY.value

#: Every kind this log accepts (the full shared vocabulary, so events
#: forwarded from the provenance layer validate too).
EVENT_KINDS = tuple(kind.value for kind in EventKind)

#: A detail payload: legacy free-form text or a structured mapping.
Detail = Union[str, Mapping[str, object]]


def format_detail(detail: Detail) -> str:
    """Flatten a detail payload to display text (dicts -> ``k=v`` pairs)."""
    if isinstance(detail, str):
        return detail
    return " ".join(f"{key}={value}" for key, value in detail.items())


@dataclass(frozen=True)
class Event:
    """One logged AOS event."""

    clock: float
    kind: str
    subject: str        # method id, trace description, ...
    detail: Detail = ""  # free-form text or a structured dict

    @property
    def detail_text(self) -> str:
        """The detail payload as display text, whatever its shape."""
        return format_detail(self.detail)


class EventLog:
    """An append-only event log with simple query and rendering helpers."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    # -- recording ---------------------------------------------------------------

    def record(self, clock: float, kind: str, subject: str,
               detail: Detail = "") -> None:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        if not isinstance(detail, str):
            detail = dict(detail)
        self.events.append(Event(clock, kind, subject, detail))

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def about(self, subject: str) -> List[Event]:
        return [e for e in self.events if e.subject == subject]

    def between(self, start: float, end: float) -> List[Event]:
        return [e for e in self.events if start <= e.clock < end]

    def counts(self) -> Dict[str, int]:
        out = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            out[event.kind] += 1
        return out

    # -- rendering -----------------------------------------------------------------

    def render_timeline(self, limit: Optional[int] = None) -> str:
        """A chronological table of events (optionally the first N)."""
        events = self.events if limit is None else self.events[:limit]
        rows = [[f"{e.clock:,.0f}", e.kind, e.subject, e.detail_text]
                for e in events]
        return format_table(["cycle", "event", "subject", "detail"], rows,
                            title=f"AOS event timeline ({len(self.events)} "
                                  f"events)")

    def render_summary(self) -> str:
        rows = [[kind, str(count)]
                for kind, count in self.counts().items() if count]
        return format_table(["event", "count"], rows,
                            title="AOS event summary")


class LoggingHooks:
    """Glue attaching an :class:`EventLog` to a runtime's components.

    The runtime calls :meth:`install` once; the hooks wrap the few
    extension points that already exist (database logging callbacks, the
    AI organizer's rule set) without changing any behaviour.
    """

    def __init__(self, log: EventLog):
        self.log = log
        self._known_rules: set = set()

    def install(self, runtime) -> None:
        log = self.log
        database = runtime.database
        machine = runtime.machine

        original_log_compilation = database.log_compilation

        def log_compilation(event):
            original_log_compilation(event)
            log.record(event.clock, COMPILE, event.method_id,
                       {"version": f"v{event.version}",
                        "reason": event.reason,
                        "inlined_bc": event.inlined_bytecodes})

        database.log_compilation = log_compilation

        original_log_invalidation = database.log_invalidation

        def log_invalidation(root_id, selector, clock):
            original_log_invalidation(root_id, selector, clock)
            log.record(clock, INVALIDATE, root_id, {"selector": selector})

        database.log_invalidation = log_invalidation

        original_osr = machine.osr_handler

        def osr_handler(method_id):
            log.record(machine.clock, OSR, method_id,
                       {"trigger": "backedge threshold"})
            if original_osr is not None:
                original_osr(method_id)

        machine.osr_handler = osr_handler

        ai_organizer = runtime.ai_organizer
        original_ai_run = ai_organizer.run
        hooks = self

        def ai_run(machine_):
            rules = original_ai_run(machine_)
            current = {(r.key.callee, r.key.context) for r in rules}
            for key in current - hooks._known_rules:
                log.record(machine_.clock, RULE_ADDED,
                           f"{key[1][0][0]}@{key[1][0][1]}=>{key[0]}")
            for key in hooks._known_rules - current:
                log.record(machine_.clock, RULE_RETIRED,
                           f"{key[1][0][0]}@{key[1][0][1]}=>{key[0]}")
            hooks._known_rules = current
            return rules

        ai_organizer.run = ai_run

        decay_organizer = runtime.decay_organizer
        original_decay_run = decay_organizer.run

        def decay_run(machine_):
            original_decay_run(machine_)
            log.record(machine_.clock, DECAY, "dcg",
                       {"total": f"{runtime.state.dcg.total_weight:.0f}"})

        decay_organizer.run = decay_run


def attach_event_log(runtime) -> EventLog:
    """Create an :class:`EventLog`, hook it into ``runtime``, return it."""
    log = EventLog()
    LoggingHooks(log).install(runtime)
    return log
