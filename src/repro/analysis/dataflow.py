"""Speculation-risk static analysis: dataflow framework and clients.

Speculative inlining pays two blind costs: every guarded inline executes
its guard chain forever, and every loaded-world CHA bind carries an
unquantified invalidation risk.  This module supplies the static
machinery to spend those costs deliberately:

* :class:`ForwardAnalysis` / :class:`BackwardAnalysis` -- a small
  intraprocedural monotone dataflow framework over the statement
  bytecode (``Work``/``Let``/``New``/``If``/``Loop``/calls), one engine
  per direction over a shared lattice interface and a shared per-kind
  transfer registry (:data:`TRANSFER_REGISTRY`).  Branches are analyzed
  independently and joined; loops iterate to a fixpoint.  Facts
  recorded at call sites are accumulated with the client's join, so the
  recorded value equals the fixpoint value.  The backward engine hosts
  the live-variable client in :mod:`repro.analysis.liveness`.

* :class:`PreexistenceAnalysis` -- forward reaching-receiver facts in
  the Detlefs & Agesen invariant-argument style.  The abstract value of
  an expression is ``None`` ("may be allocated during the current
  activation") or a frozenset of parameter indices ("preexists the
  activation provided those parameters do").  A receiver that preexists
  the activation of the *compilation root* was allocated -- and hence
  had its class loaded -- before the compiled code could be entered, so
  a loaded-world CHA assumption about it can only be broken by a class
  load that also invalidates the compiled method before its next entry.
  Such receivers need no guard: invalidation alone protects them.

* :class:`AvailableGuardAnalysis` -- must-availability of guard tests:
  the set of ``(site, selector, receiver-tag)`` facts whose guard has
  executed on *every* path reaching a program point, with facts killed
  when their receiver local is reassigned.  Must-availability on a
  structured statement tree is exactly dominance of the guard site over
  the elision site, which is what makes reusing the dominating guard's
  outcome sound.

* Invalidation cones and churn-weighted risk -- per speculative
  assumption ``(selector, target)``, the set of declared-but-unloaded
  classes whose loading would break the assumption, weighted by a
  static allocation-frequency estimate of how likely each class is to
  load.  The risk score lets the oracle choose guard vs guard-free vs
  refuse (``speculation_elide_max_risk`` / ``speculation_refuse_min_risk``).

:class:`SpeculationAnalysis` is the facade the compiler and oracle hold:
per-method summaries are computed once and cached (method bodies are
immutable), and cone/risk results are cached keyed on the hierarchy's
load generation.

Layering: this module depends only on :mod:`repro.jvm`; the compiler
and oracle receive a ``SpeculationAnalysis`` instance by injection and
never import this module.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.jvm.costs import CostModel, DEFAULT_COSTS
from repro.jvm.errors import ExecutionError
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (
    E_ARG, E_CONST, E_LOCAL, E_PICK,
    S_IF, S_INTERFACE_CALL, S_LET, S_LOOP, S_NEW, S_NEWPOOL, S_RETURN,
    S_STATIC_CALL, S_VIRTUAL_CALL, S_WORK,
    Expr, MethodDef, Program, Stmt,
)

__all__ = [
    "DataflowAnalysis", "ForwardAnalysis", "BackwardAnalysis",
    "TRANSFER_REGISTRY",
    "PreexistenceAnalysis", "AvailableGuardAnalysis",
    "CallFacts", "MethodSummary", "SpeculationAnalysis",
    "SpeculationVerdict", "ACTION_ELIDE", "ACTION_GUARD", "ACTION_REFUSE",
    "NOT_PRE", "ALWAYS_PRE", "join_pre", "static_speculation_summary",
]

# ---------------------------------------------------------------------------
# The framework
# ---------------------------------------------------------------------------

#: Shared transfer-function registry: straight-line statement kind ->
#: handler method name.  Both dataflow directions dispatch through this
#: one table; a client implements only the handlers whose kinds touch
#: its lattice (a missing handler is the identity transfer) instead of
#: re-walking ``stmt.kind`` if-chains per client.  The two allocation
#: kinds share a handler, as do the two dispatched-call kinds -- no
#: client has ever distinguished within those groups.
TRANSFER_REGISTRY = {
    S_WORK: "transfer_work",
    S_LET: "transfer_let",
    S_NEW: "transfer_alloc",
    S_NEWPOOL: "transfer_alloc",
    S_STATIC_CALL: "transfer_static_call",
    S_VIRTUAL_CALL: "transfer_dispatch",
    S_INTERFACE_CALL: "transfer_dispatch",
    S_RETURN: "transfer_return",
}


class DataflowAnalysis:
    """Lattice interface and transfer dispatch shared by both directions.

    Subclasses of the two engine classes define the lattice
    (``initial_state`` / ``copy_state`` / ``join_states`` /
    ``states_equal``) plus per-kind transfer handlers named by
    :data:`TRANSFER_REGISTRY`, and a ``visit`` hook that observes the
    per-statement state (used to record per-site facts).
    """

    def analyze(self, method: MethodDef):
        raise NotImplementedError

    # -- client interface --------------------------------------------------

    def initial_state(self, method: MethodDef):
        raise NotImplementedError

    def copy_state(self, state):
        raise NotImplementedError

    def join_states(self, left, right):
        raise NotImplementedError

    def states_equal(self, left, right) -> bool:
        raise NotImplementedError

    def transfer(self, stmt: Stmt, state):
        """Apply a non-control statement's effect; return the new state.

        Dispatches through :data:`TRANSFER_REGISTRY`; kinds without a
        handler on the client leave the state unchanged.
        """
        handler = getattr(self, TRANSFER_REGISTRY[stmt.kind], None)
        if handler is None:
            return state
        return handler(stmt, state)

    def transfer_loop_index(self, index_local: int, state):
        """Model the loop induction variable's per-iteration assignment."""
        raise NotImplementedError

    def visit(self, stmt: Stmt, state) -> None:
        """Observe the per-statement state (direction-dependent: the
        state flowing *into* the statement in execution order)."""


class ForwardAnalysis(DataflowAnalysis):
    """Forward monotone dataflow over a structured statement body.

    ``If`` analyzes both branches from copies of the incoming state and
    joins the exits.  ``Loop`` iterates its body until the joined state
    stabilizes; because ``visit`` accumulates recorded facts with the
    client's own join, the value recorded for a statement inside a loop
    converges to the fixpoint value.  Termination needs a finite-height
    lattice, which all clients below have.
    """

    def analyze(self, method: MethodDef):
        state = self.initial_state(method)
        return self._run_body(method.body, state)

    # -- driver ------------------------------------------------------------

    def _run_body(self, body: Sequence[Stmt], state):
        for stmt in body:
            state = self._run_stmt(stmt, state)
        return state

    def _run_stmt(self, stmt: Stmt, state):
        kind = stmt.kind
        if kind == S_IF:
            self.visit(stmt, state)
            then_state = self._run_body(stmt.then_body,
                                        self.copy_state(state))
            else_state = self._run_body(stmt.else_body,
                                        self.copy_state(state))
            return self.join_states(then_state, else_state)
        if kind == S_LOOP:
            self.visit(stmt, state)
            # state accumulates loop-entry joined with every body exit;
            # the loop may run zero times, so the entry state survives.
            while True:
                body_state = self.copy_state(state)
                self.transfer_loop_index(stmt.index_local, body_state)
                body_state = self._run_body(stmt.body, body_state)
                merged = self.join_states(state, body_state)
                if self.states_equal(merged, state):
                    return merged
                state = merged
        self.visit(stmt, state)
        return self.transfer(stmt, state)


class BackwardAnalysis(DataflowAnalysis):
    """Backward monotone dataflow over a structured statement body.

    Statements are processed in reverse execution order: ``analyze``
    starts from the client's ``initial_state`` at method exit and
    returns the state at method entry.  ``If`` analyzes both branches
    from copies of the after-statement state and joins the branch
    entries.  ``Loop`` iterates its body to a fixpoint so facts carried
    across the back edge (e.g. loop-carried liveness) are captured: the
    after-body state joins the after-loop state because an iteration is
    followed by either another iteration or the loop exit, and the
    zero-trip case keeps the after-loop state in the join.

    Two extra client hooks cover the control expressions the registry
    cannot see -- ``transfer_branch`` (an ``If`` condition) and
    ``transfer_loop_count`` (a ``Loop`` trip-count expression), both
    identity by default -- and ``visit_loop`` observes the loop-header
    fixpoint state itself: the facts holding at the back edge, which is
    exactly what an OSR entry point must reconstruct.

    ``visit`` observes the state *before* each statement in execution
    order (the same program point the forward engine's ``visit`` sees,
    reached from the other side).  Inside loops both ``visit`` hooks
    fire once per fixpoint iteration with monotonically growing (under
    the client's join) states, so clients accumulate with their join
    and the recorded value converges to the fixpoint value.
    """

    def analyze(self, method: MethodDef):
        state = self.initial_state(method)
        return self._run_body(method.body, state)

    # -- extra client hooks ------------------------------------------------

    def transfer_branch(self, stmt: Stmt, state):
        """Apply an ``If`` condition's effect (identity by default)."""
        return state

    def transfer_loop_count(self, stmt: Stmt, state):
        """Apply a ``Loop`` trip-count expression's effect (identity)."""
        return state

    def visit_loop(self, stmt: Stmt, state) -> None:
        """Observe a loop's fixpoint back-edge state (the OSR-entry
        facts), before the trip-count expression's own effect."""

    # -- driver ------------------------------------------------------------

    def _run_body(self, body: Sequence[Stmt], state):
        for stmt in reversed(body):
            state = self._run_stmt(stmt, state)
        return state

    def _run_stmt(self, stmt: Stmt, state):
        kind = stmt.kind
        if kind == S_IF:
            then_state = self._run_body(stmt.then_body,
                                        self.copy_state(state))
            else_state = self._run_body(stmt.else_body,
                                        self.copy_state(state))
            state = self.join_states(then_state, else_state)
            state = self.transfer_branch(stmt, state)
            self.visit(stmt, state)
            return state
        if kind == S_LOOP:
            # state accumulates the after-loop state joined with every
            # body-entry state; the induction variable is assigned at
            # the head of every iteration, so its per-iteration kill is
            # applied to the body state before the join.
            while True:
                body_state = self._run_body(stmt.body,
                                            self.copy_state(state))
                self.transfer_loop_index(stmt.index_local, body_state)
                merged = self.join_states(state, body_state)
                if self.states_equal(merged, state):
                    break
                state = merged
            self.visit_loop(stmt, state)
            state = self.transfer_loop_count(stmt, state)
            self.visit(stmt, state)
            return state
        state = self.transfer(stmt, state)
        self.visit(stmt, state)
        return state


# ---------------------------------------------------------------------------
# Client 1: receiver preexistence
# ---------------------------------------------------------------------------

#: Abstract preexistence value: ``None`` means "may have been allocated
#: during the current activation"; a frozenset of parameter indices
#: means "preexists provided each of those parameters preexists" (the
#: empty set is unconditional preexistence, e.g. constants).
PreFact = Optional[FrozenSet[int]]

NOT_PRE: PreFact = None
ALWAYS_PRE: PreFact = frozenset()


def join_pre(left: PreFact, right: PreFact) -> PreFact:
    """Join two preexistence facts (``None`` absorbs)."""
    if left is None or right is None:
        return None
    return left | right


class CallFacts:
    """Preexistence facts reaching one call site.

    ``receiver`` is ``None``-able twice over: static calls have no
    receiver (``receiver is None`` and ``selector is None``), and a
    virtual receiver that does not preexist carries :data:`NOT_PRE`.
    ``args`` are the explicit argument facts in order.
    """

    __slots__ = ("site", "selector", "receiver", "args")

    def __init__(self, site: int, selector: Optional[str],
                 receiver: PreFact, args: Tuple[PreFact, ...]):
        self.site = site
        self.selector = selector
        self.receiver = receiver
        self.args = args

    def merge(self, receiver: PreFact, args: Tuple[PreFact, ...]) -> None:
        self.receiver = join_pre(self.receiver, receiver) \
            if self.selector is not None else None
        self.args = tuple(join_pre(a, b) for a, b in zip(self.args, args))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CallFacts site={self.site} recv={self.receiver!r} "
                f"args={self.args!r}>")


class PreexistenceAnalysis(ForwardAnalysis):
    """Forward preexistence facts for every local, recorded at call sites.

    The state is one :data:`PreFact` per local slot.  Parameters are the
    base facts (``Arg(i)`` preexists iff parameter ``i`` does); ``New``,
    ``NewPool`` and call results are allocated during the activation and
    never preexist; ``Pick`` from a preexistent pool yields a
    preexistent element; arithmetic joins its operands.
    """

    def __init__(self):
        self.call_facts: Dict[int, CallFacts] = {}

    def initial_state(self, method: MethodDef) -> List[PreFact]:
        # Unassigned locals hold the integer 0 -- a constant, which can
        # never be the receiver of a successful dispatch.
        return [ALWAYS_PRE] * max(method.num_locals, 1)

    def copy_state(self, state: List[PreFact]) -> List[PreFact]:
        return list(state)

    def join_states(self, left: List[PreFact],
                    right: List[PreFact]) -> List[PreFact]:
        return [join_pre(a, b) for a, b in zip(left, right)]

    def states_equal(self, left: List[PreFact],
                     right: List[PreFact]) -> bool:
        return left == right

    def eval_expr(self, expr: Expr, state: List[PreFact]) -> PreFact:
        kind = expr.kind
        if kind == E_CONST:
            return ALWAYS_PRE
        if kind == E_ARG:
            return frozenset((expr.index,))
        if kind == E_LOCAL:
            if expr.index < len(state):
                return state[expr.index]
            return NOT_PRE
        if kind == E_PICK:
            # A pool element preexists whenever the pool does; the index
            # is an integer and cannot affect object identity provenance.
            return self.eval_expr(expr.pool, state)
        # Binary arithmetic: integer-valued, but join operands so the
        # lattice stays monotone even for exotic programs.
        return join_pre(self.eval_expr(expr.left, state),
                        self.eval_expr(expr.right, state))

    def transfer_let(self, stmt: Stmt,
                     state: List[PreFact]) -> List[PreFact]:
        if stmt.dst < len(state):
            state[stmt.dst] = self.eval_expr(stmt.expr, state)
        return state

    def transfer_alloc(self, stmt: Stmt,
                       state: List[PreFact]) -> List[PreFact]:
        # Allocated during this activation: by definition not
        # preexistent (its class may have loaded mid-activation).
        if stmt.dst < len(state):
            state[stmt.dst] = NOT_PRE
        return state

    def transfer_static_call(self, stmt: Stmt,
                             state: List[PreFact]) -> List[PreFact]:
        if stmt.dst is not None and stmt.dst < len(state):
            state[stmt.dst] = NOT_PRE
        return state

    # Dispatched-call results are just as freshly produced.
    transfer_dispatch = transfer_static_call

    def transfer_loop_index(self, index_local: int,
                            state: List[PreFact]) -> None:
        if index_local < len(state):
            state[index_local] = ALWAYS_PRE

    def visit(self, stmt: Stmt, state: List[PreFact]) -> None:
        kind = stmt.kind
        if kind in (S_VIRTUAL_CALL, S_INTERFACE_CALL):
            receiver = self.eval_expr(stmt.receiver, state)
            args = tuple(self.eval_expr(a, state) for a in stmt.args)
            selector = stmt.selector
        elif kind == S_STATIC_CALL:
            receiver = None
            args = tuple(self.eval_expr(a, state) for a in stmt.args)
            selector = None
        else:
            return
        existing = self.call_facts.get(stmt.site)
        if existing is None:
            self.call_facts[stmt.site] = CallFacts(stmt.site, selector,
                                                   receiver, args)
        else:
            existing.merge(receiver, args)


# ---------------------------------------------------------------------------
# Client 2: must-available guards (dominance)
# ---------------------------------------------------------------------------

#: Receiver tags identify "the same value" syntactically: a parameter
#: (never reassigned) or a local (facts killed on reassignment).
ReceiverTag = Tuple


def receiver_tag(expr: Expr) -> Optional[ReceiverTag]:
    """Stable identity tag for a receiver expression, or ``None``."""
    if expr.kind == E_ARG:
        return ("arg", expr.index)
    if expr.kind == E_LOCAL:
        return ("local", expr.index)
    return None


class AvailableGuardAnalysis(ForwardAnalysis):
    """Must-availability of virtual-site guard evaluations.

    A fact ``(site, selector, tag)`` is in the state when the dispatch
    at ``site`` -- and hence any guard compiled there -- has executed on
    every path reaching the current point with the receiver named by
    ``tag`` still holding the same value.  Facts on ``('local', i)`` die
    when local ``i`` is reassigned; ``('arg', i)`` facts are immortal
    (parameters have no assignment form).  Join is set intersection, so
    an available fact's site dominates the current point within the
    method body.
    """

    def __init__(self):
        #: site -> facts available on entry to the site (fixpoint).
        self.available: Dict[int, FrozenSet[Tuple]] = {}
        #: site -> this site's own receiver tag (or None).
        self.receiver_tags: Dict[int, Optional[ReceiverTag]] = {}

    def initial_state(self, method: MethodDef) -> set:
        return set()

    def copy_state(self, state: set) -> set:
        return set(state)

    def join_states(self, left: set, right: set) -> set:
        return left & right

    def states_equal(self, left: set, right: set) -> bool:
        return left == right

    def _kill_local(self, state: set, index: int) -> None:
        dead = [fact for fact in state if fact[2] == ("local", index)]
        for fact in dead:
            state.discard(fact)

    def transfer_let(self, stmt: Stmt, state: set) -> set:
        self._kill_local(state, stmt.dst)
        return state

    # Allocations overwrite their destination local the same way.
    transfer_alloc = transfer_let

    def transfer_static_call(self, stmt: Stmt, state: set) -> set:
        if stmt.dst is not None:
            self._kill_local(state, stmt.dst)
        return state

    def transfer_dispatch(self, stmt: Stmt, state: set) -> set:
        tag = receiver_tag(stmt.receiver)
        if tag is not None:
            state.add((stmt.site, stmt.selector, tag))
        if stmt.dst is not None:
            self._kill_local(state, stmt.dst)
        return state

    def transfer_loop_index(self, index_local: int, state: set) -> None:
        self._kill_local(state, index_local)

    def visit(self, stmt: Stmt, state: set) -> None:
        if stmt.kind not in (S_VIRTUAL_CALL, S_INTERFACE_CALL):
            return
        self.receiver_tags[stmt.site] = receiver_tag(stmt.receiver)
        snapshot = frozenset(state)
        existing = self.available.get(stmt.site)
        if existing is None:
            self.available[stmt.site] = snapshot
        else:
            # Must-facts shrink across loop iterations; intersecting
            # every visit converges on the fixpoint availability.
            self.available[stmt.site] = existing & snapshot


# ---------------------------------------------------------------------------
# Per-method summaries and the facade
# ---------------------------------------------------------------------------


class MethodSummary:
    """Cached dataflow results for one (immutable) method body."""

    __slots__ = ("method_id", "call_facts", "available", "receiver_tags")

    def __init__(self, method_id: str, call_facts: Dict[int, CallFacts],
                 available: Dict[int, Tuple], receiver_tags: Dict):
        self.method_id = method_id
        self.call_facts = call_facts
        self.available = available
        self.receiver_tags = receiver_tags


#: Loop-nesting frequency multiplier for the static allocation-churn
#: estimate (same convention as the static call graph's frequencies).
LOOP_FREQ = 10.0
_MAX_LOOP_DEPTH = 6

#: Cone/risk cache entries kept before the cache resets.
_CONE_CACHE_LIMIT = 4096

ACTION_ELIDE = "elide"
ACTION_GUARD = "guard"
ACTION_REFUSE = "refuse"


class SpeculationVerdict:
    """What the risk analysis recommends for one speculative inline."""

    __slots__ = ("action", "risk", "cone_size")

    def __init__(self, action: str, risk: float, cone_size: int):
        self.action = action
        self.risk = risk
        self.cone_size = cone_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SpeculationVerdict {self.action} risk={self.risk:.3f} "
                f"cone={self.cone_size}>")


class SpeculationAnalysis:
    """Facade over the dataflow clients, held by the oracle and compiler.

    One instance serves one ``(program, hierarchy)`` pair for the life
    of a run.  Method summaries are immutable and cached forever;
    cone/risk results are cached keyed on the hierarchy's load
    generation so class loads invalidate them implicitly.
    """

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 costs: CostModel = DEFAULT_COSTS):
        self._program = program
        self._hierarchy = hierarchy
        self._costs = costs
        self._summaries: Dict[str, MethodSummary] = {}
        self._cone_cache: Dict[Tuple, Tuple[Tuple[str, ...], float]] = {}
        self._churn: Optional[Dict[str, float]] = None

    # -- summaries ---------------------------------------------------------

    def summary(self, method: MethodDef) -> MethodSummary:
        cached = self._summaries.get(method.id)
        if cached is not None:
            return cached
        pre = PreexistenceAnalysis()
        pre.analyze(method)
        avail = AvailableGuardAnalysis()
        avail.analyze(method)
        ordered_avail = {
            site: tuple(sorted(facts))
            for site, facts in avail.available.items()
        }
        built = MethodSummary(method.id, pre.call_facts, ordered_avail,
                              avail.receiver_tags)
        self._summaries[method.id] = built
        return built

    def summary_for(self, method_id: str) -> MethodSummary:
        return self.summary(self._program.method(method_id))

    # -- preexistence through the compilation context ----------------------

    @staticmethod
    def _resolve_fact(fact: PreFact, vector: Tuple[bool, ...]) -> bool:
        if fact is None:
            return False
        return all(index < len(vector) and vector[index] for index in fact)

    def receiver_preexists(self, stmt: Stmt,
                           comp_context: Sequence[Tuple[str, int]]) -> bool:
        """Does ``stmt``'s receiver preexist the compilation root's
        activation?

        ``comp_context`` is the compiler's inline chain, innermost
        first: ``(method_id, site)`` pairs ending at the root.  The walk
        starts at the root with every parameter preexistent (arguments
        to the root activation were produced by its caller, hence
        allocated before the activation began -- the classic
        preexistence base case) and propagates per-parameter facts down
        each inlined call edge.
        """
        frames = tuple(reversed(tuple(comp_context)))
        if not frames:
            return False
        try:
            root = self._program.method(frames[0][0])
        except Exception:
            return False
        vector: Tuple[bool, ...] = (True,) * root.num_params
        for method_id, site in frames[:-1]:
            facts = self.summary_for(method_id).call_facts.get(site)
            if facts is None:
                return False
            if facts.selector is None:
                # Static call: arguments map to parameters positionally
                # (conduit-style calls pass an explicit receiver first).
                param_facts: Tuple[PreFact, ...] = facts.args
            else:
                # Virtual dispatch: the receiver becomes parameter 0.
                param_facts = (facts.receiver,) + facts.args
            vector = tuple(self._resolve_fact(fact, vector)
                           for fact in param_facts)
        leaf_method, leaf_site = frames[-1]
        facts = self.summary_for(leaf_method).call_facts.get(leaf_site)
        if facts is None or facts.selector is None:
            return False
        if stmt.site != leaf_site:
            return False
        return self._resolve_fact(facts.receiver, vector)

    # -- invalidation cones and churn-weighted risk ------------------------

    def _allocation_churn(self) -> Dict[str, float]:
        """Static allocation-frequency estimate per class.

        Each ``New``/``NewPool`` site contributes ``LOOP_FREQ`` to the
        power of its loop-nesting depth; a class's weight predicts how
        soon it will be instantiated -- i.e. loaded -- relative to the
        others.  Classes with no allocation site can never load.
        """
        if self._churn is not None:
            return self._churn
        weights: Dict[str, float] = {}

        def walk(body: Sequence[Stmt], depth: int) -> None:
            freq = LOOP_FREQ ** min(depth, _MAX_LOOP_DEPTH)
            for stmt in body:
                kind = stmt.kind
                if kind == S_NEW:
                    weights[stmt.class_name] = \
                        weights.get(stmt.class_name, 0.0) + freq
                elif kind == S_NEWPOOL:
                    for class_name in stmt.class_names:
                        weights[class_name] = \
                            weights.get(class_name, 0.0) + freq
                elif kind == S_IF:
                    walk(stmt.then_body, depth)
                    walk(stmt.else_body, depth)
                elif kind == S_LOOP:
                    walk(stmt.body, depth + 1)

        for method in self._program.methods():
            walk(method.body, 0)
        self._churn = weights
        return weights

    def _breaks_assumption(self, class_name: str, selector: str,
                           target: MethodDef) -> bool:
        try:
            return self._hierarchy.resolve(class_name, selector) \
                is not target
        except ExecutionError:
            return False  # selector not understood: load cannot break it

    def _escapes_targets(self, class_name: str, selector: str,
                         target_ids: FrozenSet[str]) -> bool:
        try:
            resolved = self._hierarchy.resolve(class_name, selector)
        except ExecutionError:
            return False  # selector not understood: load cannot break it
        return resolved.id not in target_ids

    def assumption_risk(self, selector: str,
                        target: MethodDef) -> Tuple[Tuple[str, ...], float]:
        """Invalidation cone and churn-weighted risk for one assumption.

        The *cone* is every declared-but-unloaded, allocatable class
        whose loading would widen ``loaded_targets(selector)`` past
        ``target`` -- i.e. would invalidate code compiled against the
        loaded-sole assumption.  The *risk* is the cone's share of all
        predicted future class-loading churn, in ``[0, 1]``: 0 when no
        remaining load can break the assumption, 1 when every remaining
        load would.
        """
        key = (self._hierarchy.generation, selector, target.id)
        cached = self._cone_cache.get(key)
        if cached is not None:
            return cached
        churn = self._allocation_churn()
        hierarchy = self._hierarchy
        cone = tuple(sorted(
            class_name for class_name, weight in churn.items()
            if weight > 0.0
            and not hierarchy.is_loaded(class_name)
            and self._breaks_assumption(class_name, selector, target)))
        unloaded_weight = sum(
            weight for class_name, weight in churn.items()
            if not hierarchy.is_loaded(class_name))
        if unloaded_weight > 0.0:
            cone_weight = sum(churn[class_name] for class_name in cone)
            risk = cone_weight / unloaded_weight
        else:
            risk = 0.0
        if len(self._cone_cache) >= _CONE_CACHE_LIMIT:
            self._cone_cache.clear()
        self._cone_cache[key] = (cone, risk)
        return cone, risk

    # -- the oracle's entry point ------------------------------------------

    def speculate(self, stmt: Stmt, comp_context: Sequence[Tuple[str, int]],
                  target: MethodDef) -> SpeculationVerdict:
        """Recommend guard-free, guarded, or refused for one speculative
        loaded-sole inline of ``target`` at ``stmt``."""
        cone, risk = self.assumption_risk(stmt.selector, target)
        if risk > self._costs.speculation_refuse_min_risk:
            return SpeculationVerdict(ACTION_REFUSE, risk, len(cone))
        if (risk <= self._costs.speculation_elide_max_risk
                and self.receiver_preexists(stmt, comp_context)):
            return SpeculationVerdict(ACTION_ELIDE, risk, len(cone))
        return SpeculationVerdict(ACTION_GUARD, risk, len(cone))

    def exhaustive_risk(self, selector: str,
                        targets: Sequence[MethodDef]) \
            -> Tuple[Tuple[str, ...], float]:
        """Cone and risk for the assumption "every receiver of
        ``selector`` resolves into ``targets``".

        The cone is every declared-but-unloaded, allocatable class whose
        loading would let a receiver resolve ``selector`` outside the
        target set.  An empty cone (with the loaded world already
        covered) means the set is exhaustive for any receiver the
        program can ever produce.
        """
        target_ids = frozenset(target.id for target in targets)
        key = (self._hierarchy.generation, selector,
               tuple(sorted(target_ids)))
        cached = self._cone_cache.get(key)
        if cached is not None:
            return cached
        churn = self._allocation_churn()
        hierarchy = self._hierarchy
        cone = tuple(sorted(
            class_name for class_name, weight in churn.items()
            if weight > 0.0
            and not hierarchy.is_loaded(class_name)
            and self._escapes_targets(class_name, selector, target_ids)))
        unloaded_weight = sum(
            weight for class_name, weight in churn.items()
            if not hierarchy.is_loaded(class_name))
        if unloaded_weight > 0.0:
            cone_weight = sum(churn[class_name] for class_name in cone)
            risk = cone_weight / unloaded_weight
        else:
            risk = 0.0
        if len(self._cone_cache) >= _CONE_CACHE_LIMIT:
            self._cone_cache.clear()
        self._cone_cache[key] = (cone, risk)
        return cone, risk

    def speculate_exhaustive(self, stmt: Stmt,
                             comp_context: Sequence[Tuple[str, int]],
                             targets: Sequence[MethodDef]) \
            -> SpeculationVerdict:
        """Can the *last* guard of a multi-target guarded inline go?

        The last test is redundant once every earlier guard missed iff
        the targets' acceptance sets cover every class the receiver can
        be.  With an empty cone (no future load can break coverage) the
        elision is unconditional; with a nonempty cone it additionally
        needs a preexistent receiver -- in-flight activations stay safe,
        and the recorded dependency invalidates the code for future
        invocations -- and a cone risk within the elide threshold.
        """
        target_ids = frozenset(target.id for target in targets)
        if not self._hierarchy.loaded_targets(stmt.selector) <= target_ids:
            # A loaded receiver class already dispatches outside the
            # chosen targets: the fallthrough path is live today.
            return SpeculationVerdict(ACTION_GUARD, 1.0, 0)
        cone, risk = self.exhaustive_risk(stmt.selector, targets)
        if not cone:
            return SpeculationVerdict(ACTION_ELIDE, 0.0, 0)
        if (risk <= self._costs.speculation_elide_max_risk
                and self.receiver_preexists(stmt, comp_context)):
            return SpeculationVerdict(ACTION_ELIDE, risk, len(cone))
        return SpeculationVerdict(ACTION_GUARD, risk, len(cone))


# ---------------------------------------------------------------------------
# Static program-level summary (for `repro analyze --speculation`)
# ---------------------------------------------------------------------------


def static_speculation_summary(program: Program,
                               hierarchy: Optional[ClassHierarchy] = None,
                               costs: CostModel = DEFAULT_COSTS) -> Dict:
    """Whole-program statistics from the three clients, load-free.

    Computed against a fresh (nothing-loaded) hierarchy: preexistent
    receiver sites, sites with a same-receiver dominating guard
    available, and per-assumption cone sizes/risks for every virtual
    selector's implementations.
    """
    hierarchy = hierarchy or ClassHierarchy(program)
    spec = SpeculationAnalysis(program, hierarchy, costs)
    virtual_sites = 0
    preexistent_sites = 0
    dominated_sites = 0
    selectors = set()
    for method in program.methods():
        summary = spec.summary(method)
        for site in sorted(summary.call_facts):
            facts = summary.call_facts[site]
            if facts.selector is None:
                continue
            virtual_sites += 1
            selectors.add(facts.selector)
            if facts.receiver is not None:
                preexistent_sites += 1
            tag = summary.receiver_tags.get(site)
            if tag is not None and any(
                    fact[2] == tag and fact[0] != site
                    for fact in summary.available.get(site, ())):
                dominated_sites += 1
    risks: List[float] = []
    cone_sizes: List[int] = []
    for selector in sorted(selectors):
        for target in hierarchy.implementations(selector):
            cone, risk = spec.assumption_risk(selector, target)
            risks.append(risk)
            cone_sizes.append(len(cone))
    return {
        "methods": len(program.methods()),
        "virtual_sites": virtual_sites,
        "preexistent_receiver_sites": preexistent_sites,
        "dominator_available_sites": dominated_sites,
        "assumptions": len(risks),
        "max_risk": round(max(risks), 6) if risks else 0.0,
        "mean_risk": round(sum(risks) / len(risks), 6) if risks else 0.0,
        "max_cone": max(cone_sizes) if cone_sizes else 0,
    }
