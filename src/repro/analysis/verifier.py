"""The mini-JVM program verifier: well-formedness before execution.

:meth:`repro.jvm.program.Program.validate` checks referential integrity
(targets exist, site ids are unique) and raises on the *first* problem it
meets.  The verifier goes further and collects *every* problem: it checks
the class hierarchy is acyclic, every call site's argument arity matches
every implementation it could dispatch to, ``Arg``/``Local`` slot indices
are in range for the enclosing method, loop bounds and ``Work`` costs are
sane, and statement/expression ``kind`` tags belong to the interpreter's
closed dispatch vocabulary.

Each finding is a structured :class:`VerifierError` carrying the error
code, the offending method, the call-site id when one is involved, and a
``body[i].then[j]``-style path to the exact statement -- the same
fail-fast discipline benchmark-build pipelines apply before burning sweep
hours on a malformed input.  :func:`verify_program` never raises on a
broken program; it returns a :class:`VerificationReport` whose
:meth:`~VerificationReport.raise_if_failed` converts findings into a
:class:`VerificationFailure` for callers that want an exception.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.jvm.errors import ProgramError
from repro.jvm.program import (
    E_ADD, E_ARG, E_CONST, E_LOCAL, E_LT, E_MOD, E_MUL, E_PICK, E_SUB,
    S_IF, S_INTERFACE_CALL, S_LET, S_LOOP, S_NEW, S_NEWPOOL, S_RETURN,
    S_STATIC_CALL, S_VIRTUAL_CALL, S_WORK,
    Expr, MethodDef, Program, Stmt,
)

#: Statement kinds the interpreter's dispatch loop understands.
KNOWN_STMT_KINDS = frozenset((
    S_WORK, S_LET, S_NEW, S_NEWPOOL, S_STATIC_CALL, S_VIRTUAL_CALL,
    S_IF, S_LOOP, S_RETURN, S_INTERFACE_CALL))

#: Expression kinds the evaluator understands.
KNOWN_EXPR_KINDS = frozenset((
    E_CONST, E_ARG, E_LOCAL, E_ADD, E_SUB, E_MUL, E_MOD, E_PICK, E_LT))

# -- error codes (closed vocabulary, mirrored in DESIGN.md) -------------------

UNKNOWN_SUPERCLASS = "unknown-superclass"
SUPERCLASS_CYCLE = "superclass-cycle"
UNKNOWN_INTERFACE = "unknown-interface"
ENTRY_MISSING = "entry-missing"
ENTRY_PARAMS = "entry-params"
UNKNOWN_STATIC_TARGET = "unknown-static-target"
STATIC_ARITY = "static-arity"
UNRESOLVED_SELECTOR = "unresolved-selector"
VIRTUAL_ARITY = "virtual-arity"
UNKNOWN_CLASS = "unknown-class"
EMPTY_POOL = "empty-pool"
DUPLICATE_SITE = "duplicate-site"
ARG_RANGE = "arg-range"
LOCAL_RANGE = "local-range"
LOOP_BOUND = "loop-bound"
WORK_COST = "work-cost"
MOD_ZERO = "mod-zero"
BAD_STMT_KIND = "bad-stmt-kind"
BAD_EXPR_KIND = "bad-expr-kind"

#: Every code :func:`verify_program` can emit.
VERIFIER_CODES = frozenset((
    UNKNOWN_SUPERCLASS, SUPERCLASS_CYCLE, UNKNOWN_INTERFACE, ENTRY_MISSING,
    ENTRY_PARAMS, UNKNOWN_STATIC_TARGET, STATIC_ARITY, UNRESOLVED_SELECTOR,
    VIRTUAL_ARITY, UNKNOWN_CLASS, EMPTY_POOL, DUPLICATE_SITE, ARG_RANGE,
    LOCAL_RANGE, LOOP_BOUND, WORK_COST, MOD_ZERO, BAD_STMT_KIND,
    BAD_EXPR_KIND))


@dataclass(frozen=True)
class VerifierError:
    """One well-formedness violation, located as precisely as possible."""

    code: str                    #: a :data:`VERIFIER_CODES` member
    message: str                 #: human-readable description
    method: Optional[str] = None  #: enclosing method id, when applicable
    site: Optional[int] = None   #: call-site id, when one is involved
    path: str = ""               #: ``body[2].then[0]``-style statement path

    def describe(self) -> str:
        """Render as ``code @ method[path] (site N): message``."""
        where = self.method or "<program>"
        if self.path:
            where = f"{where}.{self.path}"
        site = f" (site {self.site})" if self.site is not None else ""
        return f"{self.code} @ {where}{site}: {self.message}"


@dataclass(frozen=True)
class VerificationReport:
    """Everything :func:`verify_program` found, plus coverage counters."""

    program_name: str
    errors: Tuple[VerifierError, ...]
    methods_checked: int
    sites_checked: int

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_code(self) -> Dict[str, int]:
        """Error count per code, for report aggregation."""
        counts: Dict[str, int] = {}
        for error in self.errors:
            counts[error.code] = counts.get(error.code, 0) + 1
        return counts

    def raise_if_failed(self) -> None:
        """Raise :class:`VerificationFailure` when any error was found."""
        if self.errors:
            raise VerificationFailure(self)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        head = (f"verify {self.program_name}: "
                f"{self.methods_checked} methods, "
                f"{self.sites_checked} call sites: ")
        if self.ok:
            return head + "OK"
        lines = [head + f"{len(self.errors)} error(s)"]
        lines.extend(f"  {error.describe()}" for error in self.errors)
        return "\n".join(lines)


class VerificationFailure(ProgramError):
    """A program failed verification; carries the full report."""

    def __init__(self, report: VerificationReport):
        super().__init__(report.render())
        self.report = report


def verify_program(program: Program) -> VerificationReport:
    """Check ``program`` for well-formedness; never raises on bad input."""
    return _Verifier(program).run()


class _Verifier:
    """Single-use walker accumulating :class:`VerifierError` records."""

    def __init__(self, program: Program):
        self._program = program
        self._errors: List[VerifierError] = []
        self._sites: Dict[int, Tuple[str, str]] = {}  # site -> (method, path)
        self._sites_checked = 0
        # selector -> implementations, computed without assuming validity.
        self._impls: Dict[str, List[MethodDef]] = {}
        for cls in program.classes.values():
            for method in cls.methods.values():
                self._impls.setdefault(method.name, []).append(method)

    # -- driver ---------------------------------------------------------------

    def run(self) -> VerificationReport:
        self._check_hierarchy()
        self._check_entry()
        methods = 0
        for cls in sorted(self._program.classes.values(),
                          key=lambda c: c.name):
            for name in sorted(cls.methods):
                method = cls.methods[name]
                methods += 1
                self._check_body(method, method.body, "body")
        return VerificationReport(
            program_name=self._program.name,
            errors=tuple(self._errors),
            methods_checked=methods,
            sites_checked=self._sites_checked)

    def _error(self, code: str, message: str,
               method: Optional[MethodDef] = None,
               site: Optional[int] = None, path: str = "") -> None:
        self._errors.append(VerifierError(
            code=code, message=message,
            method=None if method is None else method.id,
            site=site, path=path))

    # -- class-level checks ----------------------------------------------------

    def _check_hierarchy(self) -> None:
        classes = self._program.classes
        for cls in sorted(classes.values(), key=lambda c: c.name):
            for iface in cls.interfaces:
                if iface not in classes:
                    self._error(UNKNOWN_INTERFACE,
                                f"class {cls.name} implements unknown "
                                f"interface {iface!r}")
            seen = {cls.name}
            sup = cls.superclass
            while sup is not None:
                if sup not in classes:
                    self._error(UNKNOWN_SUPERCLASS,
                                f"class {cls.name} extends unknown {sup!r}")
                    break
                if sup in seen:
                    self._error(SUPERCLASS_CYCLE,
                                f"inheritance cycle through {sup} "
                                f"(reached from {cls.name})")
                    break
                seen.add(sup)
                sup = classes[sup].superclass

    def _check_entry(self) -> None:
        entry_id = self._program.entry
        if entry_id is None:
            self._error(ENTRY_MISSING, "program has no entry point")
            return
        try:
            entry = self._program.method(entry_id)
        except ProgramError:
            self._error(ENTRY_MISSING, f"entry {entry_id!r} does not exist")
            return
        if entry.num_params != 0:
            # The runtime invokes the entry with no arguments; a nonzero
            # arity would read past the argument tuple at the first Arg.
            self._error(ENTRY_PARAMS,
                        f"entry {entry.id} declares {entry.num_params} "
                        f"parameter(s); the runtime passes none",
                        method=entry)

    # -- statement walk --------------------------------------------------------

    def _check_body(self, m: MethodDef, body: Sequence[Stmt],
                    prefix: str) -> None:
        for i, stmt in enumerate(body):
            path = f"{prefix}[{i}]"
            k = stmt.kind
            if k not in KNOWN_STMT_KINDS:
                self._error(BAD_STMT_KIND,
                            f"unknown statement kind {k!r} "
                            f"({type(stmt).__name__})", m, path=path)
                continue
            if k == S_WORK:
                if not isinstance(stmt.cost, int) or stmt.cost < 0:
                    self._error(WORK_COST,
                                f"work cost must be a non-negative int, "
                                f"got {stmt.cost!r}", m, path=path)
            elif k == S_LET:
                self._check_local(m, stmt.dst, path)
                self._check_expr(m, stmt.expr, path)
            elif k == S_NEW:
                self._check_local(m, stmt.dst, path)
                if stmt.class_name not in self._program.classes:
                    self._error(UNKNOWN_CLASS,
                                f"New of unknown class {stmt.class_name!r}",
                                m, path=path)
            elif k == S_NEWPOOL:
                self._check_local(m, stmt.dst, path)
                if not stmt.class_names:
                    self._error(EMPTY_POOL,
                                "NewPool with no classes can only feed a "
                                "failing Pick", m, path=path)
                for cn in stmt.class_names:
                    if cn not in self._program.classes:
                        self._error(UNKNOWN_CLASS,
                                    f"NewPool of unknown class {cn!r}",
                                    m, path=path)
            elif k == S_STATIC_CALL:
                self._check_static_call(m, stmt, path)
            elif k in (S_VIRTUAL_CALL, S_INTERFACE_CALL):
                self._check_virtual_call(m, stmt, path)
            elif k == S_IF:
                self._check_expr(m, stmt.cond, path)
                self._check_body(m, stmt.then_body, f"{path}.then")
                self._check_body(m, stmt.else_body, f"{path}.else")
            elif k == S_LOOP:
                self._check_expr(m, stmt.count, path)
                self._check_local(m, stmt.index_local, path)
                if stmt.count.kind == E_CONST and (
                        not isinstance(stmt.count.value, int)
                        or stmt.count.value < 0):
                    self._error(LOOP_BOUND,
                                f"constant loop bound must be a "
                                f"non-negative int, got {stmt.count.value!r}",
                                m, path=path)
                self._check_body(m, stmt.body, f"{path}.loop")
            elif k == S_RETURN:
                if stmt.expr is not None:
                    self._check_expr(m, stmt.expr, path)

    # -- call-site checks ------------------------------------------------------

    def _record_site(self, m: MethodDef, site: int, path: str) -> None:
        self._sites_checked += 1
        existing = self._sites.get(site)
        if existing is not None:
            self._error(DUPLICATE_SITE,
                        f"call-site id {site} already used at "
                        f"{existing[0]}.{existing[1]}", m, site=site,
                        path=path)
            return
        self._sites[site] = (m.id, path)

    def _check_static_call(self, m: MethodDef, stmt, path: str) -> None:
        self._record_site(m, stmt.site, path)
        for arg in stmt.args:
            self._check_expr(m, arg, path)
        if stmt.dst is not None:
            self._check_local(m, stmt.dst, path)
        try:
            target = self._program.method(stmt.target)
        except ProgramError:
            self._error(UNKNOWN_STATIC_TARGET,
                        f"no such method {stmt.target!r}", m,
                        site=stmt.site, path=path)
            return
        if len(stmt.args) != target.num_params:
            self._error(STATIC_ARITY,
                        f"{target.id} takes {target.num_params} "
                        f"parameter(s), call passes {len(stmt.args)}",
                        m, site=stmt.site, path=path)

    def _check_virtual_call(self, m: MethodDef, stmt, path: str) -> None:
        self._record_site(m, stmt.site, path)
        self._check_expr(m, stmt.receiver, path)
        for arg in stmt.args:
            self._check_expr(m, arg, path)
        if stmt.dst is not None:
            self._check_local(m, stmt.dst, path)
        impls = self._impls.get(stmt.selector, [])
        if not impls:
            self._error(UNRESOLVED_SELECTOR,
                        f"selector {stmt.selector!r} has no implementation",
                        m, site=stmt.site, path=path)
            return
        # The receiver is passed as the callee's Arg(0), so every possible
        # implementation must declare 1 + len(args) parameter slots.
        expected = 1 + len(stmt.args)
        for impl in impls:
            if impl.num_params != expected:
                self._error(VIRTUAL_ARITY,
                            f"{impl.id} takes {impl.num_params} "
                            f"parameter slot(s), dispatch passes {expected} "
                            f"(receiver + {len(stmt.args)})",
                            m, site=stmt.site, path=path)

    # -- expression / slot checks ----------------------------------------------

    def _check_local(self, m: MethodDef, index, path: str) -> None:
        if not isinstance(index, int) or not 0 <= index < m.num_locals:
            self._error(LOCAL_RANGE,
                        f"local slot {index!r} out of range "
                        f"[0, {m.num_locals})", m, path=path)

    def _check_expr(self, m: MethodDef, expr: Expr, path: str) -> None:
        k = expr.kind
        if k not in KNOWN_EXPR_KINDS:
            self._error(BAD_EXPR_KIND,
                        f"unknown expression kind {k!r} "
                        f"({type(expr).__name__})", m, path=path)
            return
        if k == E_ARG:
            if not isinstance(expr.index, int) \
                    or not 0 <= expr.index < m.num_params:
                self._error(ARG_RANGE,
                            f"Arg({expr.index!r}) out of range "
                            f"[0, {m.num_params})", m, path=path)
        elif k == E_LOCAL:
            if not isinstance(expr.index, int) \
                    or not 0 <= expr.index < m.num_locals:
                self._error(LOCAL_RANGE,
                            f"Local({expr.index!r}) out of range "
                            f"[0, {m.num_locals})", m, path=path)
        elif k in (E_ADD, E_SUB, E_MUL, E_LT):
            self._check_expr(m, expr.left, path)
            self._check_expr(m, expr.right, path)
        elif k == E_MOD:
            self._check_expr(m, expr.left, path)
            self._check_expr(m, expr.right, path)
            if expr.right.kind == E_CONST and expr.right.value == 0:
                self._error(MOD_ZERO, "modulo by constant zero", m,
                            path=path)
        elif k == E_PICK:
            self._check_expr(m, expr.pool, path)
            self._check_expr(m, expr.index, path)
