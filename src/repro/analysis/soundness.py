"""Dynamic soundness checking: static target sets must contain every
observed dispatch edge, at every precision tier.

The static call graphs are only useful if they *over-approximate*
execution: a (site -> target) edge the machine actually dispatches that a
static target set does not contain would mean the verifier, the static
oracles, and every report built on the graphs are reasoning about a
different program than the one that runs.  This module replays a
fixed-seed run with the machine's zero-cost ``dispatch_observer`` hook
attached, collects every dynamically executed dispatch edge (optionally
qualified by the source-level calling context read off the shadow
stack), and checks containment site by site.

:func:`check_soundness` checks one flat graph (CHA by default);
:func:`check_lattice_soundness` checks the whole precision chain
``observed ⊆ kCFA(ctx) ⊆ ... ⊆ 0CFA ⊆ RTA ⊆ CHA`` from a single replay,
with the k-CFA tiers checked *context-conditioned*: an edge only counts
as contained when the target set of the specific truncated call string
it executed under contains it.  Each violation carries a ``code`` naming
the tier that broke (``unsound-cha``, ``unsound-1cfa``, ...).

The same machinery feeds decision-diff *attribution*: a flip between two
runs at a site the static graph proves monomorphic cannot be explained by
profile evidence (both oracles see the same sole target -- the flip is a
budget/ordering effect), while a flip at a statically polymorphic site is
exactly where static and profile-directed inlining disagree.  ``repro
decisions diff --attribute-static`` renders that classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.callgraph import (CHA, RTA, StaticCallGraph,
                                      build_call_graph)
from repro.analysis.kcfa import (CallString, ContextSensitiveCallGraph,
                                 build_kcfa_graph, truncate)
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.program import Program
from repro.provenance.diff import DecisionDiff, Flip

#: Attribution buckets for decision-diff flips.
ATTR_STATIC_DECIDED = "static-decided"    #: CHA-monomorphic site
ATTR_PROFILE_DECIDED = "profile-decided"  #: CHA-polymorphic dispatch site
ATTR_UNKNOWN_SITE = "unknown-site"        #: site absent from the graph


@dataclass(frozen=True)
class SoundnessViolation:
    """One dynamically observed edge outside the static target set."""

    site: int
    caller: str
    selector: str
    observed: str                 #: dynamically executed target id
    allowed: Tuple[str, ...]      #: the static target set at the site
    tier: str = CHA               #: precision tier whose set was violated
    #: dynamic call string the edge executed under, for tiers checked
    #: context-conditioned (None for flat tiers)
    context: Optional[CallString] = None

    @property
    def code(self) -> str:
        """Stable violation code naming the tier that broke."""
        return f"unsound-{self.tier}"

    def describe(self) -> str:
        where = f"site {self.site} in {self.caller} ({self.selector})"
        if self.context is not None:
            where += f" ctx={list(self.context)}"
        return (f"[{self.code}] {where}: "
                f"executed {self.observed}, static set "
                f"{{{', '.join(self.allowed) or ''}}}")


@dataclass(frozen=True)
class SoundnessReport:
    """Outcome of one containment check (static graph vs one run)."""

    program_name: str
    precision: str
    sites_observed: int           #: dispatch sites that executed
    edges_observed: int           #: distinct (site, target) edges seen
    violations: Tuple[SoundnessViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        head = (f"soundness {self.program_name} [{self.precision}]: "
                f"{self.edges_observed} dynamic edges over "
                f"{self.sites_observed} sites: ")
        if self.ok:
            return head + "contained"
        lines = [head + f"{len(self.violations)} VIOLATION(S)"]
        lines.extend(f"  {v.describe()}" for v in self.violations)
        return "\n".join(lines)


def observe_dispatch_edges(program: Program, policy=None,
                           costs: CostModel = DEFAULT_COSTS,
                           phase: float = 0.0) \
        -> Dict[int, FrozenSet[str]]:
    """Run the program once and collect every executed dispatch edge.

    Runs the full adaptive system (the seed-deterministic fixed-phase run
    the acceptance check calls for), with the machine's
    ``dispatch_observer`` hook recording the resolved target of every
    virtual/interface dispatch -- guarded, devirtualized, or plain.
    Observation is pure instrumentation: it charges no cycles and changes
    no decisions.
    """
    from repro.aos.runtime import AdaptiveRuntime
    from repro.policies import make_policy

    if policy is None:
        policy = make_policy("cins", costs=costs)
    runtime = AdaptiveRuntime(program, policy, costs, sample_phase=phase)
    observed: Dict[int, set] = {}

    def observer(site: int, target_id: str) -> None:
        observed.setdefault(site, set()).add(target_id)

    runtime.machine.dispatch_observer = observer
    runtime.run()
    return {site: frozenset(targets) for site, targets in observed.items()}


def check_containment(graph: StaticCallGraph,
                      observed: Dict[int, FrozenSet[str]]) \
        -> SoundnessReport:
    """Assert every observed (site -> target) edge is in the static set."""
    violations: List[SoundnessViolation] = []
    edges = 0
    for site in sorted(observed):
        targets = observed[site]
        edges += len(targets)
        allowed = graph.targets(site)
        info = graph.sites.get(site)
        for target in sorted(targets - allowed):
            violations.append(SoundnessViolation(
                site=site,
                caller=info.caller if info is not None else "<unknown>",
                selector=info.selector if info is not None else "<unknown>",
                observed=target,
                allowed=tuple(sorted(allowed)),
                tier=graph.precision))
    return SoundnessReport(
        program_name=graph.program_name, precision=graph.precision,
        sites_observed=len(observed), edges_observed=edges,
        violations=tuple(violations))


def check_soundness(program: Program,
                    graph: Optional[StaticCallGraph] = None, policy=None,
                    costs: CostModel = DEFAULT_COSTS,
                    phase: float = 0.0) -> SoundnessReport:
    """End-to-end check: build the CHA graph (unless given), replay a
    fixed-seed run, and verify CHA target sets contain what executed."""
    if graph is None:
        graph = build_call_graph(program, precision=CHA, costs=costs)
    observed = observe_dispatch_edges(program, policy=policy, costs=costs,
                                      phase=phase)
    return check_containment(graph, observed)


# -- guard-elision replay ------------------------------------------------------


@dataclass(frozen=True)
class ElisionViolation:
    """One elided-guard entry whose compiled-out test would have failed.

    The machine enters the inlined body behind an elided guard without
    testing anything; the elision is sound only if full dispatch would
    have picked the same target every time.  ``entered != resolved``
    means the speculation analysis let a wrong body run.
    """

    site: int
    elision_kind: str            #: "preexist" or "dominated"
    entered: str                 #: target whose inlined body was entered
    resolved: str                #: what full dispatch would have called
    count: int = 1               #: dynamic occurrences on this run

    @property
    def code(self) -> str:
        return f"unsound-elision-{self.elision_kind}"

    def describe(self) -> str:
        return (f"[{self.code}] site {self.site}: entered {self.entered} "
                f"but dispatch resolves {self.resolved} ({self.count}x)")


@dataclass(frozen=True)
class ElisionReport:
    """Outcome of one fixed-seed replay with guard elision enabled."""

    program_name: str
    elided_entries: int           #: inline entries through an elided guard
    guard_tests: int              #: guard tests still executed
    guard_misses: int             #: guarded sites where every guard failed
    total_cycles: float
    violations: Tuple[ElisionViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        head = (f"elision replay {self.program_name}: "
                f"{self.elided_entries} elided entries, "
                f"{self.guard_tests} guard tests: ")
        if self.ok:
            return head + "no elided guard would have failed"
        lines = [head + f"{len(self.violations)} VIOLATION(S)"]
        lines.extend(f"  {v.describe()}" for v in self.violations)
        return "\n".join(lines)


def check_elision_soundness(program: Program, policy=None,
                            costs: CostModel = DEFAULT_COSTS,
                            phase: float = 0.0) -> ElisionReport:
    """Replay with speculation enabled; assert no elided guard would fire.

    Forces ``speculation_enabled`` on (the elision machinery is opt-in
    everywhere else), runs the fixed-seed adaptive system with the
    machine's zero-cost ``elision_observer`` hook attached, and checks
    that every entry through an elided guard entered exactly the target
    a full dispatch would have resolved.  For preexistence elisions this
    certifies the invalidation cone did its job; for dominance elisions
    it certifies the acceptance-set containment argument.
    """
    from repro.aos.runtime import AdaptiveRuntime
    from repro.policies import make_policy

    if not costs.speculation_enabled:
        costs = costs.replace(speculation_enabled=True)
    if policy is None:
        policy = make_policy("cins", costs=costs)
    runtime = AdaptiveRuntime(program, policy, costs, sample_phase=phase)
    mismatches: Dict[Tuple[int, str, str, str], int] = {}

    def observer(site: int, kind: str, entered: str, resolved: str) -> None:
        if entered != resolved:
            key = (site, kind, entered, resolved)
            mismatches[key] = mismatches.get(key, 0) + 1

    runtime.machine.elision_observer = observer
    result = runtime.run()
    stats = runtime.machine.stats
    violations = tuple(
        ElisionViolation(site=site, elision_kind=kind, entered=entered,
                         resolved=resolved, count=count)
        for (site, kind, entered, resolved), count
        in sorted(mismatches.items()))
    return ElisionReport(
        program_name=program.name,
        elided_entries=stats.elided_entries,
        guard_tests=stats.guard_tests,
        guard_misses=stats.guard_misses,
        total_cycles=result.total_cycles,
        violations=violations)


# -- OSR live-state replay -----------------------------------------------------


@dataclass(frozen=True)
class OSRViolation:
    """One post-transfer local read the static live set failed to cover.

    After an OSR transition (loop entry onto optimized code, or a
    cheap-exit deoptimization) only the statically-computed live set is
    mapped across the tier boundary.  A read of a slot outside that set
    -- not preceded by a post-transfer write of the same slot -- means
    the transition would have read garbage in a real VM.
    """

    method: str
    kind: str                    #: "osr-entry" or "deopt-exit"
    where: str                   #: loop path, or "site N" for exits
    index: int                   #: the local slot read
    live: Tuple[int, ...]        #: the static live set at the point
    count: int = 1               #: dynamic occurrences on this run

    @property
    def code(self) -> str:
        return f"unsound-live-{self.kind}"

    def describe(self) -> str:
        return (f"[{self.code}] {self.method} {self.where}: read local "
                f"{self.index} outside live set "
                f"{{{', '.join(map(str, self.live))}}} ({self.count}x)")


@dataclass(frozen=True)
class OSRReport:
    """Outcome of one fixed-seed replay with deopt planning enabled."""

    program_name: str
    osr_transfers: int            #: loop OSR entries watched
    deopt_entries: int            #: zero-cost entries at cheap-exit sites
    deopt_exits: int              #: deoptimization exits watched
    reads_checked: int            #: local reads in watched activations
    total_cycles: float
    violations: Tuple[OSRViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        head = (f"osr soundness {self.program_name}: "
                f"{self.osr_transfers} loop transfer(s), "
                f"{self.deopt_exits} deopt exit(s), "
                f"{self.reads_checked} watched read(s): ")
        if self.ok:
            return head + "live sets cover every read"
        lines = [head + f"{len(self.violations)} VIOLATION(S)"]
        lines.extend(f"  {v.describe()}" for v in self.violations)
        return "\n".join(lines)


def check_osr_soundness(program: Program, policy=None,
                        costs: CostModel = DEFAULT_COSTS,
                        phase: float = 0.0) -> OSRReport:
    """Replay with deopt planning on; assert live sets cover every read.

    Forces ``deopt_planning_enabled`` and the ``planned`` strategy (the
    configuration exercising both OSR-point flavours), runs the
    fixed-seed adaptive system with the machine's zero-cost transition
    observers and local-access probe attached, and checks the soundness
    contract of the liveness analysis: from each transition onward,
    every local the interpreter actually reads in the transferred
    activation is either in the statically-computed live set that was
    mapped across, or was re-written after the transfer (reads after a
    post-transfer write never consult mapped state).
    """
    from repro.analysis.liveness import _loop_paths
    from repro.aos.runtime import AdaptiveRuntime
    from repro.policies import make_policy

    if not costs.deopt_planning_enabled or costs.deopt_strategy != "planned":
        costs = costs.replace(deopt_planning_enabled=True,
                              deopt_strategy="planned")
    if policy is None:
        policy = make_policy("cins", costs=costs)
    runtime = AdaptiveRuntime(program, policy, costs, sample_phase=phase)

    loop_paths: Dict[int, str] = {}
    for method in program.methods():
        loop_paths.update(_loop_paths(method))

    # id(locals_) -> [locals_ref, live, written, method_id, kind, where].
    # The strong reference to the locals list pins its id for the whole
    # run, so a recycled id can never alias a watched activation.
    watched: Dict[int, list] = {}
    counts: Dict[Tuple[str, str, str, int, Tuple[int, ...]], int] = {}
    reads_checked = [0]

    def watch(locals_, live, method_id: str, kind: str, where: str) -> None:
        watched[id(locals_)] = [locals_, frozenset(live), set(),
                                method_id, kind, where]

    def on_osr_entry(method_id, loop_stmt, locals_) -> None:
        index = runtime.machine.osr_liveness or {}
        watch(locals_, index.get(id(loop_stmt), frozenset()), method_id,
              "osr-entry", loop_paths.get(id(loop_stmt), "<loop>"))

    def on_deopt_exit(site, exit_live, locals_) -> None:
        frame = runtime.machine.stack[-1]
        watch(locals_, exit_live, frame.method.id, "deopt-exit",
              f"site {site}")

    def probe(locals_, index: int, is_read: bool) -> None:
        entry = watched.get(id(locals_))
        if entry is None or entry[0] is not locals_:
            return
        if not is_read:
            entry[2].add(index)
            return
        reads_checked[0] += 1
        if index in entry[1] or index in entry[2]:
            return
        key = (entry[3], entry[4], entry[5], index,
               tuple(sorted(entry[1])))
        counts[key] = counts.get(key, 0) + 1

    runtime.machine.osr_entry_observer = on_osr_entry
    runtime.machine.deopt_exit_observer = on_deopt_exit
    runtime.machine.local_probe = probe
    result = runtime.run()
    stats = runtime.machine.stats
    violations = tuple(
        OSRViolation(method=method, kind=kind, where=where, index=index,
                     live=live, count=count)
        for (method, kind, where, index, live), count
        in sorted(counts.items()))
    return OSRReport(
        program_name=program.name,
        osr_transfers=stats.osr_transfers,
        deopt_entries=stats.deopt_entries,
        deopt_exits=stats.deopt_exits,
        reads_checked=reads_checked[0],
        total_cycles=result.total_cycles,
        violations=violations)


# -- context-conditioned observation and the full precision chain --------------

#: (site, dynamic call string) -> executed target -> dispatch count.
ContextEdges = Dict[Tuple[int, CallString], Dict[str, int]]


def observe_context_edges(program: Program, k: int = 2, policy=None,
                          costs: CostModel = DEFAULT_COSTS,
                          phase: float = 0.0) -> ContextEdges:
    """Replay once and collect dispatch edges qualified by calling context.

    The dynamic call string is read off the machine's source-level shadow
    stack at dispatch time -- innermost-first call-site ids, truncated to
    ``k`` -- so inlined activations contribute their sites exactly as a
    CCT walk would see them.  Counts are per executed dispatch, which
    makes the result double as the fixed-seed dynamic CCT the precision
    score compares k-CFA predictions against.
    """
    from repro.aos.runtime import AdaptiveRuntime
    from repro.policies import make_policy

    if policy is None:
        policy = make_policy("cins", costs=costs)
    runtime = AdaptiveRuntime(program, policy, costs, sample_phase=phase)
    stack = runtime.machine.stack
    edges: Dict[Tuple[int, CallString], Dict[str, int]] = {}

    def observer(site: int, target_id: str) -> None:
        chain: List[int] = []
        for frame in reversed(stack):
            if frame.site is None or len(chain) >= k:
                break
            chain.append(frame.site)
        slot = edges.setdefault((site, tuple(chain)), {})
        slot[target_id] = slot.get(target_id, 0) + 1

    runtime.machine.dispatch_observer = observer
    runtime.run()
    return edges


def flatten_context_edges(edges: ContextEdges) -> Dict[int, FrozenSet[str]]:
    """Drop contexts: the per-site edge sets flat tiers are checked with."""
    out: Dict[int, set] = {}
    for (site, _ctx), targets in edges.items():
        out.setdefault(site, set()).update(targets)
    return {site: frozenset(targets) for site, targets in out.items()}


def truncate_context_edges(edges: ContextEdges, k: int) -> ContextEdges:
    """Re-key edges on call strings truncated to ``k`` (counts summed)."""
    out: ContextEdges = {}
    for (site, ctx), targets in edges.items():
        slot = out.setdefault((site, truncate(ctx, k)), {})
        for target, count in targets.items():
            slot[target] = slot.get(target, 0) + count
    return out


def check_context_containment(graph: ContextSensitiveCallGraph,
                              edges: ContextEdges) -> SoundnessReport:
    """Context-conditioned containment: each observed edge must be in the
    target set of the *specific* truncated call string it ran under."""
    truncated = truncate_context_edges(edges, graph.k)
    violations: List[SoundnessViolation] = []
    sites = set()
    n_edges = 0
    for site, ctx in sorted(truncated):
        targets = truncated[(site, ctx)]
        sites.add(site)
        n_edges += len(targets)
        allowed = graph.targets(site, context=ctx)
        info = graph.sites.get(site)
        for target in sorted(set(targets) - allowed):
            violations.append(SoundnessViolation(
                site=site,
                caller=info.caller if info is not None else "<unknown>",
                selector=info.selector if info is not None else "<unknown>",
                observed=target,
                allowed=tuple(sorted(allowed)),
                tier=graph.precision,
                context=ctx))
    return SoundnessReport(
        program_name=graph.program_name, precision=graph.precision,
        sites_observed=len(sites), edges_observed=n_edges,
        violations=tuple(violations))


@dataclass(frozen=True)
class LatticeSoundnessReport:
    """Containment of one replay against the whole precision chain."""

    program_name: str
    #: one section per tier, coarsest (CHA) first
    sections: Tuple[SoundnessReport, ...]

    @property
    def ok(self) -> bool:
        return all(section.ok for section in self.sections)

    def violation_codes(self) -> Tuple[str, ...]:
        """Sorted distinct codes of the tiers that broke (empty when ok)."""
        return tuple(sorted({v.code for section in self.sections
                             for v in section.violations}))

    def render(self) -> str:
        status = ("contained at every tier" if self.ok else
                  f"BROKEN tiers: {', '.join(self.violation_codes())}")
        lines = [f"lattice soundness {self.program_name}: {status}"]
        lines.extend("  " + section.render().replace("\n", "\n  ")
                     for section in self.sections)
        return "\n".join(lines)


def check_lattice_soundness(program: Program, ks: Tuple[int, ...] = (0, 1, 2),
                            policy=None,
                            costs: CostModel = DEFAULT_COSTS,
                            phase: float = 0.0,
                            edges: Optional[ContextEdges] = None) \
        -> LatticeSoundnessReport:
    """Replay once; assert observed ⊆ kCFA(ctx) ⊆ ... ⊆ RTA ⊆ CHA.

    Flat tiers (CHA, RTA) are checked on the context-stripped edge sets;
    each k-CFA tier is checked context-conditioned.  One replay feeds
    every tier, so the sections are comparable edge-for-edge.  Pass
    ``edges`` (from :func:`observe_context_edges` at depth >= max(ks))
    to reuse an existing observation instead of replaying here.
    """
    max_k = max(ks) if ks else 0
    if edges is None:
        edges = observe_context_edges(program, k=max_k, policy=policy,
                                      costs=costs, phase=phase)
    flat = flatten_context_edges(edges)
    sections: List[SoundnessReport] = []
    for precision in (CHA, RTA):
        graph = build_call_graph(program, precision=precision, costs=costs)
        sections.append(check_containment(graph, flat))
    for k in ks:
        kgraph = build_kcfa_graph(program, k=k, costs=costs)
        sections.append(check_context_containment(kgraph, edges))
    return LatticeSoundnessReport(program_name=program.name,
                                  sections=tuple(sections))


# -- decision-diff attribution -------------------------------------------------


def attribute_flips(diff: DecisionDiff, graph: StaticCallGraph) \
        -> Dict[str, List[Flip]]:
    """Classify diff flips by what the static call graph knows of the site.

    A flip at a :data:`ATTR_STATIC_DECIDED` site (statically bound or
    monomorphic) cannot come from profile evidence -- both runs' oracles
    see the same sole target, so the divergence is a budget, ordering, or
    tree-shape effect.  A flip at a :data:`ATTR_PROFILE_DECIDED` site
    (statically polymorphic dispatch) is genuine static-vs-profile
    disagreement: only profile data can pick targets there.
    """
    buckets: Dict[str, List[Flip]] = {
        ATTR_STATIC_DECIDED: [], ATTR_PROFILE_DECIDED: [],
        ATTR_UNKNOWN_SITE: []}
    for flip in diff.flips:
        _caller, site, _context = flip.key
        info = graph.sites.get(site)
        if info is None:
            buckets[ATTR_UNKNOWN_SITE].append(flip)
        elif info.dispatched and not info.monomorphic:
            buckets[ATTR_PROFILE_DECIDED].append(flip)
        else:
            buckets[ATTR_STATIC_DECIDED].append(flip)
    return buckets


def render_attribution(buckets: Dict[str, List[Flip]],
                       graph: StaticCallGraph,
                       limit: Optional[int] = None) -> str:
    """Human-readable static-vs-profile attribution section."""
    total = sum(len(flips) for flips in buckets.values())
    lines = [f"static attribution ({graph.precision} over "
             f"{graph.program_name}): {total} flip(s)"]
    titles = (
        (ATTR_PROFILE_DECIDED,
         "static-vs-profile disagreement (polymorphic in the static graph)"),
        (ATTR_STATIC_DECIDED,
         "statically decided (budget/ordering effects, not profile)"),
        (ATTR_UNKNOWN_SITE, "sites unknown to the static graph"))
    for key, title in titles:
        flips = buckets.get(key, [])
        if not flips:
            continue
        lines.append(f"  {title}: {len(flips)}")
        shown = flips if limit is None else flips[:limit]
        for flip in shown:
            lines.append(f"    [{flip.kind}] {flip.describe()}")
        if limit is not None and len(flips) > limit:
            lines.append(f"    ... and {len(flips) - limit} more")
    return "\n".join(lines)
