"""Static analysis over mini-JVM programs.

Six coordinated pieces, layered strictly *above* the JVM/compiler
layers (nothing in :mod:`repro.jvm` or :mod:`repro.compiler` imports
this package):

* :mod:`repro.analysis.verifier` -- structural well-formedness checking
  with machine-readable :class:`VerifierError` diagnostics;
* :mod:`repro.analysis.callgraph` -- whole-program static call graphs at
  CHA and RTA precision, with static frequency estimates;
* :mod:`repro.analysis.kcfa` -- context-sensitive call graphs keyed by
  k-bounded call strings (0-CFA refines RTA; each k refines k-1), with
  per-context frequency estimates;
* :mod:`repro.analysis.lattice` -- the precision-lattice report:
  per-site target-set sizes across ``CHA ⊇ RTA ⊇ 0CFA ⊇ kCFA ⊇
  observed``, context-rescued sites, and per-tier majority-prediction
  scores against the fixed-seed dynamic CCT;
* :mod:`repro.analysis.static_oracle` -- profile-free inlining policies
  driven purely by the static graphs (the baselines the paper's online
  system is measured against), flat and context-sensitive;
* :mod:`repro.analysis.soundness` -- dynamic containment checking
  (every executed dispatch edge must lie in each tier's target set,
  context-conditioned for the k-CFA tiers) and static-vs-profile
  attribution of decision-diff flips.

:mod:`repro.analysis.report` bundles all of it behind the
``repro analyze`` CLI as a versioned JSON report.
"""

from repro.analysis.callgraph import (CHA, PRECISIONS, RTA, CallSite,
                                      StaticCallGraph, build_call_graph)
from repro.analysis.kcfa import (ContextSensitiveCallGraph, ContextTargets,
                                 KSite, build_kcfa_graph, extend,
                                 strings_compatible, truncate)
from repro.analysis.lattice import (LATTICE_KS, ContainmentViolation,
                                    LatticeReport, SiteLatticeRow,
                                    TierPrecisionScore, build_lattice_report,
                                    lattice_to_json, render_lattice)
from repro.analysis.report import (ANALYSIS_SCHEMA, ANALYZE_PRECISIONS,
                                   DEFAULT_PRECISIONS, analyze_benchmark,
                                   analyze_program, bundle_reports,
                                   render_analysis, render_bundle,
                                   report_ok, write_report)
from repro.analysis.soundness import (ATTR_PROFILE_DECIDED,
                                      ATTR_STATIC_DECIDED, ATTR_UNKNOWN_SITE,
                                      LatticeSoundnessReport, SoundnessReport,
                                      SoundnessViolation, attribute_flips,
                                      check_containment,
                                      check_context_containment,
                                      check_lattice_soundness,
                                      check_soundness,
                                      flatten_context_edges,
                                      observe_context_edges,
                                      observe_dispatch_edges,
                                      render_attribution,
                                      truncate_context_edges)
from repro.analysis.static_oracle import StaticContextOracle, StaticOracle
from repro.analysis.verifier import (VERIFIER_CODES, VerificationFailure,
                                     VerificationReport, VerifierError,
                                     verify_program)

__all__ = [
    "ANALYSIS_SCHEMA",
    "ANALYZE_PRECISIONS",
    "ATTR_PROFILE_DECIDED",
    "ATTR_STATIC_DECIDED",
    "ATTR_UNKNOWN_SITE",
    "CHA",
    "CallSite",
    "ContainmentViolation",
    "ContextSensitiveCallGraph",
    "ContextTargets",
    "DEFAULT_PRECISIONS",
    "KSite",
    "LATTICE_KS",
    "LatticeReport",
    "LatticeSoundnessReport",
    "PRECISIONS",
    "RTA",
    "SiteLatticeRow",
    "SoundnessReport",
    "SoundnessViolation",
    "StaticCallGraph",
    "StaticContextOracle",
    "StaticOracle",
    "TierPrecisionScore",
    "VERIFIER_CODES",
    "VerificationFailure",
    "VerificationReport",
    "VerifierError",
    "analyze_benchmark",
    "analyze_program",
    "attribute_flips",
    "build_call_graph",
    "build_kcfa_graph",
    "build_lattice_report",
    "bundle_reports",
    "check_containment",
    "check_context_containment",
    "check_lattice_soundness",
    "check_soundness",
    "extend",
    "flatten_context_edges",
    "lattice_to_json",
    "observe_context_edges",
    "observe_dispatch_edges",
    "render_analysis",
    "render_attribution",
    "render_bundle",
    "render_lattice",
    "report_ok",
    "strings_compatible",
    "truncate",
    "truncate_context_edges",
    "verify_program",
    "write_report",
]
