"""Static analysis over mini-JVM programs.

Nine coordinated pieces, layered strictly *above* the JVM/compiler
layers (nothing in :mod:`repro.jvm` or :mod:`repro.compiler` imports
this package; the runtime hands the compiler duck-typed speculation
and deopt-planner objects only when the cost model opts in):

* :mod:`repro.analysis.verifier` -- structural well-formedness checking
  with machine-readable :class:`VerifierError` diagnostics;
* :mod:`repro.analysis.callgraph` -- whole-program static call graphs at
  CHA and RTA precision, with static frequency estimates;
* :mod:`repro.analysis.kcfa` -- context-sensitive call graphs keyed by
  k-bounded call strings (0-CFA refines RTA; each k refines k-1), with
  per-context frequency estimates;
* :mod:`repro.analysis.lattice` -- the precision-lattice report:
  per-site target-set sizes across ``CHA ⊇ RTA ⊇ 0CFA ⊇ kCFA ⊇
  observed``, context-rescued sites, and per-tier majority-prediction
  scores against the fixed-seed dynamic CCT;
* :mod:`repro.analysis.static_oracle` -- profile-free inlining policies
  driven purely by the static graphs (the baselines the paper's online
  system is measured against), flat and context-sensitive;
* :mod:`repro.analysis.dataflow` -- the intraprocedural monotone
  dataflow framework (forward and backward, over the structured
  statement tree, sharing one transfer-function registry) and its
  speculation clients: receiver preexistence, must-available guards
  for dominance-based elision, and invalidation-cone risk;
* :mod:`repro.analysis.liveness` -- backward live-variable analysis
  deriving per-statement live sets, per-loop OSR live sets, and
  per-call-site exit live sets;
* :mod:`repro.analysis.deopt` -- the deoptimization planner: combines
  liveness-derived state-mapping cost with speculation risk and k-CFA
  context precision to pick a per-site strategy on the
  ``full-guard < cheap-exit-osr < guard-free`` lattice;
* :mod:`repro.analysis.soundness` -- dynamic containment checking
  (every executed dispatch edge must lie in each tier's target set,
  context-conditioned for the k-CFA tiers), the elision-replay check
  (no elided guard may ever have failed), the OSR live-state replay
  check (static live sets must cover every local the interpreter
  reads after a transition), and static-vs-profile attribution of
  decision-diff flips.

:mod:`repro.analysis.report` bundles all of it behind the
``repro analyze`` CLI as a versioned JSON report.
"""

from repro.analysis.callgraph import (CHA, PRECISIONS, RTA, CallSite,
                                      StaticCallGraph, build_call_graph)
from repro.analysis.dataflow import (ACTION_ELIDE, ACTION_GUARD,
                                     ACTION_REFUSE, ALWAYS_PRE, NOT_PRE,
                                     TRANSFER_REGISTRY,
                                     AvailableGuardAnalysis, BackwardAnalysis,
                                     CallFacts, DataflowAnalysis,
                                     ForwardAnalysis, MethodSummary,
                                     PreexistenceAnalysis,
                                     SpeculationAnalysis, SpeculationVerdict,
                                     join_pre, static_speculation_summary)
from repro.analysis.deopt import (STRATEGY_GUARD, STRATEGY_GUARD_FREE,
                                  STRATEGY_OSR_EXIT, DeoptPlan, DeoptPlanner)
from repro.analysis.kcfa import (ContextSensitiveCallGraph, ContextTargets,
                                 KSite, build_kcfa_graph, extend,
                                 strings_compatible, truncate)
from repro.analysis.liveness import (LivenessAnalysis, LoopLiveness,
                                     MethodLiveness, collect_uses,
                                     method_liveness)
from repro.analysis.lattice import (LATTICE_KS, ContainmentViolation,
                                    LatticeReport, SiteLatticeRow,
                                    TierPrecisionScore, build_lattice_report,
                                    lattice_to_json, render_lattice)
from repro.analysis.report import (ANALYSIS_SCHEMA, ANALYZE_PRECISIONS,
                                   DEFAULT_PRECISIONS, analyze_benchmark,
                                   analyze_program, bundle_reports,
                                   render_analysis, render_bundle,
                                   report_ok, write_report)
from repro.analysis.soundness import (ATTR_PROFILE_DECIDED,
                                      ATTR_STATIC_DECIDED, ATTR_UNKNOWN_SITE,
                                      ElisionReport, ElisionViolation,
                                      LatticeSoundnessReport, OSRReport,
                                      OSRViolation, SoundnessReport,
                                      SoundnessViolation, attribute_flips,
                                      check_containment,
                                      check_context_containment,
                                      check_elision_soundness,
                                      check_lattice_soundness,
                                      check_osr_soundness,
                                      check_soundness,
                                      flatten_context_edges,
                                      observe_context_edges,
                                      observe_dispatch_edges,
                                      render_attribution,
                                      truncate_context_edges)
from repro.analysis.static_oracle import StaticContextOracle, StaticOracle
from repro.analysis.verifier import (VERIFIER_CODES, VerificationFailure,
                                     VerificationReport, VerifierError,
                                     verify_program)

__all__ = [
    "ACTION_ELIDE",
    "ACTION_GUARD",
    "ACTION_REFUSE",
    "ALWAYS_PRE",
    "ANALYSIS_SCHEMA",
    "ANALYZE_PRECISIONS",
    "ATTR_PROFILE_DECIDED",
    "ATTR_STATIC_DECIDED",
    "ATTR_UNKNOWN_SITE",
    "AvailableGuardAnalysis",
    "BackwardAnalysis",
    "CHA",
    "CallFacts",
    "CallSite",
    "ContainmentViolation",
    "ContextSensitiveCallGraph",
    "ContextTargets",
    "DEFAULT_PRECISIONS",
    "DataflowAnalysis",
    "DeoptPlan",
    "DeoptPlanner",
    "ElisionReport",
    "ElisionViolation",
    "ForwardAnalysis",
    "KSite",
    "LATTICE_KS",
    "LatticeReport",
    "LatticeSoundnessReport",
    "LivenessAnalysis",
    "LoopLiveness",
    "MethodLiveness",
    "MethodSummary",
    "NOT_PRE",
    "OSRReport",
    "OSRViolation",
    "PRECISIONS",
    "PreexistenceAnalysis",
    "RTA",
    "STRATEGY_GUARD",
    "STRATEGY_GUARD_FREE",
    "STRATEGY_OSR_EXIT",
    "SiteLatticeRow",
    "SoundnessReport",
    "SoundnessViolation",
    "SpeculationAnalysis",
    "SpeculationVerdict",
    "StaticCallGraph",
    "StaticContextOracle",
    "StaticOracle",
    "TRANSFER_REGISTRY",
    "TierPrecisionScore",
    "VERIFIER_CODES",
    "VerificationFailure",
    "VerificationReport",
    "VerifierError",
    "analyze_benchmark",
    "analyze_program",
    "attribute_flips",
    "build_call_graph",
    "build_kcfa_graph",
    "build_lattice_report",
    "bundle_reports",
    "check_containment",
    "check_context_containment",
    "check_elision_soundness",
    "check_lattice_soundness",
    "check_osr_soundness",
    "check_soundness",
    "collect_uses",
    "extend",
    "flatten_context_edges",
    "join_pre",
    "lattice_to_json",
    "method_liveness",
    "observe_context_edges",
    "observe_dispatch_edges",
    "render_analysis",
    "render_attribution",
    "render_bundle",
    "render_lattice",
    "report_ok",
    "static_speculation_summary",
    "strings_compatible",
    "truncate",
    "truncate_context_edges",
    "verify_program",
    "write_report",
]
