"""Static analysis over mini-JVM programs.

Four coordinated pieces, layered strictly *above* the JVM/compiler
layers (nothing in :mod:`repro.jvm` or :mod:`repro.compiler` imports
this package):

* :mod:`repro.analysis.verifier` -- structural well-formedness checking
  with machine-readable :class:`VerifierError` diagnostics;
* :mod:`repro.analysis.callgraph` -- whole-program static call graphs at
  CHA and RTA precision, with static frequency estimates;
* :mod:`repro.analysis.static_oracle` -- a profile-free inlining policy
  driven purely by the static call graph (the baseline the paper's
  online system is measured against);
* :mod:`repro.analysis.soundness` -- dynamic containment checking
  (every executed dispatch edge must lie in the static CHA set) and
  static-vs-profile attribution of decision-diff flips.

:mod:`repro.analysis.report` bundles all of it behind the
``repro analyze`` CLI as a versioned JSON report.
"""

from repro.analysis.callgraph import (CHA, PRECISIONS, RTA, CallSite,
                                      StaticCallGraph, build_call_graph)
from repro.analysis.report import (ANALYSIS_SCHEMA, analyze_benchmark,
                                   analyze_program, bundle_reports,
                                   render_analysis, render_bundle,
                                   report_ok, write_report)
from repro.analysis.soundness import (ATTR_PROFILE_DECIDED,
                                      ATTR_STATIC_DECIDED, ATTR_UNKNOWN_SITE,
                                      SoundnessReport, SoundnessViolation,
                                      attribute_flips, check_containment,
                                      check_soundness, observe_dispatch_edges,
                                      render_attribution)
from repro.analysis.static_oracle import StaticOracle
from repro.analysis.verifier import (VERIFIER_CODES, VerificationFailure,
                                     VerificationReport, VerifierError,
                                     verify_program)

__all__ = [
    "ANALYSIS_SCHEMA",
    "ATTR_PROFILE_DECIDED",
    "ATTR_STATIC_DECIDED",
    "ATTR_UNKNOWN_SITE",
    "CHA",
    "CallSite",
    "PRECISIONS",
    "RTA",
    "SoundnessReport",
    "SoundnessViolation",
    "StaticCallGraph",
    "StaticOracle",
    "VERIFIER_CODES",
    "VerificationFailure",
    "VerificationReport",
    "VerifierError",
    "analyze_benchmark",
    "analyze_program",
    "attribute_flips",
    "build_call_graph",
    "bundle_reports",
    "check_containment",
    "check_soundness",
    "observe_dispatch_edges",
    "render_analysis",
    "render_attribution",
    "render_bundle",
    "report_ok",
    "verify_program",
    "write_report",
]
