"""Backward live-variable analysis over the structured statement tree.

The cost of an OSR transition is dominated by live-state mapping (D'Elia
& Demetrescu, "On-Stack Replacement a la Carte"): every local that the
remainder of the activation may still read has to be carried across the
tier boundary.  This module computes those live sets statically with the
:class:`~repro.analysis.dataflow.BackwardAnalysis` engine:

* the state is the set of local slots live at a program point (a local
  is *live* when some path to method exit reads it before writing it);
* uses come from ``Local(i)`` expression leaves (``Arg`` reads the
  immutable argument tuple, which both tiers share and never map);
* kills come from ``Let``/``New``/``NewPool``/call destinations and the
  loop induction variable's per-iteration assignment;
* ``Return`` resets the state to exactly its operand's uses -- nothing
  after a return in the same body executes;
* branch join is set union, and loop bodies iterate to a fixpoint so a
  local that is live only across the back edge (written late in one
  iteration, read early in the next) is correctly live at the loop
  header.

Per method the analysis records the two flavours of OSR point:

* every loop header -- the existing back-edge OSR *entry* points, whose
  fixpoint state is what a baseline-to-optimized transfer must map in;
* every dispatched call site -- candidate cheap-exit OSR points, whose
  before-statement state is the pruned live-state map a deoptimization
  exit must map out.

Like every analysis-layer module this one depends only on
:mod:`repro.jvm`; consumers in the compiler receive results by
injection (see :mod:`repro.analysis.deopt`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.jvm.program import (
    E_ARG, E_CONST, E_LOCAL, E_PICK,
    S_STATIC_CALL, Expr, MethodDef, Stmt,
)

from repro.analysis.dataflow import BackwardAnalysis

__all__ = [
    "LivenessAnalysis", "LoopLiveness", "MethodLiveness",
    "collect_uses", "method_liveness",
]


def collect_uses(expr: Optional[Expr], into: set) -> set:
    """Add every local slot read by ``expr`` to ``into`` and return it."""
    if expr is None:
        return into
    kind = expr.kind
    if kind == E_LOCAL:
        into.add(expr.index)
    elif kind == E_PICK:
        collect_uses(expr.pool, into)
        collect_uses(expr.index, into)
    elif kind not in (E_CONST, E_ARG):
        # Binary arithmetic: the only remaining compound shapes.
        collect_uses(expr.left, into)
        collect_uses(expr.right, into)
    return into


class LoopLiveness:
    """One loop-header OSR entry point and its live-state map."""

    __slots__ = ("path", "index_local", "live")

    def __init__(self, path: str, index_local: int, live: FrozenSet[int]):
        self.path = path
        self.index_local = index_local
        self.live = live

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LoopLiveness {self.path} idx={self.index_local} "
                f"live={sorted(self.live)}>")


class MethodLiveness:
    """Cached liveness results for one (immutable) method body.

    Attributes
    ----------
    method_id:
        The analyzed method.
    entry_live:
        Locals live at method entry.  Locals start zeroed, so a nonempty
        set flags reads of the default value, not an analysis bug.
    site_live:
        Call-site id -> locals live immediately before the call (the
        deopt state a cheap-exit OSR point at that site must map out).
    loops:
        Every loop header in structural-path order, each carrying the
        fixpoint back-edge live set (the state a loop OSR entry maps in).
    loop_live_by_id:
        The same loop live sets keyed by ``id(loop_stmt)`` -- statement
        objects are shared with the executing machine, so this is the
        lookup the interpreter and the soundness replay use.
    """

    __slots__ = ("method_id", "entry_live", "site_live", "loops",
                 "loop_live_by_id")

    def __init__(self, method_id: str, entry_live: FrozenSet[int],
                 site_live: Dict[int, FrozenSet[int]],
                 loops: Tuple[LoopLiveness, ...],
                 loop_live_by_id: Dict[int, FrozenSet[int]]):
        self.method_id = method_id
        self.entry_live = entry_live
        self.site_live = site_live
        self.loops = loops
        self.loop_live_by_id = loop_live_by_id


class LivenessAnalysis(BackwardAnalysis):
    """The live-variable client of :class:`BackwardAnalysis`."""

    def __init__(self):
        #: id(loop_stmt) -> accumulated back-edge live set.
        self.loop_live: Dict[int, set] = {}
        #: Loop statements in first-visit order (for stable reporting).
        self.loop_order: List[Stmt] = []
        #: call-site id -> accumulated before-call live set.
        self.site_live: Dict[int, set] = {}

    # -- lattice -----------------------------------------------------------

    def initial_state(self, method: MethodDef) -> set:
        return set()

    def copy_state(self, state: set) -> set:
        return set(state)

    def join_states(self, left: set, right: set) -> set:
        return left | right

    def states_equal(self, left: set, right: set) -> bool:
        return left == right

    # -- transfers (registry handlers + control hooks) ---------------------

    def transfer_let(self, stmt: Stmt, state: set) -> set:
        state.discard(stmt.dst)
        return collect_uses(stmt.expr, state)

    def transfer_alloc(self, stmt: Stmt, state: set) -> set:
        state.discard(stmt.dst)
        return state

    def transfer_static_call(self, stmt: Stmt, state: set) -> set:
        if stmt.dst is not None:
            state.discard(stmt.dst)
        if stmt.kind != S_STATIC_CALL:
            collect_uses(stmt.receiver, state)
        for arg in stmt.args:
            collect_uses(arg, state)
        return state

    transfer_dispatch = transfer_static_call

    def transfer_return(self, stmt: Stmt, state: set) -> set:
        # Nothing after a return in this body runs: the live set is
        # exactly what the return operand reads.
        return collect_uses(stmt.expr, set())

    def transfer_branch(self, stmt: Stmt, state: set) -> set:
        return collect_uses(stmt.cond, state)

    def transfer_loop_count(self, stmt: Stmt, state: set) -> set:
        return collect_uses(stmt.count, state)

    def transfer_loop_index(self, index_local: int, state: set) -> None:
        # Assigned at the head of every iteration, hence never
        # loop-carried: dead at the back edge.
        state.discard(index_local)

    # -- recording ---------------------------------------------------------

    def visit_loop(self, stmt: Stmt, state: set) -> None:
        key = id(stmt)
        if key not in self.loop_live:
            self.loop_live[key] = set()
            self.loop_order.append(stmt)
        # Fixpoint states grow monotonically under the union join, so
        # accumulating converges on the final fixpoint value even when
        # this loop is revisited by an enclosing loop's iterations.
        self.loop_live[key] |= state

    def visit(self, stmt: Stmt, state: set) -> None:
        site = getattr(stmt, "site", None)
        if site is None:
            return
        existing = self.site_live.get(site)
        if existing is None:
            self.site_live[site] = set(state)
        else:
            existing |= state


def _loop_paths(method: MethodDef) -> Dict[int, str]:
    """Structural paths ("body[1].loop.body[0].loop") per loop header."""
    from repro.jvm.program import S_IF, S_LOOP

    paths: Dict[int, str] = {}

    def walk(body, prefix: str) -> None:
        for position, stmt in enumerate(body):
            here = f"{prefix}body[{position}]"
            if stmt.kind == S_LOOP:
                paths[id(stmt)] = f"{here}.loop"
                walk(stmt.body, f"{here}.loop.")
            elif stmt.kind == S_IF:
                walk(stmt.then_body, f"{here}.then.")
                walk(stmt.else_body, f"{here}.else.")

    walk(method.body, "")
    return paths


def method_liveness(method: MethodDef) -> MethodLiveness:
    """Run the liveness client over one method and package the results."""
    analysis = LivenessAnalysis()
    entry = analysis.analyze(method)
    paths = _loop_paths(method)
    loop_live_by_id = {
        key: frozenset(live) for key, live in analysis.loop_live.items()
    }
    loops = tuple(
        LoopLiveness(paths[id(stmt)], stmt.index_local,
                     loop_live_by_id[id(stmt)])
        for stmt in sorted(analysis.loop_order,
                           key=lambda stmt: paths[id(stmt)])
    )
    site_live = {
        site: frozenset(live)
        for site, live in analysis.site_live.items()
    }
    return MethodLiveness(method.id, frozenset(entry), site_live, loops,
                          loop_live_by_id)
