"""Static call graphs over mini-JVM programs: CHA and RTA precision.

Two classic whole-program analyses, both *closed-world* over the declared
classes (our programs cannot load code the source does not contain):

* **CHA** (Class Hierarchy Analysis): a virtual/interface site can reach
  every implementation of its selector anywhere in the hierarchy.  This
  is the coarsest sound target set, and the one the soundness checker
  compares dynamically observed dispatch edges against.
* **RTA** (Rapid Type Analysis): a fixpoint that only admits dispatch
  targets reachable through classes actually *instantiated* in reachable
  code.  Strictly at-most-CHA per site; sites CHA calls polymorphic can
  become RTA-monomorphic when only one receiver class is ever allocated.

On top of the target sets the builder layers what a profile-free inliner
needs: per-method *static frequency estimates* (loop bounds multiply,
``If`` branches halve, frequencies propagate along call edges from the
entry), reachable/dead-method reports, and per-method size classes from
:mod:`repro.compiler.size_estimator`.  The
:class:`~repro.analysis.static_oracle.StaticOracle` consumes exactly this
graph, and ``repro analyze`` reports its statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.compiler.opt_compiler import iter_call_sites
from repro.compiler.size_estimator import classify
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.errors import ExecutionError
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (
    E_CONST, S_IF, S_INTERFACE_CALL, S_LOOP, S_NEW, S_NEWPOOL,
    S_STATIC_CALL, S_VIRTUAL_CALL,
    MethodDef, Program, Stmt,
)

#: Assumed trip count for loops whose bound is not a compile-time constant.
DEFAULT_LOOP_TRIPS = 8

#: Constant loop bounds are clamped here so nested hot loops cannot push
#: frequency estimates into overflow territory.
LOOP_TRIP_CAP = 256

#: Taken-probability assumed for each ``If`` branch.
BRANCH_PROBABILITY = 0.5

#: Contributions below this weight are not propagated further (cheap
#: cycle/termination guard for the frequency walk).
MIN_PROPAGATED_WEIGHT = 1e-9

CHA = "cha"
RTA = "rta"
PRECISIONS = (CHA, RTA)


@dataclass(frozen=True)
class CallSite:
    """One call site with its statically possible targets and frequency."""

    site: int                    #: program-unique call-site id
    caller: str                  #: enclosing method id
    kind: str                    #: "static" | "virtual" | "interface"
    selector: str                #: selector (or target id for static calls)
    targets: Tuple[str, ...]     #: sorted possible target method ids
    frequency: float             #: static execution-frequency estimate

    @property
    def monomorphic(self) -> bool:
        return len(self.targets) == 1

    @property
    def dispatched(self) -> bool:
        """True for virtual/interface sites (the ones dispatch resolves)."""
        return self.kind != "static"


@dataclass
class StaticCallGraph:
    """A whole-program call graph at one precision (CHA or RTA)."""

    program_name: str
    precision: str                       #: :data:`CHA` or :data:`RTA`
    entry: str
    sites: Dict[int, CallSite] = field(default_factory=dict)
    reachable: FrozenSet[str] = frozenset()     #: method ids, from entry
    instantiated: FrozenSet[str] = frozenset()  #: class names admitted
    method_frequency: Dict[str, float] = field(default_factory=dict)
    size_classes: Dict[str, str] = field(default_factory=dict)

    # -- target queries -------------------------------------------------------

    def targets(self, site: int) -> FrozenSet[str]:
        """Possible targets of a site (empty when the site is unknown)."""
        info = self.sites.get(site)
        return frozenset(info.targets) if info is not None else frozenset()

    def is_monomorphic(self, site: int) -> bool:
        info = self.sites.get(site)
        return info is not None and info.monomorphic

    def dispatched_sites(self) -> List[CallSite]:
        """Virtual/interface sites, in site-id order."""
        return [self.sites[s] for s in sorted(self.sites)
                if self.sites[s].dispatched]

    def monomorphic_sites(self) -> List[CallSite]:
        return [s for s in self.dispatched_sites() if s.monomorphic]

    def polymorphic_sites(self) -> List[CallSite]:
        return [s for s in self.dispatched_sites() if not s.monomorphic]

    def monomorphism_histogram(self) -> Dict[int, int]:
        """target-set size -> number of dispatched sites with that size."""
        histogram: Dict[int, int] = {}
        for info in self.dispatched_sites():
            n = len(info.targets)
            histogram[n] = histogram.get(n, 0) + 1
        return histogram

    # -- reachability ---------------------------------------------------------

    def dead_methods(self) -> List[str]:
        """Declared methods the analysis cannot reach from the entry."""
        all_ids = {f"{c}.{m}" for c, cls in self._classes_index()
                   for m in cls}
        return sorted(all_ids - set(self.reachable))

    def _classes_index(self) -> Iterable[Tuple[str, List[str]]]:
        # ``sites`` only knows reachable callers; keep an independent view
        # of the declared universe via size_classes (one entry per method).
        by_class: Dict[str, List[str]] = {}
        for method_id in self.size_classes:
            klass, _, name = method_id.partition(".")
            by_class.setdefault(klass, []).append(name)
        return by_class.items()

    # -- static hotness -------------------------------------------------------

    @property
    def total_site_frequency(self) -> float:
        return sum(info.frequency for info in self.sites.values())

    def site_weight(self, site: int) -> float:
        """A site's share of the program's total static call frequency."""
        total = self.total_site_frequency
        info = self.sites.get(site)
        if info is None or total <= 0.0:
            return 0.0
        return info.frequency / total

    # -- summaries ------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """JSON-ready statistics block for ``repro analyze``."""
        dispatched = self.dispatched_sites()
        mono = sum(1 for s in dispatched if s.monomorphic)
        return {
            "precision": self.precision,
            "methods_reachable": len(self.reachable),
            "methods_dead": len(self.dead_methods()),
            "dead_methods": self.dead_methods(),
            "classes_instantiated": len(self.instantiated),
            "call_sites": len(self.sites),
            "dispatched_sites": len(dispatched),
            "monomorphic_sites": mono,
            "polymorphic_sites": len(dispatched) - mono,
            "monomorphism_histogram": {
                str(k): v
                for k, v in sorted(self.monomorphism_histogram().items())},
        }


# -- construction -------------------------------------------------------------


def build_call_graph(program: Program,
                     hierarchy: Optional[ClassHierarchy] = None,
                     precision: str = CHA,
                     costs: CostModel = DEFAULT_COSTS) -> StaticCallGraph:
    """Build the static call graph of ``program`` at the given precision."""
    if precision not in PRECISIONS:
        raise ValueError(f"precision must be one of {PRECISIONS}, "
                         f"got {precision!r}")
    if hierarchy is None:
        hierarchy = ClassHierarchy(program)
    entry = program.entry_method()
    builder = _GraphBuilder(program, hierarchy, precision)
    reachable, instantiated = builder.fixpoint(entry)
    multipliers = {m_id: builder.site_multipliers(program.method(m_id))
                   for m_id in reachable}
    frequency = builder.propagate_frequencies(entry, multipliers)

    sites: Dict[int, CallSite] = {}
    for method_id in reachable:
        method = program.method(method_id)
        caller_freq = frequency.get(method_id, 0.0)
        for stmt in iter_call_sites(method.body):
            kind, selector = site_kind(stmt)
            sites[stmt.site] = CallSite(
                site=stmt.site, caller=method_id, kind=kind,
                selector=selector,
                targets=tuple(sorted(builder.targets(stmt))),
                frequency=caller_freq
                * multipliers[method_id].get(stmt.site, 1.0))

    size_classes = {m.id: classify(m, costs).value for m in program.methods()}
    return StaticCallGraph(
        program_name=program.name, precision=precision, entry=entry.id,
        sites=sites, reachable=frozenset(reachable),
        instantiated=frozenset(instantiated),
        method_frequency=dict(frequency), size_classes=size_classes)


def site_kind(stmt: Stmt) -> Tuple[str, str]:
    """``(kind, selector)`` of one call statement; shared with k-CFA."""
    if stmt.kind == S_STATIC_CALL:
        return "static", stmt.target
    if stmt.kind == S_VIRTUAL_CALL:
        return "virtual", stmt.selector
    return "interface", stmt.selector


def method_site_multipliers(method: MethodDef) -> Dict[int, float]:
    """Within-method execution-count estimate for each call site.

    Loop bounds multiply (clamped to :data:`LOOP_TRIP_CAP`), ``If``
    branches damp by :data:`BRANCH_PROBABILITY`.  Shared by the flat
    call-graph builder and the k-CFA frequency propagation.
    """
    out: Dict[int, float] = {}
    _walk_multipliers(method.body, 1.0, out)
    return out


class _GraphBuilder:
    """Shared machinery for the CHA/RTA construction passes."""

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 precision: str):
        self._program = program
        self._hierarchy = hierarchy
        self._precision = precision
        self._instantiated: set = set()

    # -- target sets ----------------------------------------------------------

    def targets(self, stmt: Stmt) -> set:
        """Possible target method ids of one call statement."""
        if stmt.kind == S_STATIC_CALL:
            return {stmt.target}
        if self._precision == CHA:
            return {impl.id
                    for impl in self._hierarchy.implementations(stmt.selector)}
        out = set()
        for class_name in self._instantiated:
            try:
                out.add(self._hierarchy.resolve(class_name,
                                                stmt.selector).id)
            except ExecutionError:
                continue  # this receiver class does not understand it
        return out

    # -- reachability fixpoint ------------------------------------------------

    def fixpoint(self, entry: MethodDef) -> Tuple[set, set]:
        """Reachable methods and instantiated classes, to fixpoint.

        For CHA a single traversal suffices (target sets never change);
        RTA iterates because newly admitted classes widen virtual target
        sets, which can reach new allocation sites.
        """
        reachable = {entry.id}
        changed = True
        while changed:
            changed = False
            for method_id in sorted(reachable):
                method = self._program.method(method_id)
                for class_name in _allocations(method.body):
                    if class_name not in self._instantiated:
                        self._instantiated.add(class_name)
                        changed = True
                for stmt in iter_call_sites(method.body):
                    for target in self.targets(stmt):
                        if target not in reachable:
                            reachable.add(target)
                            changed = True
        return reachable, set(self._instantiated)

    # -- static frequency estimates -------------------------------------------

    def site_multipliers(self, method: MethodDef) -> Dict[int, float]:
        """Within-method execution-count estimate for each call site."""
        out: Dict[int, float] = {}
        _walk_multipliers(method.body, 1.0, out)
        return out

    def propagate_frequencies(self, entry: MethodDef,
                              multipliers: Dict[str, Dict[int, float]]) \
            -> Dict[str, float]:
        """Propagate invocation frequencies from the entry over call edges.

        A virtual site's frequency is split evenly over its possible
        targets (no profile exists to skew it).  Edges back into a method
        already on the walk stack contribute nothing, which terminates
        recursion cleanly.
        """
        frequency: Dict[str, float] = {}
        stack: set = set()

        def contribute(method_id: str, weight: float) -> None:
            if weight < MIN_PROPAGATED_WEIGHT or method_id in stack:
                return
            frequency[method_id] = frequency.get(method_id, 0.0) + weight
            stack.add(method_id)
            try:
                method = self._program.method(method_id)
                mults = multipliers.get(method_id, {})
                for stmt in iter_call_sites(method.body):
                    site_freq = weight * mults.get(stmt.site, 1.0)
                    targets = self.targets(stmt)
                    if not targets:
                        continue
                    share = site_freq / len(targets)
                    for target in sorted(targets):
                        contribute(target, share)
            finally:
                stack.discard(method_id)

        contribute(entry.id, 1.0)
        return frequency


def _allocations(body) -> Iterable[str]:
    """Class names allocated anywhere in a body (nested blocks included)."""
    for stmt in body:
        k = stmt.kind
        if k == S_NEW:
            yield stmt.class_name
        elif k == S_NEWPOOL:
            yield from stmt.class_names
        elif k == S_IF:
            yield from _allocations(stmt.then_body)
            yield from _allocations(stmt.else_body)
        elif k == S_LOOP:
            yield from _allocations(stmt.body)


def _walk_multipliers(body, mult: float, out: Dict[int, float]) -> None:
    for stmt in body:
        k = stmt.kind
        if k in (S_STATIC_CALL, S_VIRTUAL_CALL, S_INTERFACE_CALL):
            out[stmt.site] = mult
        elif k == S_IF:
            _walk_multipliers(stmt.then_body, mult * BRANCH_PROBABILITY, out)
            _walk_multipliers(stmt.else_body, mult * BRANCH_PROBABILITY, out)
        elif k == S_LOOP:
            if stmt.count.kind == E_CONST and isinstance(stmt.count.value,
                                                         int):
                trips = min(max(stmt.count.value, 0), LOOP_TRIP_CAP)
            else:
                trips = DEFAULT_LOOP_TRIPS
            _walk_multipliers(stmt.body, mult * trips, out)
