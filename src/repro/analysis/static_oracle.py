"""A profile-free inline oracle driven by the static call graph.

This is the baseline the paper argues *against*: every inlining decision
is made from information available before the program runs -- the class
hierarchy, the :class:`~repro.analysis.callgraph.StaticCallGraph` target
sets, and its static frequency estimates.  No dynamic call graph, no
context-sensitive rules, no receiver-skew data.

Decision rules, per site:

* statically-bound callees go through the same tiny/small size screens as
  the adaptive oracle, but where the adaptive oracle consults the profile
  (medium callees, small callees past budget) this one consults the
  static frequency estimate instead (:data:`ReasonCode.STATIC_HOT` /
  :data:`ReasonCode.STATIC_COLD`);
* virtual sites that whole-program CHA binds (a sole implementation)
  inline directly, exactly like the adaptive oracle;
* virtual sites the graph proves monomorphic at RTA precision inline
  behind a method-test guard (the analysis is sound over the whole run,
  but a guard keeps execution correct even against analysis bugs);
* everything else is refused with :data:`ReasonCode.STATIC_POLY` -- with
  no profile there is nothing to pick a target with, which is precisely
  the gap online profile-directed inlining exists to fill.

The oracle plugs into the unmodified adaptive machinery (hot-method
sampling, OSR, recompilation) via the controller's ``oracle_factory``
hook, so a ``static`` sweep cell differs from ``cins`` *only* in how
inlining decisions are made.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.callgraph import StaticCallGraph
from repro.analysis.kcfa import CallString, ContextSensitiveCallGraph
from repro.compiler.oracle import (Decision, DependencySink, InlineOracle,
                                   RefusalSink)
from repro.compiler.size_estimator import (SizeClass, classify,
                                           count_constant_args,
                                           estimate_inlined_bytecodes)
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import MethodDef, Program
from repro.profiles.trace import Context
from repro.provenance.reasons import GUARD_METHOD_TEST, ReasonCode
from repro.provenance.recorder import NULL_PROVENANCE
from repro.telemetry.recorder import NULL_RECORDER


class StaticOracle(InlineOracle):
    """Inlining policy using only the static call graph (no profile)."""

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 costs: CostModel, graph: StaticCallGraph,
                 on_refusal: Optional[RefusalSink] = None,
                 on_cha_dependency: Optional[DependencySink] = None,
                 telemetry=NULL_RECORDER, provenance=NULL_PROVENANCE):
        super().__init__(program, hierarchy, costs, rules=(),
                         on_refusal=on_refusal, dcg=None,
                         on_cha_dependency=on_cha_dependency,
                         telemetry=telemetry, provenance=provenance)
        self._graph = graph
        # A site is "statically hot" when its share of the program's total
        # static call frequency crosses the same threshold the adaptive
        # system applies to profiled edges -- the closest static analogue
        # of the paper's hot-edge test.
        self._hot_threshold = costs.hot_edge_threshold

    # -- static hotness -------------------------------------------------------

    def _statically_hot(self, site: int) -> bool:
        return self._graph.site_weight(site) >= self._hot_threshold

    # -- statically-bound callees ---------------------------------------------

    def _decide_bound(self, target: MethodDef, stmt, comp_context: Context,
                      depth: int, current_size: int,
                      root: MethodDef) -> Decision:
        """Size screens as in the adaptive oracle, static hotness instead
        of profile predictions past the tiny/small fast path."""
        costs = self._costs
        caller_id, site = comp_context[0]

        if self._is_recursive(target, comp_context, root):
            return self._refuse(caller_id, site, target.id,
                                ReasonCode.RECURSIVE)
        if depth >= costs.max_inline_depth:
            return Decision.no(ReasonCode.DEPTH)

        const_args = count_constant_args(stmt.args)
        size_class = classify(target, costs, const_args)
        if size_class is SizeClass.LARGE:
            return self._refuse(caller_id, site, target.id, ReasonCode.LARGE,
                                size_class=size_class)

        estimate = estimate_inlined_bytecodes(target, const_args)
        if current_size + estimate > costs.absolute_size_cap:
            return self._refuse(caller_id, site, target.id, ReasonCode.SPACE,
                                size_class=size_class, estimate=estimate)

        if size_class is SizeClass.TINY:
            return Decision.direct(target, ReasonCode.TINY,
                                   size_class=size_class, estimate=estimate)

        weight = self._graph.site_weight(stmt.site)
        if size_class is SizeClass.SMALL:
            budget = max(root.bytecodes * costs.space_expansion_factor,
                         4.0 * costs.small_limit)
            if current_size + estimate <= budget:
                return Decision.direct(target, ReasonCode.SMALL,
                                       size_class=size_class,
                                       estimate=estimate)
            if self._statically_hot(stmt.site):
                return Decision.direct(target, ReasonCode.STATIC_HOT,
                                       size_class=size_class,
                                       estimate=estimate, weight=weight)
            return self._refuse(caller_id, site, target.id, ReasonCode.BUDGET,
                                size_class=size_class, estimate=estimate)

        # MEDIUM: where the adaptive oracle needs a profile prediction,
        # the static oracle needs a static hotness estimate.
        if self._statically_hot(stmt.site):
            return Decision.direct(target, ReasonCode.STATIC_HOT,
                                   size_class=size_class, estimate=estimate,
                                   weight=weight)
        return Decision.no(ReasonCode.STATIC_COLD, size_class=size_class,
                           estimate=estimate, weight=weight)

    # -- virtual sites --------------------------------------------------------

    def _decide_virtual(self, stmt, comp_context: Context, depth: int,
                        current_size: int, root: MethodDef) -> Decision:
        declared_sole = self._hierarchy.sole_implementation(stmt.selector)
        if declared_sole is not None:
            # Whole-program CHA binds the site; no guard needed in our
            # closed world (no class outside the program can ever load).
            return self._decide_bound(declared_sole, stmt, comp_context,
                                      depth, current_size, root)

        targets = self._graph.targets(stmt.site)
        if len(targets) == 1:
            # RTA-monomorphic: only one receiver class is ever allocated
            # program-wide.  Sound for the whole run, but inline behind a
            # method-test guard so execution stays correct regardless.
            target = self._program.method(next(iter(targets)))
            decision = self._decide_bound(target, stmt, comp_context, depth,
                                          current_size, root)
            if not decision.inline:
                return decision
            return Decision.guarded_inline(
                [target], reason=decision.reason,
                size_class=decision.size_class, estimate=decision.estimate,
                weight=decision.weight, guard_kind=GUARD_METHOD_TEST)

        # Polymorphic in the static view: without a profile there is no
        # basis for picking guard targets (the paper's whole point).
        return Decision.no(ReasonCode.STATIC_POLY,
                           weight=self._graph.site_weight(stmt.site))


class StaticContextOracle(StaticOracle):
    """A static oracle that conditions on the compilation context via k-CFA.

    The profile-free analogue of the paper's context-sensitive profiles:
    where :class:`StaticOracle` sees one RTA target set per site, this
    oracle asks the :class:`~repro.analysis.kcfa.ContextSensitiveCallGraph`
    what the site can dispatch to *given the inline chain above it* -- the
    known prefix of the dynamic call string, matched Equation-3 style
    against the analysis contexts (agree on the overlap, wildcard beyond).

    Two upgrades over the flat static oracle follow:

    * **guard elimination** -- a site whose every compatible context is
      monomorphic inlines *directly* (:data:`ReasonCode.STATIC_CTX_MONO`);
      the analysis is whole-program over our closed world, so like a
      declared sole implementation it needs no method-test guard (the
      dynamic lattice-soundness check polices the analysis itself);
    * **context rescue** -- sites RTA refuses as polymorphic inline once
      the context disambiguates them, which is exactly what ``decisions
      diff`` vs the ``static`` family attributes.

    Sites that stay polymorphic even under the context refuse with
    :data:`ReasonCode.STATIC_CTX_POLY`.  Hotness screens stay on the
    *flat* site weight: a context's share of a site's frequency is never
    larger than the site total, so comparing per-context weight against
    the same threshold would only refuse more bound callees -- starving
    the inlining that deepens compilation contexts in the first place.
    The context-conditioned frequency is reported as decision evidence
    instead.
    """

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 costs: CostModel, graph: StaticCallGraph,
                 kgraph: ContextSensitiveCallGraph,
                 on_refusal: Optional[RefusalSink] = None,
                 on_cha_dependency: Optional[DependencySink] = None,
                 telemetry=NULL_RECORDER, provenance=NULL_PROVENANCE):
        super().__init__(program, hierarchy, costs, graph,
                         on_refusal=on_refusal,
                         on_cha_dependency=on_cha_dependency,
                         telemetry=telemetry, provenance=provenance)
        self._kgraph = kgraph
        self._known_prefix: CallString = ()

    def decide(self, stmt, comp_context: Context, depth: int,
               current_size: int, root: MethodDef) -> Decision:
        # ``comp_context[0]`` is (enclosing method, this site); the sites
        # of the elements above it are the call string through which the
        # enclosing method is reached in this compilation -- the provable
        # innermost-first prefix of any dynamic call string at the site.
        self._known_prefix = tuple(site for _caller, site
                                   in comp_context[1:])
        try:
            return super().decide(stmt, comp_context, depth, current_size,
                                  root)
        finally:
            self._known_prefix = ()

    def _decide_virtual(self, stmt, comp_context: Context, depth: int,
                        current_size: int, root: MethodDef) -> Decision:
        declared_sole = self._hierarchy.sole_implementation(stmt.selector)
        if declared_sole is not None:
            return self._decide_bound(declared_sole, stmt, comp_context,
                                      depth, current_size, root)

        weight = self._kgraph.prefix_weight(stmt.site, self._known_prefix)
        targets = self._kgraph.targets_for_prefix(stmt.site,
                                                  self._known_prefix)
        if len(targets) == 1:
            # Context-monomorphic: every analysis call string compatible
            # with the compilation context reaches this one target, so
            # the devirtualization needs no guard.
            target = self._program.method(next(iter(targets)))
            decision = self._decide_bound(target, stmt, comp_context,
                                          depth, current_size, root)
            if not decision.inline:
                return decision
            return Decision.direct(target, ReasonCode.STATIC_CTX_MONO,
                                   size_class=decision.size_class,
                                   estimate=decision.estimate,
                                   weight=weight)

        # Multiple targets survive even conditioned on the context (or
        # the analysis proves the site unreachable under it -- nothing to
        # gain from inlining dead dispatch either way).
        return Decision.no(ReasonCode.STATIC_CTX_POLY, weight=weight)
