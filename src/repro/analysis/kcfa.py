"""k-CFA: context-sensitive static call graphs over mini-JVM programs.

Where CHA and RTA (:mod:`repro.analysis.callgraph`) compute one target set
per call site, k-CFA qualifies every site by the *call string* through
which its enclosing method was reached -- the innermost ``k`` call-site
ids.  The analysis is a whole-program worklist fixpoint over
``(method, context)`` pairs with a flow-insensitive-per-context abstract
domain: each value abstracts to the ``frozenset`` of class names it may
hold (integers and other non-objects abstract to the empty set).

Precision forms a lattice by construction:

* **0-CFA refines RTA**: receiver sets only contain classes allocated in
  0-CFA-reachable code, which is a subset of RTA-reachable code, so every
  0-CFA target at a site is an RTA target.
* **k-CFA refines (k-1)-CFA**: truncating a k-context onto its (k-1)
  prefix commutes with context extension
  (``push_k(s, c)[:k-1] == push_{k-1}(s, c[:k-1])``), so merging a
  k-graph's contexts by that prefix yields exactly the (k-1) abstract
  states joined -- target sets per truncated context can only grow.

The dynamic soundness checker (:mod:`repro.analysis.soundness`) asserts
the full chain ``observed ⊆ kCFA(ctx) ⊆ 0CFA ⊆ RTA ⊆ CHA`` on replayed
workloads, and the precision-lattice report
(:mod:`repro.analysis.lattice`) quantifies how much each tier narrows.

Frequencies mirror the flat builder: loop bounds multiply (clamped),
``If`` branches halve, and invocation weight propagates from the entry --
but per *(method, context)* pair, split over a virtual site's targets in
proportion to how many receiver classes resolve to each, so a context
that proves a site monomorphic concentrates its whole weight on the one
target.  This is what lets :class:`~repro.analysis.static_oracle.
StaticContextOracle` rank context-qualified inlining candidates without
any dynamic profile.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import (MIN_PROPAGATED_WEIGHT,
                                      method_site_multipliers, site_kind)
from repro.compiler.opt_compiler import iter_call_sites
from repro.compiler.size_estimator import classify
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.errors import ExecutionError
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (
    E_ARG, E_LOCAL, E_PICK,
    S_IF, S_INTERFACE_CALL, S_LET, S_LOOP, S_NEW, S_NEWPOOL,
    S_RETURN, S_STATIC_CALL, S_VIRTUAL_CALL,
    Expr, Program,
)

#: A call string: innermost-first call-site ids, at most ``k`` of them.
#: Site ids are program-unique, so a site id determines its caller and
#: the string doubles as a (caller, site) chain.
CallString = Tuple[int, ...]

#: The empty abstract value (no classes: integers, unanalyzed flows).
NO_CLASSES: FrozenSet[str] = frozenset()

#: Context depths the analysis is exercised at by ``repro analyze``.
SUPPORTED_KS = (0, 1, 2)

#: Hard ceiling on ``k`` -- call-string spaces grow geometrically and
#: nothing in the paper's evaluation needs deeper strings.
MAX_K = 8

_MethodContext = Tuple[str, CallString]


def truncate(call_string: CallString, k: int) -> CallString:
    """Keep the innermost ``k`` elements of a call string."""
    return call_string[:k]


def extend(site: int, call_string: CallString, k: int) -> CallString:
    """The callee context for a call at ``site`` under ``call_string``."""
    if k == 0:
        return ()
    return ((site,) + call_string)[:k]


def strings_compatible(known: CallString, full: CallString) -> bool:
    """Equation-3-style partial match on call strings.

    ``known`` is the prefix the compiler can prove (inlining chain below
    the compilation root); ``full`` is an analysis context.  They are
    compatible when they agree on their overlap -- the unknown remainder
    is treated as wildcard, exactly like
    :func:`repro.profiles.partial_match.contexts_compatible`.
    """
    return all(a == b for a, b in zip(known, full))


@dataclass(frozen=True)
class ContextTargets:
    """Targets and static frequency of one ``(site, context)`` pair."""

    context: CallString
    targets: Tuple[str, ...]     #: sorted possible target method ids
    frequency: float             #: static execution-frequency estimate
    #: per-target share of ``frequency`` (receiver-class-count weighted),
    #: sorted by target id
    target_weights: Tuple[Tuple[str, float], ...]

    @property
    def monomorphic(self) -> bool:
        return len(self.targets) == 1

    def majority_target(self) -> Optional[str]:
        """Highest-weight target (lexicographic tie-break), or None."""
        if not self.targets:
            return None
        return min(self.target_weights,
                   key=lambda tw: (-tw[1], tw[0]))[0]


@dataclass
class KSite:
    """One call site with its per-context target sets."""

    site: int                    #: program-unique call-site id
    caller: str                  #: enclosing method id
    kind: str                    #: "static" | "virtual" | "interface"
    selector: str                #: selector (or target id for static calls)
    by_context: Dict[CallString, ContextTargets] = field(default_factory=dict)

    @property
    def dispatched(self) -> bool:
        return self.kind != "static"

    def union_targets(self) -> FrozenSet[str]:
        """Targets joined over every analysis context."""
        out: Set[str] = set()
        for info in self.by_context.values():
            out.update(info.targets)
        return frozenset(out)

    @property
    def context_monomorphic(self) -> bool:
        """True when *every* context proves the site monomorphic."""
        return bool(self.by_context) and all(
            info.monomorphic for info in self.by_context.values())

    @property
    def frequency(self) -> float:
        return sum(info.frequency for info in self.by_context.values())


@dataclass
class ContextSensitiveCallGraph:
    """A whole-program call graph keyed by k-bounded call strings."""

    program_name: str
    k: int
    entry: str
    sites: Dict[int, KSite] = field(default_factory=dict)
    #: method id -> sorted analysis contexts it was analyzed under
    contexts: Dict[str, Tuple[CallString, ...]] = field(default_factory=dict)
    #: (method id, context) -> static invocation-frequency estimate
    method_frequency: Dict[_MethodContext, float] = field(default_factory=dict)
    size_classes: Dict[str, str] = field(default_factory=dict)

    @property
    def precision(self) -> str:
        return f"{self.k}cfa"

    @property
    def reachable(self) -> FrozenSet[str]:
        return frozenset(self.contexts)

    # -- target queries -------------------------------------------------------

    def targets(self, site: int,
                context: Optional[CallString] = None) -> FrozenSet[str]:
        """Possible targets of a site, optionally under one exact context.

        With ``context=None`` this is the context-insensitive join -- the
        set a flat consumer (soundness containment vs RTA, lattice sizes)
        should compare against.
        """
        info = self.sites.get(site)
        if info is None:
            return frozenset()
        if context is None:
            return info.union_targets()
        ctx = self.sites[site].by_context.get(truncate(context, self.k))
        return frozenset(ctx.targets) if ctx is not None else frozenset()

    def targets_for_prefix(self, site: int,
                           known: CallString) -> FrozenSet[str]:
        """Targets joined over every context compatible with ``known``.

        ``known`` is a (possibly shorter than k) innermost-first prefix
        of call-site ids the caller can prove -- e.g. the inlining chain
        above a compilation point.  Contexts are matched Equation-3
        style: agree on the overlap, wildcard beyond it.  The join over
        all compatible contexts keeps the answer sound for any concrete
        execution whose call string extends ``known``.
        """
        info = self.sites.get(site)
        if info is None:
            return frozenset()
        known = truncate(known, self.k)
        out: Set[str] = set()
        for ctx, targets in info.by_context.items():
            if strings_compatible(known, ctx):
                out.update(targets.targets)
        return frozenset(out)

    def prefix_weight(self, site: int, known: CallString) -> float:
        """Share of total static call frequency reaching ``site`` through
        contexts compatible with ``known``."""
        info = self.sites.get(site)
        total = self.total_site_frequency
        if info is None or total <= 0.0:
            return 0.0
        known = truncate(known, self.k)
        freq = sum(ct.frequency for ctx, ct in info.by_context.items()
                   if strings_compatible(known, ctx))
        return freq / total

    def predicted_majority(self, site: int,
                           context: CallString) -> Optional[str]:
        """The statically predicted most-likely target under a context.

        Joins target weights over every analysis context compatible with
        ``context`` (truncated to k) and returns the argmax, breaking
        ties toward the lexicographically smallest target id.  This is
        the prediction the precision-lattice report scores against the
        dynamic CCT's per-context majority.
        """
        info = self.sites.get(site)
        if info is None:
            return None
        known = truncate(context, self.k)
        weights: Dict[str, float] = {}
        for ctx, ct in info.by_context.items():
            if not strings_compatible(known, ctx):
                continue
            for target, w in ct.target_weights:
                weights[target] = weights.get(target, 0.0) + w
        if not weights:
            return None
        return min(weights, key=lambda t: (-weights[t], t))

    def is_monomorphic(self, site: int) -> bool:
        """Context-insensitive monomorphism (parity with StaticCallGraph)."""
        info = self.sites.get(site)
        return info is not None and len(info.union_targets()) == 1

    def context_monomorphic(self, site: int) -> bool:
        """True when every analysis context pins the site to one target."""
        info = self.sites.get(site)
        return info is not None and info.context_monomorphic

    def dispatched_sites(self) -> List[KSite]:
        return [self.sites[s] for s in sorted(self.sites)
                if self.sites[s].dispatched]

    # -- static hotness -------------------------------------------------------

    @property
    def total_site_frequency(self) -> float:
        return sum(info.frequency for info in self.sites.values())

    def site_weight(self, site: int) -> float:
        """A site's share of total static call frequency (all contexts)."""
        total = self.total_site_frequency
        info = self.sites.get(site)
        if info is None or total <= 0.0:
            return 0.0
        return info.frequency / total

    # -- summaries ------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """JSON-ready statistics block for ``repro analyze``."""
        dispatched = self.dispatched_sites()
        union_mono = sum(1 for s in dispatched
                         if len(s.union_targets()) == 1)
        ctx_mono = sum(1 for s in dispatched if s.context_monomorphic)
        n_contexts = sum(len(ctxs) for ctxs in self.contexts.values())
        return {
            "precision": self.precision,
            "k": self.k,
            "methods_reachable": len(self.contexts),
            "method_contexts": n_contexts,
            "max_contexts_per_method": max(
                (len(c) for c in self.contexts.values()), default=0),
            "call_sites": len(self.sites),
            "dispatched_sites": len(dispatched),
            "monomorphic_sites": union_mono,
            "polymorphic_sites": len(dispatched) - union_mono,
            "context_monomorphic_sites": ctx_mono,
            "context_rescued_sites": ctx_mono - union_mono,
        }


# -- construction -------------------------------------------------------------


def build_kcfa_graph(program: Program,
                     hierarchy: Optional[ClassHierarchy] = None,
                     k: int = 1,
                     costs: CostModel = DEFAULT_COSTS) \
        -> ContextSensitiveCallGraph:
    """Run the k-CFA fixpoint over ``program`` and package the result."""
    if not 0 <= k <= MAX_K:
        raise ValueError(f"k must be in [0, {MAX_K}], got {k!r}")
    if hierarchy is None:
        hierarchy = ClassHierarchy(program)
    builder = _KCFABuilder(program, hierarchy, k)
    return builder.build(costs)


class _KCFABuilder:
    """Worklist fixpoint over ``(method, call-string)`` analysis pairs.

    Per pair the builder keeps joined abstract parameter values and an
    abstract return value; per ``(site, context-of-caller)`` it keeps the
    resolved target set together with how many receiver classes chose
    each target.  Everything is monotone over finite powerset lattices,
    so the worklist terminates.
    """

    def __init__(self, program: Program, hierarchy: ClassHierarchy, k: int):
        self._program = program
        self._hierarchy = hierarchy
        self._k = k
        #: joined abstract parameter values per analysis pair
        self._params: Dict[_MethodContext, List[FrozenSet[str]]] = {}
        #: joined abstract return value per analysis pair
        self._returns: Dict[_MethodContext, FrozenSet[str]] = {}
        #: callee pair -> caller pairs to re-analyze when its return grows
        self._return_deps: Dict[_MethodContext, Set[_MethodContext]] = {}
        #: (site, caller context) -> target id -> receiver-class count
        #: (count 1 for static calls)
        self._site_targets: Dict[Tuple[int, CallString],
                                 Dict[str, int]] = {}
        self._worklist: deque = deque()
        self._queued: Set[_MethodContext] = set()

    # -- driver ---------------------------------------------------------------

    def build(self, costs: CostModel) -> ContextSensitiveCallGraph:
        entry = self._program.entry_method()
        entry_key = (entry.id, ())
        self._params[entry_key] = [NO_CLASSES] * entry.num_params
        self._enqueue(entry_key)
        while self._worklist:
            key = self._worklist.popleft()
            self._queued.discard(key)
            self._analyze(key)
        return self._package(entry.id, costs)

    def _enqueue(self, key: _MethodContext) -> None:
        if key not in self._queued:
            self._queued.add(key)
            self._worklist.append(key)

    # -- one (method, context) pass -------------------------------------------

    def _analyze(self, key: _MethodContext) -> None:
        method_id, ctx = key
        method = self._program.method(method_id)
        params = self._params[key]
        locals_: Dict[int, FrozenSet[str]] = {}
        returns: Set[str] = set(self._returns.get(key, NO_CLASSES))
        # Iterate the body to a local fixpoint: bodies are flow-insensitive
        # per context (locals join over all assignments), and a loop can
        # feed a local back into itself via a callee's return value.
        changed = True
        while changed:
            changed = self._walk(method.body, key, params, locals_, returns)
        new_ret = frozenset(returns)
        if new_ret != self._returns.get(key, NO_CLASSES):
            self._returns[key] = new_ret
            for caller in self._return_deps.get(key, ()):
                self._enqueue(caller)

    def _walk(self, body, key: _MethodContext,
              params: List[FrozenSet[str]],
              locals_: Dict[int, FrozenSet[str]],
              returns: Set[str]) -> bool:
        changed = False
        for stmt in body:
            sk = stmt.kind
            if sk == S_LET:
                changed |= self._assign(
                    locals_, stmt.dst,
                    self._eval(stmt.expr, params, locals_))
            elif sk == S_NEW:
                changed |= self._assign(locals_, stmt.dst,
                                        frozenset((stmt.class_name,)))
            elif sk == S_NEWPOOL:
                changed |= self._assign(locals_, stmt.dst,
                                        frozenset(stmt.class_names))
            elif sk == S_IF:
                changed |= self._walk(stmt.then_body, key, params,
                                      locals_, returns)
                changed |= self._walk(stmt.else_body, key, params,
                                      locals_, returns)
            elif sk == S_LOOP:
                changed |= self._walk(stmt.body, key, params, locals_,
                                      returns)
            elif sk == S_STATIC_CALL:
                changed |= self._flow_static(stmt, key, params, locals_)
            elif sk in (S_VIRTUAL_CALL, S_INTERFACE_CALL):
                changed |= self._flow_virtual(stmt, key, params, locals_)
            elif sk == S_RETURN and stmt.expr is not None:
                before = len(returns)
                returns.update(self._eval(stmt.expr, params, locals_))
                changed |= len(returns) != before
        return changed

    @staticmethod
    def _assign(locals_: Dict[int, FrozenSet[str]], dst: int,
                value: FrozenSet[str]) -> bool:
        old = locals_.get(dst, NO_CLASSES)
        if value <= old:
            return False
        locals_[dst] = old | value
        return True

    def _eval(self, expr: Expr, params: List[FrozenSet[str]],
              locals_: Dict[int, FrozenSet[str]]) -> FrozenSet[str]:
        ek = expr.kind
        if ek == E_ARG:
            return (params[expr.index]
                    if expr.index < len(params) else NO_CLASSES)
        if ek == E_LOCAL:
            return locals_.get(expr.index, NO_CLASSES)
        if ek == E_PICK:
            # Pick selects one pool element; abstractly the pool's set.
            return self._eval(expr.pool, params, locals_)
        # Const and arithmetic produce integers -- no classes.
        return NO_CLASSES

    # -- call edges -----------------------------------------------------------

    def _flow_static(self, stmt, key: _MethodContext,
                     params: List[FrozenSet[str]],
                     locals_: Dict[int, FrozenSet[str]]) -> bool:
        _method_id, ctx = key
        arg_vals = [self._eval(a, params, locals_) for a in stmt.args]
        self._record_targets(stmt.site, ctx, {stmt.target: 1})
        callee_ctx = extend(stmt.site, ctx, self._k)
        self._join_call(stmt.target, callee_ctx, arg_vals)
        return self._flow_return(stmt, key, (stmt.target, callee_ctx),
                                 locals_)

    def _flow_virtual(self, stmt, key: _MethodContext,
                      params: List[FrozenSet[str]],
                      locals_: Dict[int, FrozenSet[str]]) -> bool:
        _method_id, ctx = key
        receivers = self._eval(stmt.receiver, params, locals_)
        arg_vals = [self._eval(a, params, locals_) for a in stmt.args]
        # Receiver splitting: group receiver classes by the method each
        # resolves to, so a callee's ``this`` only sees classes that
        # actually dispatch to it.
        by_target: Dict[str, Set[str]] = {}
        for class_name in receivers:
            try:
                target = self._hierarchy.resolve(class_name, stmt.selector)
            except ExecutionError:
                continue  # this receiver class does not understand it
            by_target.setdefault(target.id, set()).add(class_name)
        self._record_targets(
            stmt.site, ctx,
            {t: len(classes) for t, classes in by_target.items()})
        changed = False
        callee_ctx = extend(stmt.site, ctx, self._k)
        for target_id in sorted(by_target):
            callee_args = [frozenset(by_target[target_id])] + arg_vals
            self._join_call(target_id, callee_ctx, callee_args)
            changed |= self._flow_return(stmt, key,
                                         (target_id, callee_ctx), locals_)
        return changed

    def _join_call(self, target_id: str, callee_ctx: CallString,
                   arg_vals: List[FrozenSet[str]]) -> None:
        callee_key = (target_id, callee_ctx)
        target = self._program.method(target_id)
        params = self._params.get(callee_key)
        if params is None:
            params = [NO_CLASSES] * target.num_params
            self._params[callee_key] = params
            self._enqueue(callee_key)
        grew = False
        for i, val in enumerate(arg_vals[:target.num_params]):
            if not val <= params[i]:
                params[i] = params[i] | val
                grew = True
        if grew:
            self._enqueue(callee_key)

    def _flow_return(self, stmt, caller_key: _MethodContext,
                     callee_key: _MethodContext,
                     locals_: Dict[int, FrozenSet[str]]) -> bool:
        self._return_deps.setdefault(callee_key, set()).add(caller_key)
        if stmt.dst is None:
            return False
        ret = self._returns.get(callee_key, NO_CLASSES)
        if not ret:
            return False
        return self._assign(locals_, stmt.dst, ret)

    def _record_targets(self, site: int, ctx: CallString,
                        counts: Dict[str, int]) -> None:
        slot = self._site_targets.setdefault((site, ctx), {})
        for target, count in counts.items():
            if count > slot.get(target, 0):
                slot[target] = count

    # -- frequency propagation ------------------------------------------------

    def _propagate(self, entry_id: str,
                   multipliers: Dict[str, Dict[int, float]]) \
            -> Dict[_MethodContext, float]:
        """Invocation frequency per ``(method, context)`` pair.

        Same regime as the flat builder -- loop/branch multipliers within
        a method, even propagation along call edges -- except the split
        over a virtual site's targets is weighted by how many receiver
        classes resolve to each, and edges back into a pair already on
        the walk stack contribute nothing (terminates recursion).
        """
        frequency: Dict[_MethodContext, float] = {}
        stack: Set[_MethodContext] = set()

        def contribute(key: _MethodContext, weight: float) -> None:
            if weight < MIN_PROPAGATED_WEIGHT or key in stack:
                return
            frequency[key] = frequency.get(key, 0.0) + weight
            stack.add(key)
            try:
                method_id, ctx = key
                method = self._program.method(method_id)
                mults = multipliers.get(method_id, {})
                for stmt in iter_call_sites(method.body):
                    counts = self._site_targets.get((stmt.site, ctx))
                    if not counts:
                        continue
                    site_freq = weight * mults.get(stmt.site, 1.0)
                    total = sum(counts.values())
                    callee_ctx = extend(stmt.site, ctx, self._k)
                    for target in sorted(counts):
                        contribute((target, callee_ctx),
                                   site_freq * counts[target] / total)
            finally:
                stack.discard(key)

        contribute((entry_id, ()), 1.0)
        return frequency

    # -- packaging ------------------------------------------------------------

    def _package(self, entry_id: str,
                 costs: CostModel) -> ContextSensitiveCallGraph:
        contexts: Dict[str, Set[CallString]] = {}
        for method_id, ctx in self._params:
            contexts.setdefault(method_id, set()).add(ctx)
        multipliers = {m_id: method_site_multipliers(
            self._program.method(m_id)) for m_id in contexts}
        frequency = self._propagate(entry_id, multipliers)

        sites: Dict[int, KSite] = {}
        for method_id, method_ctxs in contexts.items():
            method = self._program.method(method_id)
            mults = multipliers[method_id]
            for stmt in iter_call_sites(method.body):
                kind, selector = site_kind(stmt)
                ksite = sites.setdefault(stmt.site, KSite(
                    site=stmt.site, caller=method_id, kind=kind,
                    selector=selector))
                for ctx in method_ctxs:
                    counts = self._site_targets.get((stmt.site, ctx))
                    if not counts:
                        continue
                    freq = (frequency.get((method_id, ctx), 0.0)
                            * mults.get(stmt.site, 1.0))
                    total = sum(counts.values())
                    ksite.by_context[ctx] = ContextTargets(
                        context=ctx,
                        targets=tuple(sorted(counts)),
                        frequency=freq,
                        target_weights=tuple(
                            (t, freq * counts[t] / total)
                            for t in sorted(counts)))

        size_classes = {m.id: classify(m, costs).value
                        for m in self._program.methods()}
        return ContextSensitiveCallGraph(
            program_name=self._program.name, k=self._k, entry=entry_id,
            sites=sites,
            contexts={m: tuple(sorted(ctxs))
                      for m, ctxs in sorted(contexts.items())},
            method_frequency=frequency, size_classes=size_classes)
