"""The ``repro analyze`` report: versioned JSON plus a human summary.

One report bundles, per program: the verifier verdict (with every
structured error), call-graph statistics at the requested precision
tiers (CHA and RTA by default; ``0cfa``/``kcfa`` add the
context-sensitive graphs), and -- unless disabled -- the dynamic
soundness check proving the static target sets contain every dispatch
edge a fixed-seed run executes.  ``lattice=True`` additionally embeds
the full precision-lattice comparison (per-site set sizes across
``CHA ⊇ RTA ⊇ 0CFA ⊇ 1CFA ⊇ 2CFA ⊇ observed``, context-rescued sites,
and per-tier precision scores against the dynamic CCT) and upgrades the
soundness section to check every tier of the chain from one replay.

Versioning follows the provenance layer's policy: the payload carries
``schema = "repro.analysis/v1"``; adding fields is backward compatible,
renaming or removing them bumps the version.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Sequence

from repro.analysis.callgraph import CHA, RTA, build_call_graph
from repro.analysis.kcfa import build_kcfa_graph
from repro.analysis.lattice import (LATTICE_KS, build_lattice_report,
                                    lattice_to_json)
from repro.analysis.dataflow import static_speculation_summary
from repro.analysis.soundness import (check_containment,
                                      check_elision_soundness,
                                      check_lattice_soundness,
                                      check_osr_soundness,
                                      observe_context_edges,
                                      observe_dispatch_edges)
from repro.analysis.verifier import verify_program
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.errors import ConfigError
from repro.jvm.program import Program

#: Versioned schema identifier written into every analyze report.
ANALYSIS_SCHEMA = "repro.analysis/v1"

#: Precision tiers ``repro analyze --precision`` accepts.  ``0cfa`` is
#: the context-insensitive control-flow analysis; ``kcfa`` is the
#: k-bounded call-string analysis at the report's ``k``.
ANALYZE_PRECISIONS = (CHA, RTA, "0cfa", "kcfa")

#: Default tier selection, matching the pre-lattice report shape.
DEFAULT_PRECISIONS = (CHA, RTA)


def analyze_program(program: Program, costs: CostModel = DEFAULT_COSTS,
                    soundness: bool = True, phase: float = 0.0,
                    precisions: Sequence[str] = DEFAULT_PRECISIONS,
                    lattice: bool = False, k: int = 2,
                    speculation: bool = False,
                    deopt: bool = False) \
        -> Dict[str, object]:
    """Full analysis of one program, as a JSON-ready dict.

    The verifier always runs.  The call graphs and the soundness replay
    only run when verification passes -- building a call graph over a
    malformed program would crash on exactly the defects the verifier
    just diagnosed.

    ``precisions`` selects which call-graph summaries the report
    carries (:data:`ANALYZE_PRECISIONS`); ``kcfa`` summaries are keyed
    by their concrete depth (``"2cfa"`` for ``k=2``).  ``lattice=True``
    adds the tiered per-site comparison and widens the soundness check
    to the whole precision chain, reusing a single context-qualified
    replay for both.  ``speculation=True`` adds the speculation-risk
    section: the static dataflow summary, an elision-replay soundness
    check (speculation forced on), and the guard-cycle comparison
    against a speculation-off baseline run.  ``deopt=True`` adds the
    deoptimization-planning section: the per-method OSR-point table
    (liveness-derived live-set sizes), the OSR live-state soundness
    replay, the per-strategy site counts the planner chose, and the
    planned-vs-guard cycle delta.
    """
    verification = verify_program(program)
    payload: Dict[str, object] = {
        "program": program.name,
        "verifier": {
            "ok": verification.ok,
            "methods_checked": verification.methods_checked,
            "sites_checked": verification.sites_checked,
            "errors": [dataclasses.asdict(e) for e in verification.errors],
        },
    }
    if not verification.ok:
        return payload

    summaries: Dict[str, object] = {}
    for precision in precisions:
        if precision in (CHA, RTA):
            graph = build_call_graph(program, precision=precision,
                                     costs=costs)
            summaries[precision] = graph.summary()
        elif precision == "0cfa":
            summaries["0cfa"] = build_kcfa_graph(program, k=0,
                                                 costs=costs).summary()
        elif precision == "kcfa":
            kgraph = build_kcfa_graph(program, k=k, costs=costs)
            summaries[kgraph.precision] = kgraph.summary()
        else:
            raise ConfigError(f"unknown analysis precision {precision!r}; "
                              f"expected one of {ANALYZE_PRECISIONS}")
    payload["callgraph"] = summaries

    edges = None
    if lattice:
        # One context-qualified replay feeds the lattice report and --
        # when enabled -- every tier of the soundness chain.
        edges = observe_context_edges(program, k=max(LATTICE_KS),
                                      costs=costs, phase=phase)
        report = build_lattice_report(program, costs=costs, phase=phase,
                                      edges=edges)
        payload["lattice"] = lattice_to_json(report)

    if soundness:
        if lattice:
            chain = check_lattice_soundness(program, costs=costs,
                                            phase=phase, edges=edges)
            payload["soundness"] = {
                "ok": chain.ok,
                "violation_codes": list(chain.violation_codes()),
                "tiers": [{
                    "precision": section.precision,
                    "sites_observed": section.sites_observed,
                    "edges_observed": section.edges_observed,
                    "violations": [
                        {"code": v.code, **dataclasses.asdict(v)}
                        for v in section.violations],
                } for section in chain.sections],
            }
        else:
            cha_graph = build_call_graph(program, precision=CHA, costs=costs)
            observed = observe_dispatch_edges(program, costs=costs,
                                              phase=phase)
            report = check_containment(cha_graph, observed)
            payload["soundness"] = {
                "ok": report.ok,
                "precision": report.precision,
                "sites_observed": report.sites_observed,
                "edges_observed": report.edges_observed,
                "violations": [dataclasses.asdict(v)
                               for v in report.violations],
            }

    if speculation:
        payload["speculation"] = _speculation_section(program, costs=costs,
                                                      phase=phase)
    if deopt:
        payload["deopt"] = _deopt_section(program, costs=costs, phase=phase)
    return payload


def _speculation_section(program: Program, costs: CostModel,
                         phase: float) -> Dict[str, object]:
    """Static summary + elision replay + off-vs-on guard-cycle delta."""
    from repro.aos.runtime import AdaptiveRuntime
    from repro.policies import make_policy

    static = static_speculation_summary(program, costs=costs)
    replay = check_elision_soundness(program, costs=costs, phase=phase)
    # The baseline pays every guard the speculative run elides; same
    # fixed seed and phase, so the runs differ only in elision.
    off_costs = costs.replace(speculation_enabled=False)
    baseline = AdaptiveRuntime(
        program, make_policy("cins", costs=off_costs), off_costs,
        sample_phase=phase).run()
    saved = (baseline.guard_tests - replay.guard_tests) * costs.guard_test
    return {
        "ok": replay.ok,
        "static": static,
        "elision_replay": {
            "ok": replay.ok,
            "elided_entries": replay.elided_entries,
            "guard_tests": replay.guard_tests,
            "guard_misses": replay.guard_misses,
            "violations": [dataclasses.asdict(v)
                           for v in replay.violations],
        },
        "guard_cycles": {
            "tests_baseline": baseline.guard_tests,
            "tests_speculative": replay.guard_tests,
            "elided_entries": replay.elided_entries,
            "estimated_cycles_saved": saved,
        },
    }


def _deopt_section(program: Program, costs: CostModel,
                   phase: float) -> Dict[str, object]:
    """OSR-point table + live-state replay + planned-vs-guard delta."""
    from repro.analysis.liveness import method_liveness
    from repro.aos.runtime import AdaptiveRuntime
    from repro.policies import make_policy

    # Static per-method OSR-point table: loop-header entry points with
    # their map-in live sets, dispatched call sites with the map-out
    # live sets a cheap exit would carry.
    methods: List[Dict[str, object]] = []
    total_loops = 0
    total_exit_candidates = 0
    for method in program.methods():
        liveness = method_liveness(method)
        if not liveness.loops and not liveness.site_live:
            continue
        methods.append({
            "method": method.id,
            "entry_live": sorted(liveness.entry_live),
            "loops": [{"path": loop.path, "live": sorted(loop.live)}
                      for loop in liveness.loops],
            "site_live": {str(site): sorted(live)
                          for site, live in sorted(liveness.site_live.items())},
        })
        total_loops += len(liveness.loops)
        total_exit_candidates += len(liveness.site_live)

    replay = check_osr_soundness(program, costs=costs, phase=phase)

    # Planned-vs-guard comparison: both runs charge identical OSR map-in
    # costs (planning enabled either way), so the delta isolates the
    # strategy choice -- guard cycles saved vs deoptimization exits paid.
    def run_strategy(strategy: str):
        run_costs = costs.replace(deopt_planning_enabled=True,
                                  deopt_strategy=strategy)
        runtime = AdaptiveRuntime(program,
                                  make_policy("cins", costs=run_costs),
                                  run_costs, sample_phase=phase)
        result = runtime.run()
        strategies: Dict[str, int] = {}
        for compiled in runtime.code_cache.opt_methods():
            for node in compiled.root.walk():
                for decision in node.decisions.values():
                    if decision.deopt is not None:
                        strategies[decision.deopt] = \
                            strategies.get(decision.deopt, 0) + 1
        return result, strategies

    planned, strategies = run_strategy("planned")
    guard, _stock = run_strategy("guard")
    saved = (guard.guard_tests - planned.guard_tests) * costs.guard_test
    return {
        "ok": replay.ok,
        "osr_points": {
            "loops": total_loops,
            "exit_candidates": total_exit_candidates,
            "methods": methods,
        },
        "soundness_replay": {
            "ok": replay.ok,
            "osr_transfers": replay.osr_transfers,
            "deopt_entries": replay.deopt_entries,
            "deopt_exits": replay.deopt_exits,
            "reads_checked": replay.reads_checked,
            "violations": [dataclasses.asdict(v)
                           for v in replay.violations],
        },
        # Installed-code site counts per chosen strategy (planned run).
        "strategies": strategies,
        "planned_vs_guard": {
            "guard_tests_guard": guard.guard_tests,
            "guard_tests_planned": planned.guard_tests,
            "deopt_entries": planned.deopt_entries,
            "deopt_exits": planned.deopt_exits,
            "guard_cycles_saved": saved,
            "app_cycles_guard": guard.app_cycles,
            "app_cycles_planned": planned.app_cycles,
            "app_cycle_delta": guard.app_cycles - planned.app_cycles,
        },
    }


def analyze_benchmark(name: str, scale: float = 1.0,
                      costs: CostModel = DEFAULT_COSTS,
                      soundness: bool = True,
                      phase: float = 0.0,
                      precisions: Sequence[str] = DEFAULT_PRECISIONS,
                      lattice: bool = False,
                      k: int = 2,
                      speculation: bool = False,
                      deopt: bool = False) -> Dict[str, object]:
    """Build one Table-1 benchmark (seed-deterministic) and analyze it."""
    from repro.workloads.spec import build_benchmark

    generated = build_benchmark(name, scale=scale)
    return analyze_program(generated.program, costs=costs,
                           soundness=soundness, phase=phase,
                           precisions=precisions, lattice=lattice, k=k,
                           speculation=speculation, deopt=deopt)


def report_ok(payload: Dict[str, object]) -> bool:
    """True when one program's payload is verifier-clean and sound."""
    verifier = payload.get("verifier", {})
    if not verifier.get("ok", False):
        return False
    soundness = payload.get("soundness")
    if soundness is not None and not soundness.get("ok", False):
        return False
    lattice = payload.get("lattice")
    if lattice is not None and not lattice.get("ok", False):
        return False
    speculation = payload.get("speculation")
    if speculation is not None and not speculation.get("ok", False):
        return False
    deopt = payload.get("deopt")
    if deopt is not None and not deopt.get("ok", False):
        return False
    return True


def bundle_reports(reports: Sequence[Dict[str, object]],
                   scale: float = 1.0) -> Dict[str, object]:
    """Wrap per-program payloads in the versioned top-level envelope."""
    return {
        "schema": ANALYSIS_SCHEMA,
        "scale": scale,
        "ok": all(report_ok(r) for r in reports),
        "reports": list(reports),
    }


def write_report(path: str, bundle: Dict[str, object]) -> None:
    """Atomically write a report bundle as JSON."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def render_analysis(payload: Dict[str, object]) -> str:
    """Human-readable summary of one program's analyze payload."""
    lines: List[str] = [str(payload["program"])]
    verifier = payload["verifier"]
    if verifier["ok"]:
        lines.append(f"  verifier : OK ({verifier['methods_checked']} "
                     f"methods, {verifier['sites_checked']} call sites)")
    else:
        lines.append(f"  verifier : {len(verifier['errors'])} error(s)")
        for error in verifier["errors"]:
            where = error["method"] or "<program>"
            if error["path"]:
                where = f"{where}.{error['path']}"
            lines.append(f"    {error['code']} @ {where}: "
                         f"{error['message']}")
        return "\n".join(lines)

    for precision, stats in payload["callgraph"].items():
        if "monomorphism_histogram" in stats:
            histogram = ", ".join(
                f"{k}->{v}"
                for k, v in stats["monomorphism_histogram"].items())
            lines.append(
                f"  {precision:<9}: {stats['methods_reachable']} reachable "
                f"/ {stats['methods_dead']} dead methods, "
                f"{stats['dispatched_sites']} dispatched sites "
                f"({stats['monomorphic_sites']} mono / "
                f"{stats['polymorphic_sites']} poly; targets {histogram})")
        else:
            lines.append(
                f"  {precision:<9}: {stats['methods_reachable']} reachable "
                f"methods over {stats['method_contexts']} contexts "
                f"(max {stats['max_contexts_per_method']}/method), "
                f"{stats['dispatched_sites']} dispatched sites "
                f"({stats['monomorphic_sites']} mono / "
                f"{stats['polymorphic_sites']} poly; "
                f"{stats['context_monomorphic_sites']} ctx-mono, "
                f"{stats['context_rescued_sites']} rescued)")

    lattice = payload.get("lattice")
    if lattice is not None:
        lines.extend(_render_lattice_section(lattice))

    soundness = payload.get("soundness")
    if soundness is not None:
        lines.extend(_render_soundness_section(soundness))

    speculation = payload.get("speculation")
    if speculation is not None:
        lines.extend(_render_speculation_section(speculation))

    deopt = payload.get("deopt")
    if deopt is not None:
        lines.extend(_render_deopt_section(deopt))
    return "\n".join(lines)


def _render_deopt_section(deopt: Dict[str, object]) -> List[str]:
    """Summary lines for the deoptimization-planning payload."""
    points = deopt["osr_points"]
    replay = deopt["soundness_replay"]
    delta = deopt["planned_vs_guard"]
    strategies = deopt["strategies"]
    chosen = ", ".join(f"{name} x{count}"
                       for name, count in sorted(strategies.items())) \
        or "none"
    status = ("replay clean" if deopt["ok"] else
              f"{len(replay['violations'])} VIOLATION(S)")
    lines = [
        f"  deopt    : {points['loops']} loop OSR point(s), "
        f"{points['exit_candidates']} exit candidate(s); "
        f"strategies [{chosen}]; guard tests "
        f"{delta['guard_tests_guard']} -> {delta['guard_tests_planned']} "
        f"({delta['deopt_exits']} exit(s) taken, app cycle delta "
        f"{delta['app_cycle_delta']:+.0f}); {status}"]
    for violation in replay["violations"]:
        lines.append(f"    [{violation['kind']}] {violation['method']} "
                     f"{violation['where']}: read local "
                     f"{violation['index']} outside live set "
                     f"({violation['count']}x)")
    return lines


def _render_speculation_section(spec: Dict[str, object]) -> List[str]:
    """Summary lines for the speculation-risk payload."""
    static = spec["static"]
    cycles = spec["guard_cycles"]
    replay = spec["elision_replay"]
    status = ("replay clean" if spec["ok"] else
              f"{len(replay['violations'])} VIOLATION(S)")
    lines = [
        f"  speculation: {static['preexistent_receiver_sites']}"
        f"/{static['virtual_sites']} preexistent-receiver sites, "
        f"{static['dominator_available_sites']} dominator-available, "
        f"max risk {static['max_risk']:.3f}; guard tests "
        f"{cycles['tests_baseline']} -> {cycles['tests_speculative']} "
        f"({cycles['elided_entries']} elided entries, "
        f"~{cycles['estimated_cycles_saved']:.0f} cycles saved); {status}"]
    for violation in replay["violations"]:
        lines.append(f"    site {violation['site']} "
                     f"[{violation['elision_kind']}]: entered "
                     f"{violation['entered']}, dispatch resolves "
                     f"{violation['resolved']} ({violation['count']}x)")
    return lines


def _render_lattice_section(lattice: Dict[str, object]) -> List[str]:
    """Summary lines for the embedded precision-lattice payload."""
    tiers = lattice["tiers"]
    status = "ok" if lattice["ok"] else (
        f"{len(lattice['containment_violations'])} VIOLATION(S)")
    lines = [f"  lattice  : {' ⊇ '.join(tiers)} ⊇ observed over "
             f"{len(lattice['sites'])} site(s); containment {status}"]
    for violation in lattice["containment_violations"]:
        lines.append(f"    site {violation['site']}: {violation['fine']} "
                     f"⊄ {violation['coarse']} "
                     f"(extra: {', '.join(violation['extra'])})")
    for tier, rescued in lattice["rescued_sites"].items():
        lines.append(f"    rta-poly->{tier}-ctx-mono: {len(rescued)} site(s)"
                     + (f" {rescued}" if rescued else ""))
    scores = ", ".join(f"{tier} {entry['score']:.3f}"
                       for tier, entry in lattice["precision_scores"].items())
    lines.append(f"    precision scores vs dynamic CCT: {scores}")
    return lines


def _render_soundness_section(soundness: Dict[str, object]) -> List[str]:
    """Summary lines for a flat or whole-chain soundness payload."""
    tiers = soundness.get("tiers")
    if tiers is None:
        if soundness["ok"]:
            return [f"  soundness: CHA contains all "
                    f"{soundness['edges_observed']} dynamic edges "
                    f"over {soundness['sites_observed']} sites"]
        lines = [f"  soundness: {len(soundness['violations'])} "
                 f"VIOLATION(S)"]
        for violation in soundness["violations"]:
            lines.append(f"    site {violation['site']} in "
                         f"{violation['caller']}: executed "
                         f"{violation['observed']} outside "
                         f"{violation['allowed']}")
        return lines
    if soundness["ok"]:
        chain = " ⊆ ".join(section["precision"] for section in
                           reversed(tiers))
        edges = max((section["edges_observed"] for section in tiers),
                    default=0)
        return [f"  soundness: observed ⊆ {chain} holds for all "
                f"{edges} dynamic edges"]
    lines = [f"  soundness: BROKEN tiers "
             f"{', '.join(soundness['violation_codes'])}"]
    for section in tiers:
        for violation in section["violations"]:
            where = (f"site {violation['site']} in {violation['caller']}")
            if violation.get("context") is not None:
                where += f" ctx={list(violation['context'])}"
            lines.append(f"    [{violation['code']}] {where}: executed "
                         f"{violation['observed']} outside "
                         f"{violation['allowed']}")
    return lines


def render_bundle(bundle: Dict[str, object]) -> str:
    """Human-readable summary of a full analyze bundle."""
    lines = [render_analysis(payload) for payload in bundle["reports"]]
    verdict = "OK" if bundle["ok"] else "FAILED"
    lines.append(f"analysis: {len(bundle['reports'])} program(s), "
                 f"schema {bundle['schema']}: {verdict}")
    return "\n".join(lines)


__all__ = [
    "ANALYSIS_SCHEMA", "ANALYZE_PRECISIONS", "DEFAULT_PRECISIONS",
    "analyze_benchmark", "analyze_program", "bundle_reports",
    "render_analysis", "render_bundle", "report_ok", "write_report",
]
