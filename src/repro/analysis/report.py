"""The ``repro analyze`` report: versioned JSON plus a human summary.

One report bundles, per program: the verifier verdict (with every
structured error), CHA and RTA call-graph statistics (reachability, dead
methods, the monomorphism histogram), and -- unless disabled -- the
dynamic soundness check proving the CHA target sets contain every
dispatch edge a fixed-seed run executes.

Versioning follows the provenance layer's policy: the payload carries
``schema = "repro.analysis/v1"``; adding fields is backward compatible,
renaming or removing them bumps the version.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Sequence

from repro.analysis.callgraph import CHA, RTA, build_call_graph
from repro.analysis.soundness import check_containment, observe_dispatch_edges
from repro.analysis.verifier import verify_program
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.program import Program

#: Versioned schema identifier written into every analyze report.
ANALYSIS_SCHEMA = "repro.analysis/v1"


def analyze_program(program: Program, costs: CostModel = DEFAULT_COSTS,
                    soundness: bool = True, phase: float = 0.0) \
        -> Dict[str, object]:
    """Full analysis of one program, as a JSON-ready dict.

    The verifier always runs.  The call graphs and the soundness replay
    only run when verification passes -- building a call graph over a
    malformed program would crash on exactly the defects the verifier
    just diagnosed.
    """
    verification = verify_program(program)
    payload: Dict[str, object] = {
        "program": program.name,
        "verifier": {
            "ok": verification.ok,
            "methods_checked": verification.methods_checked,
            "sites_checked": verification.sites_checked,
            "errors": [dataclasses.asdict(e) for e in verification.errors],
        },
    }
    if not verification.ok:
        return payload

    cha_graph = build_call_graph(program, precision=CHA, costs=costs)
    rta_graph = build_call_graph(program, precision=RTA, costs=costs)
    payload["callgraph"] = {CHA: cha_graph.summary(),
                            RTA: rta_graph.summary()}

    if soundness:
        observed = observe_dispatch_edges(program, costs=costs, phase=phase)
        report = check_containment(cha_graph, observed)
        payload["soundness"] = {
            "ok": report.ok,
            "precision": report.precision,
            "sites_observed": report.sites_observed,
            "edges_observed": report.edges_observed,
            "violations": [dataclasses.asdict(v)
                           for v in report.violations],
        }
    return payload


def analyze_benchmark(name: str, scale: float = 1.0,
                      costs: CostModel = DEFAULT_COSTS,
                      soundness: bool = True,
                      phase: float = 0.0) -> Dict[str, object]:
    """Build one Table-1 benchmark (seed-deterministic) and analyze it."""
    from repro.workloads.spec import build_benchmark

    generated = build_benchmark(name, scale=scale)
    return analyze_program(generated.program, costs=costs,
                           soundness=soundness, phase=phase)


def report_ok(payload: Dict[str, object]) -> bool:
    """True when one program's payload is verifier-clean and sound."""
    verifier = payload.get("verifier", {})
    if not verifier.get("ok", False):
        return False
    soundness = payload.get("soundness")
    if soundness is not None and not soundness.get("ok", False):
        return False
    return True


def bundle_reports(reports: Sequence[Dict[str, object]],
                   scale: float = 1.0) -> Dict[str, object]:
    """Wrap per-program payloads in the versioned top-level envelope."""
    return {
        "schema": ANALYSIS_SCHEMA,
        "scale": scale,
        "ok": all(report_ok(r) for r in reports),
        "reports": list(reports),
    }


def write_report(path: str, bundle: Dict[str, object]) -> None:
    """Atomically write a report bundle as JSON."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def render_analysis(payload: Dict[str, object]) -> str:
    """Human-readable summary of one program's analyze payload."""
    lines: List[str] = [str(payload["program"])]
    verifier = payload["verifier"]
    if verifier["ok"]:
        lines.append(f"  verifier : OK ({verifier['methods_checked']} "
                     f"methods, {verifier['sites_checked']} call sites)")
    else:
        lines.append(f"  verifier : {len(verifier['errors'])} error(s)")
        for error in verifier["errors"]:
            where = error["method"] or "<program>"
            if error["path"]:
                where = f"{where}.{error['path']}"
            lines.append(f"    {error['code']} @ {where}: "
                         f"{error['message']}")
        return "\n".join(lines)

    for precision in (CHA, RTA):
        stats = payload["callgraph"][precision]
        histogram = ", ".join(
            f"{k}->{v}" for k, v in stats["monomorphism_histogram"].items())
        lines.append(
            f"  {precision:<9}: {stats['methods_reachable']} reachable / "
            f"{stats['methods_dead']} dead methods, "
            f"{stats['dispatched_sites']} dispatched sites "
            f"({stats['monomorphic_sites']} mono / "
            f"{stats['polymorphic_sites']} poly; targets {histogram})")

    soundness = payload.get("soundness")
    if soundness is not None:
        if soundness["ok"]:
            lines.append(f"  soundness: CHA contains all "
                         f"{soundness['edges_observed']} dynamic edges "
                         f"over {soundness['sites_observed']} sites")
        else:
            lines.append(f"  soundness: {len(soundness['violations'])} "
                         f"VIOLATION(S)")
            for violation in soundness["violations"]:
                lines.append(f"    site {violation['site']} in "
                             f"{violation['caller']}: executed "
                             f"{violation['observed']} outside "
                             f"{violation['allowed']}")
    return "\n".join(lines)


def render_bundle(bundle: Dict[str, object]) -> str:
    """Human-readable summary of a full analyze bundle."""
    lines = [render_analysis(payload) for payload in bundle["reports"]]
    verdict = "OK" if bundle["ok"] else "FAILED"
    lines.append(f"analysis: {len(bundle['reports'])} program(s), "
                 f"schema {bundle['schema']}: {verdict}")
    return "\n".join(lines)


__all__ = [
    "ANALYSIS_SCHEMA", "analyze_benchmark", "analyze_program",
    "bundle_reports", "render_analysis", "render_bundle", "report_ok",
    "write_report",
]
