"""The precision lattice: per-site target sets across every analysis tier.

One report answers three questions the paper's motivation turns on:

1. **How much does each tier narrow?**  Per dispatched site the report
   records target-set sizes along ``CHA ⊇ RTA ⊇ 0CFA ⊇ 1CFA ⊇ 2CFA ⊇
   observed`` -- plus whether a k-CFA tier proves the site
   *context-monomorphic* (every call string pins a single target) even
   though its context-insensitive union stays polymorphic.  Those
   "rescued" sites are exactly where the paper's context-sensitive
   profiles beat flat ones, recovered here statically.
2. **Is the chain actually a chain?**  Static inter-tier containment is
   checked per site; any coarser tier missing a finer tier's target is a
   construction bug and is reported as a violation.
3. **How predictive is static context?**  For each tier the report
   scores the statically predicted majority target against the dynamic
   majority from a fixed-seed replay's context-qualified dispatch counts
   (the dynamic CCT), weighted by dispatch count.  Flat tiers predict
   one target per site; k-CFA tiers predict per truncated call string.

``repro analyze --lattice`` embeds :func:`lattice_to_json` in the
versioned analysis bundle and prints :func:`render_lattice`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.callgraph import (CHA, RTA, StaticCallGraph,
                                      build_call_graph)
from repro.analysis.kcfa import (CallString, ContextSensitiveCallGraph,
                                 build_kcfa_graph, truncate)
from repro.analysis.soundness import (ContextEdges, flatten_context_edges,
                                      observe_context_edges,
                                      truncate_context_edges)
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.program import Program

#: k depths the lattice report always includes.
LATTICE_KS = (0, 1, 2)


@dataclass(frozen=True)
class SiteLatticeRow:
    """Target-set sizes of one dispatched site across every tier."""

    site: int
    caller: str
    selector: str
    kind: str
    sizes: Tuple[Tuple[str, int], ...]    #: (tier, |targets|), coarse first
    #: tiers (e.g. "1cfa") under which every call string is monomorphic
    context_monomorphic: Tuple[str, ...]
    #: distinct analysis contexts per k-CFA tier
    contexts: Tuple[Tuple[str, int], ...]
    observed: int                          #: distinct executed targets

    def size(self, tier: str) -> Optional[int]:
        for name, value in self.sizes:
            if name == tier:
                return value
        return None

    def rescued_by(self, tier: str) -> bool:
        """RTA-polymorphic but context-monomorphic under ``tier``."""
        rta_size = self.size(RTA)
        return (rta_size is not None and rta_size > 1
                and tier in self.context_monomorphic)


@dataclass(frozen=True)
class TierPrecisionScore:
    """Majority-target prediction accuracy of one tier vs the dynamic CCT."""

    tier: str
    groups_scored: int      #: (site, truncated context) groups compared
    dispatches: int         #: total dynamic dispatch count over the groups
    matched: int            #: dispatch count where prediction == majority

    @property
    def score(self) -> float:
        return self.matched / self.dispatches if self.dispatches else 0.0


@dataclass(frozen=True)
class ContainmentViolation:
    """A finer tier whose target set is not inside the coarser tier's."""

    site: int
    coarse: str
    fine: str
    extra: Tuple[str, ...]   #: targets in the fine set missing from coarse

    def describe(self) -> str:
        return (f"site {self.site}: {self.fine} ⊄ {self.coarse} "
                f"(extra: {', '.join(self.extra)})")


@dataclass(frozen=True)
class LatticeReport:
    """The full tiered comparison for one program."""

    program_name: str
    tiers: Tuple[str, ...]                  #: coarse-to-fine static tiers
    rows: Tuple[SiteLatticeRow, ...]        #: dispatched sites, id order
    violations: Tuple[ContainmentViolation, ...]
    scores: Tuple[TierPrecisionScore, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def rescued_sites(self, tier: str) -> List[int]:
        """Sites RTA calls polymorphic but ``tier`` proves ctx-monomorphic."""
        return [row.site for row in self.rows if row.rescued_by(tier)]


def build_lattice_report(program: Program,
                         ks: Tuple[int, ...] = LATTICE_KS,
                         policy=None,
                         costs: CostModel = DEFAULT_COSTS,
                         phase: float = 0.0,
                         edges: Optional[ContextEdges] = None) \
        -> LatticeReport:
    """Build every tier, replay once, and assemble the tiered comparison.

    ``edges`` can be passed in to reuse an existing observation (the
    lattice soundness check collects the same data); otherwise a
    fixed-phase replay is performed here.
    """
    flat_graphs: Dict[str, StaticCallGraph] = {
        precision: build_call_graph(program, precision=precision,
                                    costs=costs)
        for precision in (CHA, RTA)}
    kgraphs: Dict[str, ContextSensitiveCallGraph] = {}
    for k in ks:
        graph = build_kcfa_graph(program, k=k, costs=costs)
        kgraphs[graph.precision] = graph
    tiers = (CHA, RTA) + tuple(kgraphs)

    if edges is None:
        edges = observe_context_edges(program, k=max(ks, default=0),
                                      policy=policy, costs=costs,
                                      phase=phase)
    flat_observed = flatten_context_edges(edges)

    def tier_targets(tier: str, site: int) -> FrozenSet[str]:
        if tier in flat_graphs:
            return flat_graphs[tier].targets(site)
        return kgraphs[tier].targets(site)

    # Every dispatched site any tier knows about, in id order.
    site_ids = sorted({s.site for g in flat_graphs.values()
                       for s in g.dispatched_sites()}
                      | {s.site for g in kgraphs.values()
                         for s in g.dispatched_sites()})

    rows: List[SiteLatticeRow] = []
    violations: List[ContainmentViolation] = []
    for site in site_ids:
        meta = _site_meta(site, flat_graphs, kgraphs)
        if meta is None:
            continue
        caller, selector, kind = meta
        sizes = tuple((tier, len(tier_targets(tier, site)))
                      for tier in tiers)
        ctx_mono = tuple(tier for tier, g in kgraphs.items()
                         if g.context_monomorphic(site))
        contexts = tuple(
            (tier, len(g.sites[site].by_context) if site in g.sites else 0)
            for tier, g in kgraphs.items())
        rows.append(SiteLatticeRow(
            site=site, caller=caller, selector=selector, kind=kind,
            sizes=sizes, context_monomorphic=ctx_mono, contexts=contexts,
            observed=len(flat_observed.get(site, frozenset()))))
        for coarse, fine in zip(tiers, tiers[1:]):
            extra = tier_targets(fine, site) - tier_targets(coarse, site)
            if extra:
                violations.append(ContainmentViolation(
                    site=site, coarse=coarse, fine=fine,
                    extra=tuple(sorted(extra))))

    scores = tuple(_score_tier(tier, flat_graphs, kgraphs, edges)
                   for tier in tiers)
    return LatticeReport(program_name=program.name, tiers=tiers,
                         rows=tuple(rows), violations=tuple(violations),
                         scores=scores)


def _site_meta(site: int, flat_graphs: Dict[str, StaticCallGraph],
               kgraphs: Dict[str, ContextSensitiveCallGraph]) \
        -> Optional[Tuple[str, str, str]]:
    for graph in flat_graphs.values():
        info = graph.sites.get(site)
        if info is not None:
            return info.caller, info.selector, info.kind
    for kgraph in kgraphs.values():
        kinfo = kgraph.sites.get(site)
        if kinfo is not None:
            return kinfo.caller, kinfo.selector, kinfo.kind
    return None


def _score_tier(tier: str, flat_graphs: Dict[str, StaticCallGraph],
                kgraphs: Dict[str, ContextSensitiveCallGraph],
                edges: ContextEdges) -> TierPrecisionScore:
    """Score one tier's majority-target predictions against the replay.

    Every tier is scored over the *same* dynamic groups -- the CCT's
    (site, full observed call string) pairs -- but each tier's prediction
    may only condition on the prefix it tracks: nothing for flat tiers,
    the string truncated to k for k-CFA.  A context the tier cannot
    distinguish therefore costs it every dispatch whose per-context
    target differs from its one site-wide answer, which is exactly the
    paper's argument for context-sensitive profiles, measured statically.
    The dynamic majority breaks count ties lexicographically, mirroring
    the static side's deterministic tie-break.
    """
    if tier in flat_graphs:
        k = 0
        graph = flat_graphs[tier]

        def predict(site: int, _ctx: CallString) -> Optional[str]:
            targets = graph.targets(site)
            # No per-target frequency exists at flat tiers (weight splits
            # evenly); the deterministic representative is the best a
            # context-insensitive predictor can honestly do.
            return min(targets) if targets else None
    else:
        kgraph = kgraphs[tier]
        k = kgraph.k

        def predict(site: int, ctx: CallString) -> Optional[str]:
            return kgraph.predicted_majority(site, ctx)

    groups = dispatches = matched = 0
    for (site, ctx), counts in sorted(edges.items()):
        total = sum(counts.values())
        majority = min(counts, key=lambda t: (-counts[t], t))
        groups += 1
        dispatches += total
        if predict(site, truncate(ctx, k)) == majority:
            matched += total
    return TierPrecisionScore(tier=tier, groups_scored=groups,
                              dispatches=dispatches, matched=matched)


# -- serialization -------------------------------------------------------------


def lattice_to_json(report: LatticeReport) -> Dict[str, object]:
    """JSON-ready ``lattice`` section for the analysis bundle."""
    return {
        "program": report.program_name,
        "tiers": list(report.tiers),
        "ok": report.ok,
        "sites": [{
            "site": row.site,
            "caller": row.caller,
            "selector": row.selector,
            "kind": row.kind,
            "sizes": dict(row.sizes),
            "observed": row.observed,
            "contexts": dict(row.contexts),
            "context_monomorphic": list(row.context_monomorphic),
        } for row in report.rows],
        "containment_violations": [{
            "site": v.site, "coarse": v.coarse, "fine": v.fine,
            "extra": list(v.extra),
        } for v in report.violations],
        "rescued_sites": {
            tier: report.rescued_sites(tier)
            for tier in report.tiers if tier.endswith("cfa")},
        "precision_scores": {s.tier: {
            "groups_scored": s.groups_scored,
            "dispatches": s.dispatches,
            "matched": s.matched,
            "score": round(s.score, 6),
        } for s in report.scores},
    }


def render_lattice(report: LatticeReport) -> str:
    """Human-readable tiered comparison."""
    lines = [f"precision lattice {report.program_name} "
             f"[{' ⊇ '.join(report.tiers)} ⊇ observed]"]
    header = (["site", "caller", "selector"] + list(report.tiers)
              + ["obs", "ctx-mono"])
    lines.append("  " + "  ".join(header))
    for row in report.rows:
        cells = [str(row.site), row.caller, row.selector]
        cells += [str(row.size(tier)) for tier in report.tiers]
        cells.append(str(row.observed))
        cells.append(",".join(row.context_monomorphic) or "-")
        lines.append("  " + "  ".join(cells))
    for tier in report.tiers:
        if not tier.endswith("cfa"):
            continue
        rescued = report.rescued_sites(tier)
        lines.append(f"  rta-poly->{tier}-ctx-mono: {len(rescued)} site(s)"
                     + (f" {rescued}" if rescued else ""))
    lines.append("  precision scores (majority-target vs dynamic CCT):")
    for s in report.scores:
        lines.append(f"    {s.tier}: {s.score:.3f} "
                     f"({s.matched}/{s.dispatches} dispatches over "
                     f"{s.groups_scored} context groups)")
    if report.violations:
        lines.append(f"  CONTAINMENT VIOLATIONS: {len(report.violations)}")
        lines.extend(f"    {v.describe()}" for v in report.violations)
    else:
        lines.append("  static containment: ok at every site")
    return "\n".join(lines)
