"""Risk-directed deoptimization planning over the liveness results.

A speculative inline has three ways to stay sound, forming the strategy
lattice of "OSR a la carte" (D'Elia & Demetrescu):

* **full-guard** -- compile the guard chain with an in-code dispatch
  fallback.  Every entry pays guard cycles forever; a miss stays in
  optimized code and pays one dispatch.
* **cheap-exit-osr** -- compile the site as an extra OSR point (beyond
  the loop back edges): the fast path pays *no* guard cycles because a
  broken speculation triggers a deoptimization exit that maps the live
  frame state out (``osr_map_out_cost`` per live local, the pruned
  live-state map) and finishes the dispatch at the baseline tier.
* **guard-free** -- no guard and no exit: only sound when the receiver
  preexists the activation, so invalidation alone protects every entry
  (PR-8's preexistence elision).

:class:`DeoptPlanner` picks per site by combining three static inputs:
the liveness-derived exit cost (how expensive a mapped exit would be
*here*), the PR-8 speculation risk (whether invalidation-protected
guard-free entry is safe), and the k-CFA precision lattice (whether the
compilation context proves the site monomorphic, i.e. exits would never
be taken).  The decision rule for the ``planned`` strategy dimension:

1. the speculation analysis says ``elide`` -> **guard-free**;
2. the site is context-monomorphic under k-CFA for this compilation
   context, or the expected per-entry exit cost
   ``(1 - coverage) * (map-out + baseline-dispatch premium)`` is at or
   below one guard test -> **cheap-exit-osr**;
3. otherwise -> **full-guard**.

The ``deopt_strategy`` cost-model dimension selects between ``guard``
(stock: the planner is never consulted for sites), ``osr-exit`` (every
guarded site becomes a cheap-exit OSR point) and ``planned`` (the rule
above).  Everything sits behind ``costs.deopt_planning_enabled``; the
oracle and compiler receive a planner instance by injection and never
import this module (the same layering contract as
:class:`~repro.analysis.dataflow.SpeculationAnalysis`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence, Tuple

from repro.jvm.costs import CostModel, DEFAULT_COSTS, DEOPT_STRATEGIES
from repro.jvm.errors import ConfigError
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import MethodDef, Program, Stmt

from repro.analysis.dataflow import ACTION_ELIDE, SpeculationAnalysis
from repro.analysis.liveness import MethodLiveness, method_liveness

__all__ = [
    "DeoptPlan", "DeoptPlanner",
    "STRATEGY_GUARD", "STRATEGY_OSR_EXIT", "STRATEGY_GUARD_FREE",
]

#: The per-site strategy lattice (ordered by per-entry cost).
STRATEGY_GUARD = "full-guard"
STRATEGY_OSR_EXIT = "cheap-exit-osr"
STRATEGY_GUARD_FREE = "guard-free"


class DeoptPlan:
    """The planner's verdict for one guarded call site."""

    __slots__ = ("strategy", "live", "exit_cost", "risk", "ctx_mono")

    def __init__(self, strategy: str, live: FrozenSet[int],
                 exit_cost: float, risk: float, ctx_mono: bool):
        self.strategy = strategy
        self.live = live
        self.exit_cost = exit_cost
        self.risk = risk
        self.ctx_mono = ctx_mono

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DeoptPlan {self.strategy} live={sorted(self.live)} "
                f"exit={self.exit_cost:.1f} risk={self.risk:.3f}>")


class DeoptPlanner:
    """Facade combining liveness, speculation risk, and the k-CFA lattice.

    One instance serves one ``(program, hierarchy)`` pair for the life
    of a run.  Liveness summaries are immutable and cached forever; the
    k-CFA graph is built lazily on the first context query (it depends
    only on declared code, not on the load state); risk queries delegate
    to an internal :class:`SpeculationAnalysis` whose caches key on the
    hierarchy's load generation.
    """

    def __init__(self, program: Program, hierarchy: ClassHierarchy,
                 costs: CostModel = DEFAULT_COSTS, k: int = 1):
        if costs.deopt_strategy not in DEOPT_STRATEGIES:
            raise ConfigError(
                f"unknown deopt_strategy {costs.deopt_strategy!r}; "
                f"valid strategies: {', '.join(DEOPT_STRATEGIES)}")
        self._program = program
        self._hierarchy = hierarchy
        self._costs = costs
        self._k = k
        self._liveness: Dict[str, MethodLiveness] = {}
        self._kcfa = None
        self.speculation = SpeculationAnalysis(program, hierarchy, costs)

    # -- liveness ----------------------------------------------------------

    def liveness(self, method: MethodDef) -> MethodLiveness:
        cached = self._liveness.get(method.id)
        if cached is None:
            cached = method_liveness(method)
            self._liveness[method.id] = cached
        return cached

    def liveness_for(self, method_id: str) -> MethodLiveness:
        return self.liveness(self._program.method(method_id))

    def site_live(self, method: MethodDef, site: int) -> FrozenSet[int]:
        """Locals live immediately before ``site`` in ``method``."""
        return self.liveness(method).site_live.get(site, frozenset())

    def loop_live_index(self) -> Dict[int, FrozenSet[int]]:
        """``id(loop_stmt) -> live set`` over every method in the program.

        Statement objects are shared with the executing machine, so this
        is what the interpreter charges OSR map-in costs from and what
        the soundness replay checks transfers against.
        """
        index: Dict[int, FrozenSet[int]] = {}
        for method in self._program.methods():
            index.update(self.liveness(method).loop_live_by_id)
        return index

    # -- the k-CFA precision input -----------------------------------------

    def _graph(self):
        if self._kcfa is None:
            from repro.analysis.kcfa import build_kcfa_graph
            self._kcfa = build_kcfa_graph(self._program, self._hierarchy,
                                          k=self._k, costs=self._costs)
        return self._kcfa

    def context_monomorphic(self, site: int,
                            comp_context: Sequence[Tuple[str, int]]) -> bool:
        """Does k-CFA prove ``site`` monomorphic under the compilation
        context (the inline chain's call string, innermost first)?

        The head of ``comp_context`` names the method enclosing the
        site and carries the site's own id; the k-CFA context of the
        site is the chain of *caller* sites above it, so only the tail
        contributes to the known call-string prefix.
        """
        known = tuple(frame_site for _method, frame_site in comp_context[1:])
        targets = self._graph().targets_for_prefix(site, known)
        return len(targets) == 1

    # -- planning ----------------------------------------------------------

    def exit_premium(self, live: FrozenSet[int], interface: bool) -> float:
        """Extra cycles a cheap-exit miss pays over a full-guard miss:
        the mapped-out live state plus finishing the dispatch at the
        baseline tier instead of in optimized code."""
        costs = self._costs
        dispatch = (costs.interface_dispatch if interface
                    else costs.virtual_dispatch)
        tier_premium = dispatch * max(
            0.0, costs.baseline_exec_mult - costs.opt_exec_mult)
        return len(live) * costs.osr_map_out_cost + tier_premium

    def plan_site(self, stmt: Stmt,
                  comp_context: Sequence[Tuple[str, int]],
                  targets: Sequence[MethodDef],
                  coverage: float = 1.0,
                  interface: bool = False) -> DeoptPlan:
        """Choose the deopt strategy for one guarded site.

        ``comp_context`` is the compiler's inline chain innermost first
        (its head names the method enclosing ``stmt``); ``targets`` are
        the guarded inline candidates; ``coverage`` is the oracle's
        profile-weight coverage of those targets (the static guard-hit
        estimate).
        """
        caller_id = comp_context[0][0] if comp_context else None
        live = (self.liveness_for(caller_id).site_live.get(
            stmt.site, frozenset()) if caller_id is not None
            else frozenset())
        exit_cost = float(len(live) * self._costs.osr_map_out_cost)
        if len(targets) == 1:
            _cone, risk = self.speculation.assumption_risk(
                stmt.selector, targets[0])
        else:
            _cone, risk = self.speculation.exhaustive_risk(
                stmt.selector, targets)
        dimension = self._costs.deopt_strategy
        if dimension == "osr-exit":
            return DeoptPlan(STRATEGY_OSR_EXIT, live, exit_cost, risk,
                             ctx_mono=False)
        # "planned": guard-free when invalidation alone is protection
        # enough, cheap-exit when exits are predicted never-taken or
        # cheaper in expectation than the guard chain, full-guard else.
        if len(targets) == 1:
            verdict = self.speculation.speculate(stmt, comp_context,
                                                 targets[0])
            if verdict.action == ACTION_ELIDE:
                return DeoptPlan(STRATEGY_GUARD_FREE, live, exit_cost,
                                 verdict.risk, ctx_mono=False)
        ctx_mono = self.context_monomorphic(stmt.site, comp_context)
        expected_exit = ((1.0 - min(max(coverage, 0.0), 1.0))
                         * self.exit_premium(live, interface))
        if ctx_mono or expected_exit <= self._costs.guard_test:
            return DeoptPlan(STRATEGY_OSR_EXIT, live, exit_cost, risk,
                             ctx_mono)
        return DeoptPlan(STRATEGY_GUARD, live, exit_cost, risk, ctx_mono)
