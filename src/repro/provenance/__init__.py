"""Decision provenance: a causal audit trail for the adaptive system.

The paper's central claims -- context-sensitive profiles change *which*
call sites get inlined, eliminate guards, and control code-space growth
-- are invisible in aggregate run metrics.  This subsystem captures every
oracle verdict as a structured record (site, context, reason code, size
class, Equation-3 coverage, guard kind, profile weight), plus controller
recompilation decisions and code-cache evictions/invalidations, all on
the simulated cycle clock and all at **zero cycle overhead**: recording
changes no decisions and charges no cycles, so recorded and unrecorded
runs are bit-identical.

Parts:

* :mod:`~repro.provenance.reasons` -- the closed :class:`ReasonCode` and
  :class:`EventKind` vocabularies (shared with the AOS event log);
* :mod:`~repro.provenance.records` -- record dataclasses and the
  versioned JSONL schema;
* :mod:`~repro.provenance.recorder` -- the zero-overhead
  :class:`ProvenanceRecorder` / :data:`NULL_PROVENANCE` pair;
* :mod:`~repro.provenance.explain` -- per-site decision trees
  (``repro explain``);
* :mod:`~repro.provenance.diff` -- cross-run decision diffing
  (``repro decisions diff``);
* :mod:`~repro.provenance.metrics` -- derived metrics (dilution ratio,
  guard eliminations, refusal histogram) folded into telemetry.
"""

from repro.provenance.reasons import (EventKind, GUARD_CLASS_TEST,
                                      GUARD_KINDS, GUARD_METHOD_TEST,
                                      GUARD_PREEXISTENCE, INLINE_REASONS,
                                      REASON_CODES, REFUSAL_REASONS,
                                      ReasonCode, VERDICT_DIRECT,
                                      VERDICT_GUARDED, VERDICT_REFUSED,
                                      VERDICTS)
from repro.provenance.records import (CompilationRecord, DecisionRecord,
                                      EventRecord, ProvenanceRecord, SCHEMA,
                                      dump_jsonl, final_decisions,
                                      parse_jsonl, read_decision_log,
                                      record_from_dict, record_to_dict,
                                      split_records, write_decision_log)
from repro.provenance.recorder import (NULL_PROVENANCE, NullProvenance,
                                       ProvenanceRecorder)
from repro.provenance.explain import (available_roots, explain_method,
                                      format_decision)
from repro.provenance.diff import (DecisionDiff, Flip, diff_decisions,
                                   diff_logs, render_diff)
from repro.provenance.metrics import (derived_metrics, dilution_ratio,
                                      fold_into_telemetry,
                                      guard_elimination_count,
                                      refusal_histogram)

__all__ = [
    "CompilationRecord", "DecisionDiff", "DecisionRecord", "EventKind",
    "EventRecord", "Flip", "GUARD_CLASS_TEST", "GUARD_KINDS",
    "GUARD_METHOD_TEST", "GUARD_PREEXISTENCE", "INLINE_REASONS",
    "NULL_PROVENANCE", "NullProvenance", "ProvenanceRecord",
    "ProvenanceRecorder", "REASON_CODES", "REFUSAL_REASONS", "ReasonCode",
    "SCHEMA", "VERDICTS", "VERDICT_DIRECT", "VERDICT_GUARDED",
    "VERDICT_REFUSED", "available_roots", "derived_metrics",
    "diff_decisions", "diff_logs", "dilution_ratio", "dump_jsonl",
    "explain_method", "final_decisions", "fold_into_telemetry",
    "format_decision", "guard_elimination_count", "parse_jsonl",
    "read_decision_log", "record_from_dict", "record_to_dict",
    "refusal_histogram", "render_diff", "split_records",
    "write_decision_log",
]
