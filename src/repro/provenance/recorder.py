"""The provenance recorder: captures decisions without changing them.

Mirrors the :mod:`repro.telemetry` zero-overhead contract exactly: the
recorder charges no simulated cycles and changes no decisions, so a run
with provenance recording on is **bit-identical** (same
:class:`~repro.aos.runtime.RunResult`, same cycle clock) to the same run
with it off.  Un-instrumented runs pay nothing at all -- every
instrumentation point defaults to the :data:`NULL_PROVENANCE` singleton,
whose methods are all no-ops.

The recorder is a passive sink: the oracle reports each verdict, the
compilation thread brackets each compile (so decision records inherit
the compilation's version), and the controller/code cache/runtime drop
event records.  :meth:`ProvenanceRecorder.bind` attaches the cycle
clock, exactly like the telemetry recorder.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.provenance.reasons import event_value, reason_value
from repro.provenance.records import (CompilationRecord, DecisionRecord,
                                      EventRecord, ProvenanceRecord,
                                      dump_jsonl, final_decisions,
                                      split_records, write_decision_log)


class _OpenCompilation:
    __slots__ = ("method", "version", "reason", "rules_fingerprint",
                 "decisions_before")

    def __init__(self, method: str, version: int, reason: str,
                 rules_fingerprint: int, decisions_before: int):
        self.method = method
        self.version = version
        self.reason = reason
        self.rules_fingerprint = rules_fingerprint
        self.decisions_before = decisions_before


class ProvenanceRecorder:
    """Collects decision, compilation, and event records on the cycle clock."""

    enabled = True

    def __init__(self, label: str = "run"):
        self.label = label
        self._clock: Callable[[], float] = lambda: 0.0
        self.records: List[ProvenanceRecord] = []
        self._decision_count = 0
        self._open: Optional[_OpenCompilation] = None

    # -- wiring ----------------------------------------------------------------

    def bind(self, clock: Callable[[], float]) -> None:
        """Attach the simulated cycle clock source."""
        self._clock = clock

    # -- compilation bracketing -------------------------------------------------

    def begin_compilation(self, method_id: str, version: int, reason: str,
                          rules_fingerprint: int) -> None:
        """Open a compilation; subsequent decisions belong to it."""
        self._open = _OpenCompilation(method_id, version, reason,
                                      rules_fingerprint,
                                      self._decision_count)

    def end_compilation(self, inlined_bytecodes: int, code_bytes: int,
                        compile_cycles: float) -> None:
        """Close the open compilation with the compiler's outputs."""
        open_compilation = self._open
        self._open = None
        if open_compilation is None:
            return
        self.records.append(CompilationRecord(
            clock=self._clock(),
            method=open_compilation.method,
            version=open_compilation.version,
            reason=open_compilation.reason,
            rules_fingerprint=open_compilation.rules_fingerprint,
            inlined_bytecodes=inlined_bytecodes,
            code_bytes=code_bytes,
            compile_cycles=compile_cycles,
            decisions=self._decision_count
            - open_compilation.decisions_before))

    # -- decisions --------------------------------------------------------------

    def decision(self, *, root: str, caller: str, site: int, depth: int,
                 site_kind: str, selector: str, verdict: str,
                 reason, context: Sequence[Tuple[str, int]],
                 targets: Sequence[str] = (),
                 size_class: Optional[str] = None,
                 size_estimate: Optional[int] = None,
                 current_size: int = 0,
                 coverage: Optional[float] = None,
                 guard_kind: Optional[str] = None,
                 profile_weight: Optional[float] = None) -> None:
        """Record one oracle verdict (called from ``InlineOracle.decide``)."""
        version = self._open.version if self._open is not None else 0
        self._decision_count += 1
        self.records.append(DecisionRecord(
            clock=self._clock(), root=root, version=version, caller=caller,
            site=site, depth=depth, site_kind=site_kind, selector=selector,
            verdict=verdict, reason=reason_value(reason),
            context=tuple((str(c), int(s)) for c, s in context),
            targets=tuple(targets), size_class=size_class,
            size_estimate=size_estimate, current_size=current_size,
            coverage=coverage, guard_kind=guard_kind,
            profile_weight=profile_weight))

    # -- events -----------------------------------------------------------------

    def event(self, kind, subject: str, **detail: Any) -> None:
        """Record one controller/cache/runtime event."""
        self.records.append(EventRecord(
            clock=self._clock(), kind=event_value(kind), subject=subject,
            detail=dict(detail)))

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    @property
    def decisions(self) -> List[DecisionRecord]:
        return split_records(self.records)[0]

    @property
    def compilations(self) -> List[CompilationRecord]:
        return split_records(self.records)[1]

    @property
    def events(self) -> List[EventRecord]:
        return split_records(self.records)[2]

    def decisions_for(self, root: str) -> List[DecisionRecord]:
        """Every decision made while compiling ``root``, in order."""
        return [r for r in self.decisions if r.root == root]

    def final_decisions(self) -> Dict[Tuple, DecisionRecord]:
        """Last decision per (caller, site, context) key."""
        return final_decisions(self.decisions)

    # -- export -----------------------------------------------------------------

    def to_jsonl(self, meta: Optional[Dict[str, Any]] = None) -> str:
        """The full record stream as versioned JSONL text."""
        header = {"label": self.label}
        if meta:
            header.update(meta)
        return dump_jsonl(self.records, header)

    def write_jsonl(self, path: str,
                    meta: Optional[Dict[str, Any]] = None) -> int:
        """Write the record stream to ``path``; returns the record count."""
        header = {"label": self.label}
        if meta:
            header.update(meta)
        return write_decision_log(path, self.records, header)


class NullProvenance:
    """A do-nothing recorder: every instrumentation point is a no-op.

    The zero-overhead contract: instrumented code paths call through this
    singleton by default, charge no simulated cycles, and allocate
    nothing, so un-recorded runs are bit-identical to recorded ones (and
    to pre-provenance builds).
    """

    enabled = False

    def bind(self, clock) -> None:
        pass

    def begin_compilation(self, method_id: str, version: int, reason: str,
                          rules_fingerprint: int) -> None:
        pass

    def end_compilation(self, inlined_bytecodes: int, code_bytes: int,
                        compile_cycles: float) -> None:
        pass

    def decision(self, **kwargs: Any) -> None:
        pass

    def event(self, kind, subject: str, **detail: Any) -> None:
        pass


#: Shared no-op recorder used as the default at every instrumentation point.
NULL_PROVENANCE = NullProvenance()
