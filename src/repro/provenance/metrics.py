"""Derived metrics over decision records.

These are the quantities the paper's claims are *about* but which raw
run metrics do not expose directly:

* **refusal histogram** -- how often each reason code blocked an inline;
* **guard-elimination count** -- virtual/interface sites inlined with no
  runtime guard (closed-world CHA or pre-existence), the mechanism
  behind the paper's guard-removal claims;
* **dilution ratio** -- averaged over guarded decisions, the fraction of
  context-applicable dispatch weight the chosen targets do *not* cover.
  0.0 means every guard covers its full context; values near the
  ``guard_coverage_min`` complement mean guards barely clear the
  skew test and will miss often.

:func:`fold_into_telemetry` publishes them as gauges on a
:class:`~repro.telemetry.recorder.TelemetryRecorder`, so they land in
:class:`~repro.telemetry.recorder.TelemetrySnapshot` and the Chrome
trace export alongside the component timelines.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.provenance.reasons import VERDICT_DIRECT, VERDICT_REFUSED
from repro.provenance.records import DecisionRecord

#: Site kinds that dispatch dynamically (a direct inline there is a
#: guard/dispatch eliminated).
_DYNAMIC_SITE_KINDS = ("virtual", "interface")


def refusal_histogram(decisions: Iterable[DecisionRecord]) -> Dict[str, int]:
    """``{reason code: count}`` over refused decisions (sorted keys)."""
    histogram: Dict[str, int] = {}
    for record in decisions:
        if record.verdict == VERDICT_REFUSED:
            histogram[record.reason] = histogram.get(record.reason, 0) + 1
    return dict(sorted(histogram.items()))


def guard_elimination_count(decisions: Iterable[DecisionRecord]) -> int:
    """Dynamic-dispatch sites inlined *without* a runtime guard.

    Counts direct verdicts at virtual/interface sites whose guard kind is
    not a runtime test (closed-world CHA needs nothing; pre-existence
    trades the guard for an invalidation dependency).
    """
    return sum(1 for record in decisions
               if record.verdict == VERDICT_DIRECT
               and record.site_kind in _DYNAMIC_SITE_KINDS)


def dilution_ratio(decisions: Iterable[DecisionRecord]) -> float:
    """Mean uncovered dispatch-weight fraction over guarded decisions.

    Only guarded decisions that actually consulted coverage data (their
    ``coverage`` field is set) participate; 0.0 when none did.
    """
    total = 0.0
    count = 0
    for record in decisions:
        if record.verdict == "guarded" and record.coverage is not None:
            total += 1.0 - record.coverage
            count += 1
    return total / count if count else 0.0


def derived_metrics(decisions: Sequence[DecisionRecord]) -> Dict[str, float]:
    """All derived metrics as a flat ``{metric name: value}`` mapping."""
    metrics: Dict[str, float] = {
        "provenance.decisions": float(len(decisions)),
        "provenance.inlines.direct": float(sum(
            1 for r in decisions if r.verdict == VERDICT_DIRECT)),
        "provenance.inlines.guarded": float(sum(
            1 for r in decisions if r.verdict == "guarded")),
        "provenance.refusals": float(sum(
            1 for r in decisions if r.verdict == VERDICT_REFUSED)),
        "provenance.guard_eliminations": float(
            guard_elimination_count(decisions)),
        "provenance.dilution_ratio": dilution_ratio(decisions),
    }
    for reason, count in refusal_histogram(decisions).items():
        metrics[f"provenance.refusals.{reason}"] = float(count)
    return metrics


def fold_into_telemetry(decisions: Sequence[DecisionRecord],
                        telemetry) -> Dict[str, float]:
    """Publish the derived metrics as telemetry gauges; returns them.

    Gauges are pure instrumentation (no simulated cycles), so folding
    preserves the cycle-identity contract of both subsystems.
    """
    metrics = derived_metrics(decisions)
    for name, value in metrics.items():
        telemetry.gauge(name, value)
    return metrics
