"""Cross-run decision diffing: which verdicts flipped, and why.

``repro decisions diff a.jsonl b.jsonl`` aligns two runs' decision
records by **(caller, site, compilation context)** -- the identity of a
call site in the paper's Equation-2 sense -- comparing the *final*
decision each run installed for every site.  The report separates:

* **verdict flips** -- refused in one run, inlined in the other, or
  direct vs guarded (a guard eliminated or introduced);
* **target changes** -- same verdict, different inlined target set;
* **reason changes** -- refused in both runs but for different codes;
* **unique sites** -- sites only one run's inline trees ever reached
  (tree-shape divergence caused by upstream flips).

Each flip carries both reason codes and an estimated code-size
contribution, so run-level speedup and code-space deltas (taken from the
log headers) can be attributed to specific decisions rather than waved
at "the policy".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.provenance.records import (DecisionRecord, ProvenanceRecord,
                                      RecordContext, final_decisions,
                                      read_decision_log, split_records)

#: Alignment key: (caller, site, context).
SiteKey = Tuple[str, int, RecordContext]

FLIP_VERDICT = "verdict"    #: inline <-> refused, or direct <-> guarded
FLIP_TARGETS = "targets"    #: same verdict, different target set
FLIP_REASON = "reason"      #: refused in both, different reason code


@dataclass(frozen=True)
class Flip:
    """One aligned site whose decision differs between the two runs."""

    key: SiteKey
    kind: str                 #: FLIP_VERDICT / FLIP_TARGETS / FLIP_REASON
    a: DecisionRecord
    b: DecisionRecord

    @property
    def code_delta_bc(self) -> int:
        """Estimated inlined-bytecode delta (B minus A) at this site."""
        size_a = (self.a.size_estimate or 0) if self.a.inline else 0
        size_b = (self.b.size_estimate or 0) if self.b.inline else 0
        return size_b - size_a

    def describe(self) -> str:
        caller, site, context = self.key
        chain = " <= ".join(f"{c}@{s}" for c, s in context)
        a, b = self.a, self.b
        return (f"{caller}@{site} [{chain}]: "
                f"{a.verdict}({a.reason}) -> {b.verdict}({b.reason})"
                + (f" targets {','.join(a.targets) or '-'} -> "
                   f"{','.join(b.targets) or '-'}"
                   if self.kind != FLIP_REASON else "")
                + (f" (est {self.code_delta_bc:+d} bc)"
                   if self.code_delta_bc else ""))


@dataclass
class DecisionDiff:
    """The full alignment of two runs' final decisions."""

    flips: List[Flip] = field(default_factory=list)
    only_a: List[DecisionRecord] = field(default_factory=list)
    only_b: List[DecisionRecord] = field(default_factory=list)
    unchanged: int = 0
    meta_a: Dict[str, Any] = field(default_factory=dict)
    meta_b: Dict[str, Any] = field(default_factory=dict)

    @property
    def verdict_flips(self) -> List[Flip]:
        return [f for f in self.flips if f.kind == FLIP_VERDICT]

    @property
    def is_identical(self) -> bool:
        return not (self.flips or self.only_a or self.only_b)


def diff_decisions(records_a: Sequence[ProvenanceRecord],
                   records_b: Sequence[ProvenanceRecord],
                   meta_a: Optional[Mapping[str, Any]] = None,
                   meta_b: Optional[Mapping[str, Any]] = None) \
        -> DecisionDiff:
    """Align two record streams and classify every divergence."""
    finals_a = final_decisions(split_records(records_a)[0])
    finals_b = final_decisions(split_records(records_b)[0])
    diff = DecisionDiff(meta_a=dict(meta_a or {}), meta_b=dict(meta_b or {}))

    for key in sorted(set(finals_a) | set(finals_b)):
        a = finals_a.get(key)
        b = finals_b.get(key)
        if a is None:
            diff.only_b.append(b)
            continue
        if b is None:
            diff.only_a.append(a)
            continue
        if a.verdict != b.verdict:
            diff.flips.append(Flip(key, FLIP_VERDICT, a, b))
        elif set(a.targets) != set(b.targets):
            diff.flips.append(Flip(key, FLIP_TARGETS, a, b))
        elif a.reason != b.reason:
            diff.flips.append(Flip(key, FLIP_REASON, a, b))
        else:
            diff.unchanged += 1
    return diff


def diff_logs(path_a: str, path_b: str) -> DecisionDiff:
    """Diff two on-disk ``*.decisions.jsonl`` logs."""
    meta_a, records_a = read_decision_log(path_a)
    meta_b, records_b = read_decision_log(path_b)
    return diff_decisions(records_a, records_b, meta_a, meta_b)


def _run_delta_lines(diff: DecisionDiff) -> List[str]:
    """Run-level metric deltas from the two log headers, when present."""
    lines: List[str] = []
    pairs = (("total_cycles", "total cycles", "{:+,.0f}"),
             ("live_opt_code_bytes", "live opt code bytes", "{:+,.0f}"),
             ("guard_tests", "guard tests", "{:+,.0f}"),
             ("guard_misses", "guard misses", "{:+,.0f}"))
    for key, label, fmt in pairs:
        a = diff.meta_a.get(key)
        b = diff.meta_b.get(key)
        if a is None or b is None:
            continue
        lines.append(f"  {label:<22} {a:,.0f} -> {b:,.0f} "
                     f"({fmt.format(b - a)})")
    return lines


def render_diff(diff: DecisionDiff, limit: Optional[int] = None) -> str:
    """The human-readable diff report."""
    label_a = diff.meta_a.get("label", "A")
    label_b = diff.meta_b.get("label", "B")
    lines = [f"Decision diff: {label_a}  vs  {label_b}"]
    deltas = _run_delta_lines(diff)
    if deltas:
        lines.append("run-level deltas (B - A):")
        lines.extend(deltas)
    lines.append(
        f"aligned sites: {diff.unchanged + len(diff.flips)} "
        f"({diff.unchanged} unchanged, {len(diff.flips)} flipped); "
        f"only in A: {len(diff.only_a)}, only in B: {len(diff.only_b)}")

    if diff.is_identical:
        lines.append("decisions are identical")
        return "\n".join(lines)

    shown = diff.flips if limit is None else diff.flips[:limit]
    if shown:
        lines.append("")
        lines.append(f"flipped decisions ({len(diff.flips)}):")
        for flip in shown:
            lines.append(f"  [{flip.kind}] {flip.describe()}")
        if limit is not None and len(diff.flips) > limit:
            lines.append(f"  ... and {len(diff.flips) - limit} more")

    for title, records in (("only in A", diff.only_a),
                           ("only in B", diff.only_b)):
        if not records:
            continue
        shown_records = records if limit is None else records[:limit]
        lines.append("")
        lines.append(f"sites {title} ({len(records)}):")
        for record in shown_records:
            lines.append(f"  {record.caller}@{record.site} "
                         f"{record.site_kind} {record.selector} "
                         f"{record.verdict}({record.reason})")
        if limit is not None and len(records) > limit:
            lines.append(f"  ... and {len(records) - limit} more")
    return "\n".join(lines)
