"""Structured provenance records and their versioned JSONL schema.

One adaptive run produces a stream of records:

* :class:`DecisionRecord` -- one oracle verdict at one call site inside
  one compilation, with the full compilation context, reason code, size
  class, Equation-3 coverage, guard kind, and the profile weight behind
  the verdict;
* :class:`CompilationRecord` -- one optimizing compilation (the unit the
  decisions belong to);
* :class:`EventRecord` -- controller plans and deferrals, code-cache
  evictions, invalidations, and OSR requests.

On-disk format (``*.decisions.jsonl``): the first line is a header
object ``{"schema": "repro.provenance/v1", ...}`` carrying run metadata;
every following line is one record with a ``"t"`` discriminator
(``decision`` / ``compilation`` / ``event``).  The schema version is
bumped only for breaking changes (renamed/removed fields or reason
codes); added fields and added reason codes are backward compatible and
readers must ignore/pass through what they do not know.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import (Any, Dict, Iterable, List, Mapping, Optional, Sequence,
                    Tuple, Union)

#: Versioned schema identifier written into every JSONL header.
SCHEMA = "repro.provenance/v1"

#: A compilation context as stored in records: innermost-first
#: ``((caller_id, site), ...)`` exactly like
#: :data:`repro.profiles.trace.Context`.
RecordContext = Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class DecisionRecord:
    """One oracle verdict for one call site, with its evidence."""

    clock: float                 #: cycle clock at decision time
    root: str                    #: compilation root method id
    version: int                 #: optimizing version being built
    caller: str                  #: method containing the call site
    site: int                    #: call-site id within ``caller``
    depth: int                   #: inline nesting depth of the site
    site_kind: str               #: "static" | "virtual" | "interface"
    selector: str                #: callee selector or static target id
    verdict: str                 #: "direct" | "guarded" | "refused"
    reason: str                  #: a :class:`ReasonCode` value
    context: RecordContext       #: innermost-first compilation context
    targets: Tuple[str, ...] = ()  #: inlined target method ids
    size_class: Optional[str] = None   #: callee size class, when screened
    size_estimate: Optional[int] = None  #: estimated inlined bytecodes
    current_size: int = 0        #: bytecodes committed before this site
    coverage: Optional[float] = None   #: Eq.-3 guard coverage, when tested
    guard_kind: Optional[str] = None   #: class_test/method_test/preexistence
    profile_weight: Optional[float] = None  #: profile weight consumed

    @property
    def inline(self) -> bool:
        return self.verdict != "refused"

    @property
    def site_key(self) -> Tuple[str, int, RecordContext]:
        """The (caller, site, context) key decision diffs align on."""
        return (self.caller, self.site, self.context)


@dataclass(frozen=True)
class CompilationRecord:
    """One optimizing compilation, grouping its decision records."""

    clock: float
    method: str
    version: int
    reason: str                  #: "hot" | "osr" | "missing_edge"
    rules_fingerprint: int
    inlined_bytecodes: int
    code_bytes: int
    compile_cycles: float
    decisions: int               #: decision records made in this compile


@dataclass(frozen=True)
class EventRecord:
    """One non-decision provenance event (controller/cache/runtime)."""

    clock: float
    kind: str                    #: an :class:`EventKind` value
    subject: str                 #: method id or other subject
    detail: Dict[str, Any] = field(default_factory=dict)


ProvenanceRecord = Union[DecisionRecord, CompilationRecord, EventRecord]

#: ``"t"`` discriminator per record type.
_TYPE_TAGS = {DecisionRecord: "decision", CompilationRecord: "compilation",
              EventRecord: "event"}
_TAG_TYPES = {tag: cls for cls, tag in _TYPE_TAGS.items()}


def record_to_dict(record: ProvenanceRecord) -> dict:
    """One record as a JSON-ready dict with its ``"t"`` discriminator."""
    payload: Dict[str, Any] = {"t": _TYPE_TAGS[type(record)]}
    payload.update(dataclasses.asdict(record))
    if isinstance(record, DecisionRecord):
        payload["context"] = [list(pair) for pair in record.context]
        payload["targets"] = list(record.targets)
    return payload


def record_from_dict(raw: Mapping[str, Any]) -> ProvenanceRecord:
    """Rebuild one record from :func:`record_to_dict` output."""
    fields = dict(raw)
    tag = fields.pop("t", None)
    cls = _TAG_TYPES.get(tag)
    if cls is None:
        raise ValueError(f"unknown provenance record type {tag!r}")
    if cls is DecisionRecord:
        fields["context"] = tuple((str(c), int(s))
                                  for c, s in fields["context"])
        fields["targets"] = tuple(fields.get("targets", ()))
    known = {f.name for f in dataclasses.fields(cls)}
    # Forward compatibility: ignore fields added by newer minor revisions.
    fields = {k: v for k, v in fields.items() if k in known}
    return cls(**fields)


# -- JSONL persistence ---------------------------------------------------------


def dump_jsonl(records: Iterable[ProvenanceRecord],
               meta: Optional[Mapping[str, Any]] = None) -> str:
    """Serialize a record stream (header line first) to JSONL text."""
    header: Dict[str, Any] = {"schema": SCHEMA}
    if meta:
        header.update(meta)
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(json.dumps(record_to_dict(r), sort_keys=True)
                 for r in records)
    return "\n".join(lines) + "\n"


def write_decision_log(path: str, records: Iterable[ProvenanceRecord],
                       meta: Optional[Mapping[str, Any]] = None) -> int:
    """Atomically write a decision log; returns the record count.

    Atomic for the same reason the sweep cell cache is: a kill mid-write
    must not leave a half-log that poisons a later ``decisions diff``.
    """
    records = list(records)
    text = dump_jsonl(records, meta)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)
    return len(records)


def parse_jsonl(text: str) \
        -> Tuple[Dict[str, Any], List[ProvenanceRecord]]:
    """Parse JSONL text into ``(header meta, records)``.

    Raises :class:`ValueError` on a missing/incompatible schema header so
    callers fail loudly instead of silently diffing garbage.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty decision log")
    header = json.loads(lines[0])
    schema = header.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"unsupported decision-log schema {schema!r} "
                         f"(this build reads {SCHEMA!r})")
    return header, [record_from_dict(json.loads(line))
                    for line in lines[1:]]


def read_decision_log(path: str) \
        -> Tuple[Dict[str, Any], List[ProvenanceRecord]]:
    """Read one ``*.decisions.jsonl`` file into ``(meta, records)``."""
    with open(path) as handle:
        return parse_jsonl(handle.read())


def split_records(records: Iterable[ProvenanceRecord]) \
        -> Tuple[List[DecisionRecord], List[CompilationRecord],
                 List[EventRecord]]:
    """Partition a mixed record stream by type, preserving order."""
    decisions: List[DecisionRecord] = []
    compilations: List[CompilationRecord] = []
    events: List[EventRecord] = []
    for record in records:
        if isinstance(record, DecisionRecord):
            decisions.append(record)
        elif isinstance(record, CompilationRecord):
            compilations.append(record)
        else:
            events.append(record)
    return decisions, compilations, events


def final_decisions(decisions: Sequence[DecisionRecord]) \
        -> Dict[Tuple[str, int, RecordContext], DecisionRecord]:
    """The *last* decision per (caller, site, context) key.

    A method recompiled N times decides each site N times; the last
    record describes the code actually installed at the end of the run,
    which is what cross-run diffs should compare.  Non-decision records
    in the input (a full mixed log) are ignored.
    """
    latest: Dict[Tuple[str, int, RecordContext], DecisionRecord] = {}
    for record in decisions:
        if isinstance(record, DecisionRecord):
            latest[record.site_key] = record
    return latest
