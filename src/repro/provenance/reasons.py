"""The closed vocabularies of the decision-provenance layer.

Every oracle verdict carries a **reason code** drawn from
:class:`ReasonCode` -- a closed enum replacing the free-text reason
strings that used to be scattered through
:mod:`repro.compiler.oracle`.  A closed vocabulary is what makes
decision logs diffable: two runs can only be aligned record-by-record
when "why" is an enumerable value, not prose.

:class:`EventKind` is the shared event vocabulary used by *both* the
provenance recorder and :mod:`repro.aos.event_log` (whose module-level
constants are derived from it), so the two logs cannot drift apart.

Versioning policy: enum **values** are part of the on-disk JSONL schema
(see :mod:`repro.provenance.records`).  Renaming or removing a value is
a schema break and must bump ``records.SCHEMA``; adding a new value is
backward compatible (old readers must treat unknown codes as opaque
strings).
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Union


class ReasonCode(enum.Enum):
    """Why the oracle answered the way it did, as a closed code.

    The values are stable strings (they appear verbatim in decision
    records, ``Decision.reason``, and the AOS database's recorded
    refusals).  Grouped by the kind of verdict they accompany:
    """

    # -- inline verdicts (direct or guarded) ---------------------------------
    #: Statically-bound callee under the tiny limit: always inlined.
    TINY = "tiny"
    #: Statically-bound small callee within the code-expansion budget.
    SMALL = "small"
    #: Small callee past the normal budget, forced by a hot profile rule
    #: (paper Section 3.1, third profile use).
    SMALL_HOT = "small-hot"
    #: Medium callee predicted by the profile (profile-directed only).
    MEDIUM_HOT = "medium-hot"
    #: Guarded inline of the profile's predicted target set (Equation 3
    #: partial match + intersection of target sets).
    PROFILE = "profile"
    #: Static-oracle only: a bound callee past the normal limits, forced
    #: by the static call graph's frequency estimate (no profile input).
    STATIC_HOT = "static-hot"
    #: Static-context-oracle only: k-CFA proves every call string
    #: compatible with the compilation context reaches one target, so the
    #: site inlines *directly* -- the context, not a guard, protects it.
    STATIC_CTX_MONO = "static-ctx-mono"
    #: The inline was driven entirely by *fleet-aggregated* profile rules
    #: (warm-start bootstrap from the sharded profile store), before this
    #: instance observed the behaviour itself.  Replaces the profile-path
    #: reason only while every applicable rule at the site has fleet
    #: origin, so warm-start decisions stay traceable end to end.
    FLEET_WARM = "fleet-warm"
    #: Guarded loaded-world CHA inline whose method-test guard was
    #: *elided*: the speculation dataflow analysis proved the receiver
    #: preexists the compilation (Detlefs & Agesen), so invalidation
    #: alone protects the inline and the guard test is never emitted.
    #: The verdict stays ``guarded`` -- only the guard's cost changes.
    GUARD_ELIDED_PREEXIST = "guard-elided-preexist"
    #: Deopt planner only: the guarded site was compiled as a cheap-exit
    #: OSR point -- no guard cycles on the fast path, a live-state-mapped
    #: deoptimization exit on a broken speculation (``deopt_strategy``
    #: ``osr-exit``/``planned`` under ``deopt_planning_enabled``).
    DEOPT_PLANNED_OSR = "deopt-planned-osr"
    #: Deopt planner only: the planner evaluated the site under the
    #: ``planned`` strategy and *kept* the full guard chain (exit too
    #: expensive relative to its liveness-derived state-mapping cost).
    DEOPT_PLANNED_GUARD = "deopt-planned-guard"

    # -- refusals -------------------------------------------------------------
    #: Callee is the compilation root or already on the inline chain.
    RECURSIVE = "recursive"
    #: Site sits at the maximum inline nesting depth.
    DEPTH = "depth"
    #: Callee is in the never-inlined size class.
    LARGE = "large"
    #: Inlining would exceed the absolute per-method size cap.
    SPACE = "space"
    #: Small callee past the expansion budget with no hot rule to force it.
    BUDGET = "budget"
    #: Medium/virtual site with no applicable profile prediction.
    NO_PROFILE = "no_profile"
    #: Profile predicted targets, but none survived the size/recursion
    #: screens.
    NO_ELIGIBLE_TARGET = "no_eligible_target"
    #: Chosen targets cover too little of the site's context-applicable
    #: dispatch weight (the skewed-receiver requirement).
    UNSKEWED = "unskewed"
    #: Static-oracle only: the static call graph sees multiple targets at
    #: this site and there is no profile to discriminate between them.
    STATIC_POLY = "static-poly"
    #: Static-oracle only: a bound medium callee whose static frequency
    #: estimate is below the hotness threshold.
    STATIC_COLD = "static-cold"
    #: Static-context-oracle only: even conditioned on the compilation
    #: context, k-CFA still sees multiple targets at the site.
    STATIC_CTX_POLY = "static-ctx-poly"
    #: Speculation-risk analysis only: the assumption's invalidation
    #: cone carries too much predicted class-loading churn, so the
    #: speculative inline is refused rather than compiled and soon
    #: invalidated (``speculation_refuse_min_risk`` knob).
    SPECULATION_RISK = "speculation-risk"


#: Every legal reason string, for validation and for the DESIGN.md table.
REASON_CODES: FrozenSet[str] = frozenset(code.value for code in ReasonCode)

#: Reason codes that accompany an *inline* verdict.
INLINE_REASONS: FrozenSet[str] = frozenset((
    ReasonCode.TINY.value, ReasonCode.SMALL.value, ReasonCode.SMALL_HOT.value,
    ReasonCode.MEDIUM_HOT.value, ReasonCode.PROFILE.value,
    ReasonCode.STATIC_HOT.value, ReasonCode.STATIC_CTX_MONO.value,
    ReasonCode.FLEET_WARM.value, ReasonCode.GUARD_ELIDED_PREEXIST.value,
    ReasonCode.DEOPT_PLANNED_OSR.value,
    ReasonCode.DEOPT_PLANNED_GUARD.value))

#: Reason codes that accompany a *refused* verdict.
REFUSAL_REASONS: FrozenSet[str] = REASON_CODES - INLINE_REASONS


def reason_value(reason: Union["ReasonCode", str]) -> str:
    """Normalize a :class:`ReasonCode` member or plain string to the code."""
    if isinstance(reason, ReasonCode):
        return reason.value
    return str(reason)


class EventKind(enum.Enum):
    """Shared vocabulary of adaptive-system events.

    :mod:`repro.aos.event_log` derives its module-level kind constants
    from the first six members; the provenance recorder's event records
    use the same values, so the two logs speak one language.
    """

    COMPILE = "compile"
    RULE_ADDED = "rule_added"
    RULE_RETIRED = "rule_retired"
    INVALIDATE = "invalidate"
    OSR = "osr"
    DECAY = "decay"
    # Provenance-only kinds (controller and code-cache provenance).
    PLAN = "plan"
    PLAN_DEFERRED = "plan_deferred"
    EVICTION = "eviction"
    #: A runtime bootstrapped its profile state from the fleet store
    #: before executing (subject = program fingerprint; detail carries
    #: the seeded rule count and profile weight).
    WARM_START = "warm_start"


def event_value(kind: Union["EventKind", str]) -> str:
    """Normalize an :class:`EventKind` member or plain string to its value."""
    if isinstance(kind, EventKind):
        return kind.value
    return str(kind)


# -- verdicts ------------------------------------------------------------------

#: Verdict strings used in decision records.
VERDICT_DIRECT = "direct"
VERDICT_GUARDED = "guarded"
VERDICT_REFUSED = "refused"

VERDICTS = (VERDICT_DIRECT, VERDICT_GUARDED, VERDICT_REFUSED)

#: Guard kinds annotating how a devirtualized inline is protected.
GUARD_CLASS_TEST = "class_test"      # profile-guided guard on receiver class
GUARD_METHOD_TEST = "method_test"    # loaded-world CHA, guarded variant
GUARD_PREEXISTENCE = "preexistence"  # loaded-world CHA, no guard (invalidation)

GUARD_KINDS = (GUARD_CLASS_TEST, GUARD_METHOD_TEST, GUARD_PREEXISTENCE)
