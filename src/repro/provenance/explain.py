"""Render per-site decision trees for one compiled method.

``repro explain <benchmark> <method>`` answers the question the raw run
metrics cannot: *why* does the installed code for a method look the way
it does?  For every optimizing compilation of the method it prints the
oracle's verdict at every call site considered -- indented by inline
depth, so the output reads as the decision tree the compiler actually
walked -- together with the reason code and the profile evidence
(Equation-3 coverage, profile weight, guard kind) behind each verdict.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.provenance.records import (CompilationRecord, DecisionRecord,
                                      ProvenanceRecord, split_records)


def available_roots(records: Iterable[ProvenanceRecord]) -> List[str]:
    """Method ids with at least one recorded compilation, sorted."""
    decisions, compilations, _events = split_records(records)
    roots = {c.method for c in compilations}
    roots.update(d.root for d in decisions)
    return sorted(roots)


def format_decision(record: DecisionRecord) -> str:
    """One decision record as a single explain line (no indentation)."""
    head = (f"@{record.site} {record.site_kind} {record.selector} "
            f"=> {record.verdict} [{record.reason}]")
    evidence = []
    if record.targets and (len(record.targets) > 1
                           or record.targets[0] != record.selector):
        evidence.append("targets=" + ",".join(record.targets))
    if record.size_class is not None:
        evidence.append(f"size={record.size_class}")
    if record.size_estimate is not None:
        evidence.append(f"est={record.size_estimate}bc"
                        f"@{record.current_size}")
    if record.coverage is not None:
        evidence.append(f"coverage={record.coverage:.2f}")
    if record.profile_weight is not None:
        evidence.append(f"weight={record.profile_weight:g}")
    if record.guard_kind is not None:
        evidence.append(f"guard={record.guard_kind}")
    if evidence:
        return head + " (" + " ".join(evidence) + ")"
    return head


def _compilation_header(compilation: CompilationRecord) -> str:
    return (f"compile v{compilation.version} of {compilation.method} "
            f"[{compilation.reason}] @ {compilation.clock:,.0f}: "
            f"{compilation.inlined_bytecodes} bc inlined, "
            f"{compilation.code_bytes} code bytes, "
            f"{compilation.decisions} decisions")


def explain_method(records: Sequence[ProvenanceRecord],
                   method_id: str) -> str:
    """Per-compilation decision trees for ``method_id``.

    Raises :class:`ValueError` (listing the methods that *were*
    compiled) when the method has no recorded compilation, so CLI users
    get a correction instead of silence.
    """
    decisions, compilations, _events = split_records(records)
    mine = [c for c in compilations if c.method == method_id]
    mine_decisions = [d for d in decisions if d.root == method_id]
    if not mine and not mine_decisions:
        roots = available_roots(records)
        raise ValueError(
            f"no recorded compilation of {method_id!r}; methods with "
            f"provenance: {', '.join(roots) if roots else '(none)'}")

    by_version: Dict[int, List[DecisionRecord]] = {}
    for record in mine_decisions:
        by_version.setdefault(record.version, []).append(record)

    lines: List[str] = [f"Decision provenance for {method_id}"]
    seen_versions = set()
    for compilation in mine:
        seen_versions.add(compilation.version)
        lines.append("")
        lines.append(_compilation_header(compilation))
        for record in by_version.get(compilation.version, []):
            lines.append("  " * (record.depth + 1)
                         + format_decision(record))
    # Decisions whose compilation record is missing (e.g. a log truncated
    # mid-compile) still render, under a synthetic header.
    for version in sorted(set(by_version) - seen_versions):
        lines.append("")
        lines.append(f"compile v{version} of {method_id} [incomplete]")
        for record in by_version[version]:
            lines.append("  " * (record.depth + 1)
                         + format_decision(record))
    return "\n".join(lines)
