"""The eight benchmark personalities, calibrated to the paper's Table 1.

Static characteristics (classes loaded, methods and bytecodes dynamically
compiled) match Table 1.  Dynamic personalities encode what is known about
each benchmark's behaviour -- from the paper itself and from the SPEC
documentation -- in the generator's vocabulary:

* **compress** -- tight monomorphic compression loops; little polymorphism,
  long run: context sensitivity should change almost nothing.
* **jess** -- expert-system engine: many small methods, highly correlated
  dispatch (fact kinds per rule), *short* execution, so compile-time
  savings are visible in wall-clock (the paper's standout speedup).
* **db** -- memory-resident database: few, very hot polymorphic sites with
  high fanout (comparators/shells per query type).  Context sensitivity
  picks the right target per query context where context-insensitive
  guarded inlining thrashes -- the paper notes db trades code-size growth
  for speedup.
* **javac** -- the JDK compiler: a big call graph, deep AST-visitor chains
  needing depth 3-4, large methods interposed in hot chains, and many
  shared utility callees (dilution-prone).
* **mpegaudio** -- computation-heavy decoding: hot numeric kernels, little
  dispatch; uncorrelated polymorphism only.
* **mtrt** -- raytracer (two "threads" modeled as interleaved driver
  families): correlated intersection dispatch beneath large scene-traversal
  methods.
* **jack** -- parser generator: deep correlated chains (grammar actions),
  many parameterless utility callees.
* **SPECjbb2000** -- transaction mix: five transaction-type drivers over
  shared warehouse operations; broad correlated dispatch and many shared
  mediums.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.jvm.errors import ConfigError
from repro.workloads.generator import (BenchmarkSpec, GeneratedBenchmark,
                                       PatternSpec, SharedMediumSpec,
                                       generate)

#: Table 1 of the paper: (classes, methods, bytecodes) per benchmark.
TABLE1 = {
    "compress": (48, 489, 19_480),
    "jess": (176, 1_101, 35_316),
    "db": (41, 510, 20_495),
    "javac": (176, 1_496, 56_282),
    "mpegaudio": (85, 712, 51_308),
    "mtrt": (62, 629, 24_435),
    "jack": (86, 743, 36_253),
    "SPECjbb2000": (132, 1_778, 73_608),
}

#: Presentation order used in every figure (matches the paper's x-axes).
BENCHMARK_ORDER = ("compress", "jess", "db", "javac", "mpegaudio", "mtrt",
                   "jack", "SPECjbb2000")


def _spec(name: str, seed: int, iterations: int, **kwargs) -> BenchmarkSpec:
    classes, methods, bytecodes = TABLE1[name]
    return BenchmarkSpec(name=name, classes=classes, methods=methods,
                         bytecodes=bytecodes, seed=seed,
                         iterations=iterations, **kwargs)


SPECS: Dict[str, BenchmarkSpec] = {
    "compress": _spec(
        "compress", seed=1101, iterations=7_500, drivers=3, driver_work=34,
        patterns=(
            PatternSpec(fanout=2, correlated=True, depth=2, callee_work=11),
        ),
        shared=(SharedMediumSpec(static=True),),
        cond_patterns=1, helper_chain=4),

    "jess": _spec(
        "jess", seed=1102, iterations=1_700, drivers=4, driver_work=14,
        patterns=(
            PatternSpec(fanout=2, correlated=True, depth=2, callee_work=15),
            PatternSpec(fanout=3, correlated=True, depth=2, callee_work=14),
            PatternSpec(fanout=2, correlated=True, depth=3, callee_work=15,
                        proc_static=False),
            PatternSpec(fanout=2, correlated=True, depth=2, callee_work=13,
                        target_parameterless=True),
        ),
        shared=(SharedMediumSpec(static=True),
                SharedMediumSpec(static=True, parameterless=True)),
        cond_patterns=2, helper_chain=2),

    "db": _spec(
        "db", seed=1103, iterations=5_400, drivers=3, driver_work=34,
        patterns=(
            PatternSpec(fanout=5, correlated=True, depth=2, callee_work=13,
                        duty_cycle=2),
            PatternSpec(fanout=5, correlated=True, depth=2, callee_work=12,
                        duty_cycle=2),
        ),
        shared=(SharedMediumSpec(static=True),
                SharedMediumSpec(static=True, medium_work=26)),
        cond_patterns=0, helper_chain=4),

    "javac": _spec(
        "javac", seed=1104, iterations=3_000, drivers=6, driver_work=20,
        patterns=(
            PatternSpec(fanout=2, correlated=True, depth=2, callee_work=11),
            PatternSpec(fanout=3, correlated=True, depth=3, callee_work=12,
                        proc_static=False, wrappers_static=False),
            PatternSpec(fanout=2, correlated=True, depth=4, callee_work=11),
            PatternSpec(fanout=3, correlated=False, depth=2, callee_work=10),
            PatternSpec(fanout=2, correlated=True, depth=2, callee_work=12,
                        target_parameterless=True),
        ),
        shared=(SharedMediumSpec(static=True),
                SharedMediumSpec(static=False, parameterless=True)),
        cond_patterns=2, helper_chain=4, large_in_chain=True),

    "mpegaudio": _spec(
        "mpegaudio", seed=1105, iterations=6_200, drivers=3, driver_work=62,
        patterns=(
            PatternSpec(fanout=2, correlated=False, depth=2, callee_work=12),
        ),
        shared=(SharedMediumSpec(static=True, medium_work=36),),
        cond_patterns=1, helper_chain=5),

    "mtrt": _spec(
        "mtrt", seed=1106, iterations=3_900, drivers=4, driver_work=18,
        patterns=(
            PatternSpec(fanout=2, correlated=True, depth=2, callee_work=12),
            PatternSpec(fanout=3, correlated=True, depth=3, callee_work=11),
            PatternSpec(fanout=2, correlated=True, depth=2, callee_work=13,
                        target_parameterless=True),
        ),
        shared=(SharedMediumSpec(static=True),
                SharedMediumSpec(static=False)),
        cond_patterns=1, helper_chain=3, large_in_chain=True),

    "jack": _spec(
        "jack", seed=1107, iterations=3_400, drivers=4, driver_work=17,
        patterns=(
            PatternSpec(fanout=2, correlated=True, depth=3, callee_work=13),
            PatternSpec(fanout=2, correlated=True, depth=2, callee_work=11,
                        target_parameterless=True),
        ),
        shared=(SharedMediumSpec(static=True, parameterless=True),
                SharedMediumSpec(static=True)),
        cond_patterns=2, helper_chain=4),

    "SPECjbb2000": _spec(
        "SPECjbb2000", seed=1108, iterations=4_200, drivers=5,
        driver_work=20,
        patterns=(
            PatternSpec(fanout=2, correlated=True, depth=2, callee_work=12),
            PatternSpec(fanout=4, correlated=True, depth=2, callee_work=11),
            PatternSpec(fanout=3, correlated=True, depth=3, callee_work=12,
                        proc_static=False),
            PatternSpec(fanout=2, correlated=False, depth=2, callee_work=10),
            PatternSpec(fanout=2, correlated=True, depth=3, callee_work=11,
                        target_parameterless=True),
        ),
        shared=(SharedMediumSpec(static=True),
                SharedMediumSpec(static=False),
                SharedMediumSpec(static=True, parameterless=True),
                SharedMediumSpec(static=False, medium_work=30)),
        cond_patterns=2, helper_chain=3),
}


def benchmark_names() -> Tuple[str, ...]:
    """All benchmark names, in the paper's presentation order."""
    return BENCHMARK_ORDER


def build_benchmark(name: str,
                    scale: float = 1.0,
                    seed_offset: int = 0) -> GeneratedBenchmark:
    """Generate one benchmark; ``scale`` shrinks/grows its run length.

    ``scale`` rescales only the *dynamic* length (main-loop iterations); the
    static Table 1 characteristics are untouched, so quick test runs still
    exercise the full program shape.  ``seed_offset`` shifts the generator
    seed for multi-seed experiments (fleet instances, causal-profiler
    replicates); the program *shape* is seed-dependent only in its random
    draws, so offset runs are same-personality variants, not new
    benchmarks.
    """
    try:
        spec = SPECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {name!r}; expected one of "
            f"{BENCHMARK_ORDER}") from None
    if scale != 1.0 or seed_offset:
        iterations = (max(50, int(spec.iterations * scale))
                      if scale != 1.0 else spec.iterations)
        spec = dataclasses.replace(spec, iterations=iterations,
                                   seed=spec.seed + seed_offset)
    return generate(spec)


def build_suite(scale: float = 1.0) -> Dict[str, GeneratedBenchmark]:
    """Generate the whole suite (Table 1 order)."""
    return {name: build_benchmark(name, scale) for name in BENCHMARK_ORDER}
