"""A small fluent DSL for constructing mini-JVM programs.

The builder's main job is bookkeeping that the raw
:mod:`repro.jvm.program` model leaves to the caller: allocating
program-unique call-site ids, registering classes and methods, and
validating the result.  Both the hand-written example programs (the
paper's Figure 1 ``HashMapTest``) and the synthetic benchmark generator
are written against this API.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.jvm.errors import ProgramError
from repro.jvm.program import (ClassDef, Expr, InterfaceCall, MethodDef,
                               Program, StaticCall, Stmt, VirtualCall)

#: When true, every :meth:`ProgramBuilder.build` additionally runs the
#: full :mod:`repro.analysis.verifier` pass and raises on any finding.
#: Off by default (production builds pay only ``Program.validate``); the
#: test suite turns it on globally, and ``REPRO_VERIFY_BUILDS=1`` turns
#: it on for ad-hoc runs.
VERIFY_BUILDS = os.environ.get("REPRO_VERIFY_BUILDS", "0") not in ("", "0")


class ProgramBuilder:
    """Accumulates classes/methods and allocates call-site ids."""

    def __init__(self, name: str):
        self._program = Program(name)
        self._next_site = 0

    # -- sites -------------------------------------------------------------------

    def site(self) -> int:
        """Allocate a fresh, program-unique call-site id."""
        site = self._next_site
        self._next_site += 1
        return site

    # -- classes -----------------------------------------------------------------

    def cls(self, name: str, superclass: Optional[str] = None,
            interfaces: Sequence[str] = ()) -> ClassDef:
        """Declare a class (idempotent when already declared identically)."""
        existing = self._program.classes.get(name)
        if existing is not None:
            if (existing.superclass != superclass
                    or existing.interfaces != tuple(interfaces)):
                raise ProgramError(
                    f"class {name} redeclared with a different shape")
            return existing
        return self._program.add_class(
            ClassDef(name, superclass, interfaces))

    # -- methods -----------------------------------------------------------------

    def method(self, klass: str, name: str, body: Sequence[Stmt],
               params: int = 0, static: bool = False,
               locals_: int = 12) -> MethodDef:
        """Declare a method on an (already declared) class.

        ``params`` counts *all* parameter slots, including the receiver for
        instance methods -- i.e. an instance method taking one explicit
        argument has ``params=2``.
        """
        cls = self._program.classes.get(klass)
        if cls is None:
            raise ProgramError(f"declare class {klass!r} before its methods")
        method = MethodDef(klass, name, params, static, body,
                           num_locals=locals_)
        return cls.declare(method)

    def static_method(self, klass: str, name: str, body: Sequence[Stmt],
                      params: int = 0, locals_: int = 12) -> MethodDef:
        return self.method(klass, name, body, params=params, static=True,
                           locals_=locals_)

    # -- call helpers ---------------------------------------------------------------

    def call(self, target: str, args: Sequence[Expr] = (),
             dst: Optional[int] = None) -> StaticCall:
        """A statically-bound call with a fresh site id."""
        return StaticCall(self.site(), target, args, dst)

    def vcall(self, selector: str, receiver: Expr,
              args: Sequence[Expr] = (),
              dst: Optional[int] = None) -> VirtualCall:
        """A virtual call with a fresh site id."""
        return VirtualCall(self.site(), selector, receiver, args, dst)

    def icall(self, selector: str, receiver: Expr,
              args: Sequence[Expr] = (),
              dst: Optional[int] = None) -> InterfaceCall:
        """An interface invocation with a fresh site id."""
        return InterfaceCall(self.site(), selector, receiver, args, dst)

    # -- finish -----------------------------------------------------------------------

    def entry(self, method_id: str) -> None:
        self._program.set_entry(method_id)

    def build(self, verify: Optional[bool] = None) -> Program:
        """Validate and return the finished program.

        ``verify=True`` (or the module-level :data:`VERIFY_BUILDS` debug
        gate, when ``verify`` is left unset) additionally runs the full
        analysis-layer verifier and raises
        :class:`repro.analysis.verifier.VerificationFailure` with every
        structured finding if the program is malformed.
        """
        self._program.validate()
        if verify if verify is not None else VERIFY_BUILDS:
            # Lazy import: the workloads layer must not depend on the
            # analysis layer except behind this debug gate.
            from repro.analysis.verifier import verify_program
            verify_program(self._program).raise_if_failed()
        return self._program

    @property
    def program(self) -> Program:
        """The (possibly not yet validated) program under construction."""
        return self._program
