"""A workload where class loading breaks CHA devirtualization mid-run.

For the first part of the run only ``Circle`` is instantiated, so
loaded-world class hierarchy analysis sees a single ``area`` target and
the optimizing compiler devirtualizes and inlines it without a guard
(recording a CHA dependency; the receiver pre-exists the activation, so
no deoptimization machinery is needed).  At ``load_at``, the program
instantiates ``Square`` for the first time -- the moment Jikes RVM's
class loader would broaden the hierarchy -- which must invalidate the
devirtualized code and force a recompile that now needs profile-guided
guards.

Used by ``examples/class_loading.py`` and the invalidation tests.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.jvm.program import (Arg, Const, If, Let, Local, Loop, Lt, Mod,
                               New, Pick, Program, Return, StaticCall,
                               VirtualCall, Work)
from repro.workloads.builder import ProgramBuilder


class LazyLoadingProgram(NamedTuple):
    program: Program
    area_site: int
    iterations: int
    load_at: int


def build(iterations: int = 30_000,
          load_fraction: float = 0.6) -> LazyLoadingProgram:
    """Build the program; ``Square`` first loads at ``load_fraction``."""
    load_at = int(iterations * load_fraction)
    b = ProgramBuilder("lazy_loading")
    b.cls("Shape")
    b.cls("Circle", superclass="Shape")
    b.cls("Square", superclass="Shape")
    b.cls("App")

    b.method("Shape", "area", [Work(10), Return(Const(0))], params=1)
    b.method("Circle", "area", [Work(10), Return(Const(1))], params=1)
    b.method("Square", "area", [Work(10), Return(Const(2))], params=1)

    # The hot method: receiver arrives as a parameter of the compiled
    # root (pre-existence holds), so loaded-world CHA devirtualizes
    # without a guard.  The method is deliberately *large* so it is always
    # compiled as its own root -- inlined copies would not satisfy
    # root-activation pre-existence and would be guarded instead.
    area_site = b.site()
    b.static_method("App", "measure", [
        Work(52),
        VirtualCall(area_site, "area", Arg(0), dst=0),
        Work(52),
        Return(Local(0)),
    ], params=1, locals_=2)

    measure_site = b.site()
    b.static_method("App", "main", [
        New(0, "Circle"),
        Loop(Const(iterations), 1, [
            # Past the load point, odd iterations use a fresh Square.
            If(Lt(Local(1), Const(load_at)),
               [Let(2, Local(0))],
               [If(Mod(Local(1), Const(2)),
                   [New(3, "Square"), Let(2, Local(3))],
                   [Let(2, Local(0))])]),
            StaticCall(measure_site, "App.measure", [Local(2)], dst=4),
        ]),
        Return(Const(0)),
    ], params=0, locals_=6)
    b.entry("App.main")
    return LazyLoadingProgram(b.build(), area_site, iterations, load_at)
