"""The paper's Figure 1 motivating example, as a mini-JVM program.

``HashMapTest.main`` builds a hash map keyed once by a ``MyKey`` and once
by a plain ``Object``, then repeatedly calls ``runTest``, which performs
two ``HashMap.get`` calls.  Inside ``get``, the ``key.hashCode()`` virtual
call resolves to ``MyKey.hashCode`` for the first ``runTest`` call site
and ``Object.hashCode`` for the second:

* a **context-insensitive** profile of the ``hashCode`` site shows a 50/50
  target split (the paper's Figure 2b), so the inliner either guards in
  *both* implementations everywhere or inlines neither;
* a **depth-2 context-sensitive** profile (Figure 2c) shows each
  ``runTest`` call site resolving 100% to one implementation, so exactly
  the right target is inlined in each inlined copy of ``get``.

The module exposes the named call sites so tests and the Figure 2 bench
can assert the exact profile split.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

from repro.jvm.program import (Arg, Const, Let, Local, Loop, Mod, New,
                               Program, Return, StaticCall, VirtualCall,
                               Work)
from repro.workloads.builder import ProgramBuilder


class HashMapSites(NamedTuple):
    """The call sites the paper's discussion names."""

    cs1: int            # first map.get in runTest
    cs2: int            # second map.get in runTest
    hash_site: int      # key.hashCode() inside HashMap.get
    equals_site: int    # key.equals() inside HashMap.get
    run_site: int       # main's call to runTest


def build(iterations: int = 4000) -> "HashMapProgram":
    """Construct the Figure 1 program.

    ``iterations`` controls how many times ``main`` invokes ``runTest`` --
    enough iterations must elapse for the online system to sample, derive
    rules, and recompile.
    """
    b = ProgramBuilder("hashmap_example")

    b.cls("Object")
    b.cls("MyKey", superclass="Object")
    b.cls("Integer", superclass="Object")
    b.cls("HashMap", superclass="Object")
    b.cls("HashMapTest")

    # Object.hashCode / Object.equals -- small leaf methods.
    b.method("Object", "hashCode", [Work(10), Return(Const(7))], params=1)
    b.method("Object", "equals", [Work(8), Return(Const(0))], params=2)
    # MyKey overrides both.
    b.method("MyKey", "hashCode", [Work(10), Return(Const(22))], params=1)
    b.method("MyKey", "equals", [Work(8), Return(Const(1))], params=2)

    # Integer.intValue -- tiny, statically bindable (sole implementation).
    b.method("Integer", "intValue", [Work(3), Return(Const(1))], params=1)

    # HashMap.get(this, key): index = key.hashCode() % N; probe; maybe
    # key.equals(entry.key).  Medium-sized, so it is inlined into callers
    # only under profile direction.
    hash_site = b.site()
    equals_site = b.site()
    get_body = [
        Work(6),
        VirtualCall(hash_site, "hashCode", Arg(1), dst=0),
        Let(0, Mod(Local(0), Const(11))),
        Work(14),
        VirtualCall(equals_site, "equals", Arg(1), args=[Local(0)], dst=1),
        Work(6),
        Return(Local(1)),
    ]
    b.method("HashMap", "get", get_body, params=2, locals_=4)

    # HashMap.put -- executed twice during setup; medium, cold.
    b.method("HashMap", "put",
             [Work(30), Return(Const(0))], params=3)

    # runTest(k1, k2, map): two get calls whose key receiver class differs.
    cs1 = b.site()
    cs2 = b.site()
    run_body = [
        VirtualCall(cs1, "get", Arg(2), args=[Arg(0)], dst=0),
        Work(4),
        VirtualCall(cs2, "get", Arg(2), args=[Arg(1)], dst=1),
        Work(4),
        Return(Local(0)),
    ]
    b.static_method("HashMapTest", "runTest", run_body, params=3, locals_=4)

    # main: setup, then the hot loop.
    run_site = b.site()
    main_body = [
        New(0, "MyKey"),
        New(1, "Object"),
        New(2, "HashMap"),
        b.call("HashMap.put", args=[Local(2), Local(0), Const(1)]),
        b.call("HashMap.put", args=[Local(2), Local(1), Const(2)]),
        Loop(Const(iterations), 5, [
            StaticCall(run_site, "HashMapTest.runTest",
                       [Local(0), Local(1), Local(2)]),
            Work(2),
        ]),
        Return(Const(0)),
    ]
    b.static_method("HashMapTest", "main", main_body, params=0, locals_=8)
    b.entry("HashMapTest.main")

    program = b.build()
    sites = HashMapSites(cs1=cs1, cs2=cs2, hash_site=hash_site,
                         equals_site=equals_site, run_site=run_site)
    return HashMapProgram(program, sites)


class HashMapProgram(NamedTuple):
    """The built program plus its named call sites."""

    program: Program
    sites: HashMapSites
