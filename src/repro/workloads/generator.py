"""Synthetic benchmark generator calibrated to the paper's Table 1.

We cannot ship SPECjvm98/SPECjbb2000, so each benchmark is generated: a
deterministic (seeded) program whose *static* characteristics match
Table 1 (classes loaded, methods and bytecodes dynamically compiled) and
whose *dynamic* call-graph personality reproduces the behaviours the
paper's evaluation depends on.  The generator composes four ingredients:

**Polymorphic receiver patterns** (the HashMap.get shape of Figure 1):
a worker method ``proc`` virtual-dispatches on an object flowing in from
its callers.  When the pattern is *correlated*, each caller supplies
receivers of a single class, so the dispatch is monomorphic per calling
context but polymorphic globally -- context-sensitive profiles
disambiguate it, context-insensitive ones cannot.  The ``depth`` knob
inserts shared wrapper methods so that only contexts of that depth
discriminate.  Uncorrelated patterns mix receivers identically in every
context: extra context only dilutes their profiles.

**Shared medium callees** (the profile-dilution lever of Section 4):
a small method ``s_k`` -- inlined into many hot callers by the static
heuristics -- contains a call to a medium method ``m_k`` that only
profile-directed inlining can expand.  Context-insensitive profiling
accumulates the edge's full weight; depth>=2 traces split it across every
caller of ``s_k`` and can push each share below the 1.5% hot threshold.
Flags make ``s_k``/``m_k`` static or parameterless so the adaptive
policies' early-termination rules change how much dilution each suffers.

**Control-dependent call patterns** (Section 2's non-virtual motivation):
a helper is called under ``If(flag)`` where different callers pass
constant true/false flags; context-sensitive profiles avoid uselessly
inlining the helper into the never-taken contexts.

**Cold mass**: enough extra classes/methods/bytecodes, touched once during
startup, to land the Table 1 static counts.

All receiver choices, sizes, and shapes are derived from the spec's seed,
making every generated program reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.jvm.errors import ConfigError
from repro.jvm.program import (Add, Arg, Const, If, InterfaceCall, Let,
                               Local, Loop, Mod, New, NewPool, Pick,
                               Program, Return, StaticCall, VirtualCall,
                               Work)
from repro.workloads.builder import ProgramBuilder


@dataclass(frozen=True)
class PatternSpec:
    """One polymorphic receiver pattern (a Figure-1-style dispatch)."""

    fanout: int = 2                 # number of receiver classes / targets
    correlated: bool = True         # receiver class determined by caller?
    depth: int = 2                  # context depth that disambiguates (>=2)
    callee_work: int = 11           # work units in each target body
    target_parameterless: bool = False  # selector takes no explicit args
    proc_static: bool = True        # worker method is a class method
    wrappers_static: bool = True    # interposed wrappers are class methods
    duty_cycle: int = 1             # callers fire on 1-in-N transactions
    via_interface: bool = False     # dispatch through an interface (itable)

    def __post_init__(self) -> None:
        if self.fanout < 2:
            raise ConfigError("a polymorphic pattern needs fanout >= 2")
        if self.depth < 2:
            raise ConfigError("pattern depth must be >= 2")
        if self.duty_cycle < 1:
            raise ConfigError("duty_cycle must be >= 1")


@dataclass(frozen=True)
class SharedMediumSpec:
    """One shared small->medium pair exercising profile dilution."""

    medium_work: int = 30
    static: bool = True             # both methods are class methods
    parameterless: bool = False     # the medium callee takes no explicit args


@dataclass(frozen=True)
class BenchmarkSpec:
    """Full recipe for one synthetic benchmark."""

    name: str
    classes: int                    # Table 1: classes loaded
    methods: int                    # Table 1: methods dynamically compiled
    bytecodes: int                  # Table 1: bytecodes dynamically compiled
    seed: int
    iterations: int                 # main-loop transactions (run length)
    drivers: int = 4                # hot driver methods per transaction
    driver_work: int = 22
    patterns: Tuple[PatternSpec, ...] = ()
    shared: Tuple[SharedMediumSpec, ...] = ()
    cond_patterns: int = 0
    helper_chain: int = 3           # per-driver monomorphic helper chain
    large_in_chain: bool = False    # route pattern calls through large methods
    large_work: int = 115

    def __post_init__(self) -> None:
        if self.drivers < 1 or self.iterations < 1:
            raise ConfigError("drivers and iterations must be positive")


@dataclass
class GeneratedBenchmark:
    """A generated program plus the bookkeeping tests and reports use."""

    spec: BenchmarkSpec
    program: Program
    hot_methods: int
    hot_bytecodes: int
    pattern_sites: Dict[int, int] = field(default_factory=dict)


def generate(spec: BenchmarkSpec) -> GeneratedBenchmark:
    """Build the benchmark program described by ``spec``."""
    rng = random.Random(spec.seed)
    b = ProgramBuilder(spec.name)
    gen = _Generator(spec, b, rng)
    return gen.build()


class _Generator:
    """Stateful assembly of one benchmark program."""

    def __init__(self, spec: BenchmarkSpec, b: ProgramBuilder,
                 rng: random.Random):
        self.spec = spec
        self.b = b
        self.rng = rng
        #: statements drivers will execute, grouped per driver index.
        self.driver_calls: List[List] = [[] for _ in range(spec.drivers)]
        self.pattern_sites: Dict[int, int] = {}
        self._hot_class_names: List[str] = []

    # -- top level -----------------------------------------------------------------

    def build(self) -> GeneratedBenchmark:
        spec, b = self.spec, self.b

        for index, pattern in enumerate(spec.patterns):
            self._build_pattern(index, pattern)
        for index, shared in enumerate(spec.shared):
            self._build_shared_medium(index, shared)
        for index in range(spec.cond_patterns):
            self._build_cond_pattern(index)
        self._build_helper_chains()
        self._build_drivers()

        hot_methods = len(b.program.methods()) + 1  # main comes later
        hot_bytecodes = sum(m.bytecodes for m in b.program.methods())

        init_calls = self._build_cold_mass(hot_methods, hot_bytecodes)
        self._build_main(init_calls)

        program = b.build()
        return GeneratedBenchmark(
            spec=spec, program=program,
            hot_methods=hot_methods, hot_bytecodes=hot_bytecodes,
            pattern_sites=dict(self.pattern_sites))

    # -- polymorphic patterns -----------------------------------------------------------

    def _build_pattern(self, p: int, pattern: PatternSpec) -> None:
        """Receiver classes, worker, wrappers, and per-class callers."""
        b = self.b
        base = f"P{p}B"
        selector = f"sel{p}"
        if pattern.via_interface:
            # Model a Java-style interface contract: the receiver classes
            # implement it, and the worker dispatches through it.
            iface = f"P{p}I"
            b.cls(iface)
            self._hot_class_names.append(iface)
            b.cls(base, interfaces=(iface,))
        else:
            b.cls(base)
        self._hot_class_names.append(base)
        target_params = 1 if pattern.target_parameterless else 2
        b.method(base, selector,
                 [Work(pattern.callee_work), Return(Const(p))],
                 params=target_params)
        class_names = []
        for j in range(pattern.fanout):
            name = f"P{p}C{j}"
            b.cls(name, superclass=base)
            self._hot_class_names.append(name)
            # Subclass 0 inherits the base implementation (as e.g. most
            # classes inherit Object.hashCode); the rest override.  Every
            # declared method is therefore dynamically reached, matching
            # Table 1's "methods dynamically compiled" semantics.
            if j > 0:
                b.method(name, selector,
                         [Work(pattern.callee_work + (j % 3)),
                          Return(Const(j))],
                         params=target_params)
            class_names.append(name)

        util = f"P{p}U"
        b.cls(util)
        self._hot_class_names.append(util)

        # The worker: HashMap.get's analog.  Medium-sized, so only
        # profile-directed inlining expands it into its callers.  Static
        # workers stop the Class-Methods walk below them; instance workers
        # (sole implementation, so CHA still binds calls to them) do not.
        dispatch_site = b.site()
        self.pattern_sites[p] = dispatch_site
        call_type = (InterfaceCall if pattern.via_interface
                     else VirtualCall)
        proc = self._conduit_method(
            util, f"proc{p}", pattern.proc_static,
            lambda obj, idx: [
                Work(13),
                call_type(dispatch_site, selector, obj,
                          args=([] if pattern.target_parameterless
                                else [idx]), dst=7),
                Work(12),
                Return(Local(7)),
            ])

        # Shared wrapper chain: depth-2 contexts see only the wrappers, so
        # disambiguation needs depth >= pattern.depth.
        entry = proc
        for w in range(pattern.depth - 2):
            entry = self._conduit_method(
                util, f"w{p}_{w}", pattern.wrappers_static,
                self._forwarder_body(entry))

        # Per-class callers: each supplies receivers from its own pool.
        for j in range(pattern.fanout):
            cname = f"c{p}_{j}"
            if pattern.correlated:
                pool = tuple([class_names[j]] * 3)
            else:
                pool = tuple(class_names)
            call_stmts: List = [NewPool(0, pool),
                                Let(1, Pick(Local(0), Arg(0))),
                                Work(5)]
            call_stmts.extend(self._call_conduit(entry, Local(1), Arg(0),
                                                 dst=3, scratch=4))
            if pattern.duty_cycle > 1:
                # Fire only on 1-in-N transactions, throttling how hot the
                # pattern runs relative to the rest of the benchmark.
                gate = Mod(Add(Arg(0), Const(j)),
                           Const(pattern.duty_cycle))
                cbody: List = [If(gate, [Work(2)], call_stmts),
                               Return(Local(3))]
            else:
                cbody = call_stmts + [Return(Local(3))]
            caller = b.method(util, cname, cbody, params=1, static=True,
                              locals_=8)
            driver_index = (p + j) % self.spec.drivers
            self.driver_calls[driver_index].append(caller.id)

    def _conduit_method(self, klass: str, name: str, static: bool,
                        body_fn) -> "MethodDef":
        """Declare a method taking (obj, idx) -- plus ``this`` if instance.

        ``body_fn(obj_expr, idx_expr)`` produces the body with the correct
        argument slots for the chosen calling convention.
        """
        if static:
            body = body_fn(Arg(0), Arg(1))
            return self.b.method(klass, name, body, params=2, static=True,
                                 locals_=10)
        body = body_fn(Arg(1), Arg(2))
        return self.b.method(klass, name, body, params=3, static=False,
                             locals_=10)

    def _forwarder_body(self, entry):
        """Body factory: a small wrapper forwarding (obj, idx) to ``entry``."""
        def make(obj, idx):
            body: List = [Work(4)]
            body.extend(self._call_conduit(entry, obj, idx, dst=6, scratch=5))
            body.append(Return(Local(6)))
            return body
        return make

    def _call_conduit(self, entry, obj, idx, dst: int,
                      scratch: int) -> List:
        """Statements calling a conduit method with (obj, idx) arguments."""
        site = self.b.site()
        if entry.is_static:
            return [StaticCall(site, entry.id, [obj, idx], dst=dst)]
        return [New(scratch, entry.klass),
                StaticCall(site, entry.id, [Local(scratch), obj, idx],
                           dst=dst)]

    # -- shared medium pairs ----------------------------------------------------------------

    def _build_shared_medium(self, k: int, shared: SharedMediumSpec) -> None:
        """A small method (inlined everywhere) calling a medium method."""
        b = self.b
        cls = f"Shr{k}"
        b.cls(cls)
        self._hot_class_names.append(cls)
        m_params = 0 if shared.parameterless else 1
        if not shared.static:
            m_params += 1
        m = b.method(cls, f"m{k}",
                     [Work(shared.medium_work), Return(Const(k))],
                     params=m_params, static=shared.static, locals_=2)

        site = b.site()
        if shared.static:
            args = [] if shared.parameterless else [Arg(0)]
            sbody = [Work(4), StaticCall(site, m.id, args, dst=0),
                     Work(3), Return(Local(0))]
            s = b.static_method(cls, f"s{k}", sbody, params=1, locals_=2)
        else:
            args = [Local(1)] if shared.parameterless else [Local(1), Arg(0)]
            sbody = [Work(4), New(1, cls),
                     StaticCall(site, m.id, args, dst=0),
                     Work(3), Return(Local(0))]
            s = b.static_method(cls, f"s{k}", sbody, params=1, locals_=3)

        # Every driver calls the small wrapper at its own site.
        for driver_index in range(self.spec.drivers):
            self.driver_calls[driver_index].append(s.id)

    # -- control-dependent calls -----------------------------------------------------------------

    def _build_cond_pattern(self, q: int) -> None:
        """If(flag) helper-call; callers pass constant true/false flags."""
        b = self.b
        cls = f"Cond{q}"
        b.cls(cls)
        self._hot_class_names.append(cls)
        helper = b.static_method(cls, f"h{q}",
                                 [Work(30), Return(Const(q))], params=0,
                                 locals_=2)
        site = b.site()
        m = b.static_method(
            cls, f"m{q}",
            [Work(3),
             If(Arg(0), [StaticCall(site, helper.id, dst=0)], [Work(2)]),
             Return(Local(0))],
            params=1, locals_=2)
        taken = b.static_method(
            cls, f"ct{q}",
            [StaticCall(b.site(), m.id, [Const(1)], dst=0),
             Return(Local(0))], params=0, locals_=2)
        untaken = b.static_method(
            cls, f"cf{q}",
            [StaticCall(b.site(), m.id, [Const(0)], dst=0),
             Return(Local(0))], params=0, locals_=2)
        self.driver_calls[(2 * q) % self.spec.drivers].append(taken.id)
        self.driver_calls[(2 * q + 1) % self.spec.drivers].append(untaken.id)

    # -- monomorphic helper chains --------------------------------------------------------------------

    def _build_helper_chains(self) -> None:
        """Per-driver chains of tiny/small statically-bound helpers."""
        spec, b, rng = self.spec, self.b, self.rng
        if spec.helper_chain < 1:
            return
        b.cls("Help")
        self._hot_class_names.append("Help")
        for d in range(spec.drivers):
            next_id: Optional[str] = None
            for level in reversed(range(spec.helper_chain)):
                work = rng.choice((3, 5, 9, 13))
                body: List = [Work(work)]
                if next_id is not None:
                    body.append(StaticCall(b.site(), next_id, [Arg(0)],
                                           dst=0))
                body.append(Return(Const(level)))
                helper = b.static_method("Help", f"g{d}_{level}", body,
                                         params=1, locals_=2)
                next_id = helper.id
            self.driver_calls[d].append(next_id)

    # -- drivers and the large-method layer -------------------------------------------------------------

    def _build_drivers(self) -> None:
        spec, b = self.spec, self.b
        b.cls("Drv")
        self._hot_class_names.append("Drv")

        routed: List[List] = self.driver_calls
        if spec.large_in_chain:
            routed = self._route_through_large()

        for d in range(spec.drivers):
            body: List = [Work(spec.driver_work)]
            for target_id in routed[d]:
                body.append(StaticCall(b.site(), target_id,
                                       self._routed_args(target_id), dst=1))
            body.append(Return(Const(d)))
            b.static_method("Drv", f"t{d}", body, params=1, locals_=4)

    def _routed_args(self, target_id: str) -> List:
        """Arguments for a routed call, matching the target's declared arity.

        Most routed targets (helper chains, pattern wrappers, large
        interposers) take the transaction index; the control-dependent
        entry points (``ct*``/``cf*``) are parameterless.
        """
        if self.b.program.method(target_id).num_params == 0:
            return []
        return [Arg(0)]

    def _route_through_large(self) -> List[List]:
        """Interpose large methods: driver -> L -> pattern callers.

        Two consecutive drivers share one large method, so the large method
        is reached through multiple contexts -- profile weight above it
        splits, which is exactly what the Large-Methods policy avoids
        sampling past.
        """
        spec, b = self.spec, self.b
        b.cls("Big")
        self._hot_class_names.append("Big")
        routed: List[List] = [[] for _ in range(spec.drivers)]
        for l_index in range((spec.drivers + 1) // 2):
            members = [d for d in (2 * l_index, 2 * l_index + 1)
                       if d < spec.drivers]
            inner: List = [Work(spec.large_work)]
            for d in members:
                for target_id in self.driver_calls[d]:
                    inner.append(StaticCall(b.site(), target_id,
                                            self._routed_args(target_id),
                                            dst=1))
            inner.append(Return(Const(0)))
            large = b.static_method("Big", f"L{l_index}", inner, params=1,
                                    locals_=4)
            for d in members:
                routed[d] = [large.id]
        return routed

    # -- cold mass and startup ------------------------------------------------------------------------------

    def _build_cold_mass(self, hot_methods: int,
                         hot_bytecodes: int) -> List[str]:
        """Cold classes/methods sized to land the Table 1 totals.

        Returns the init-group method ids ``main`` must call at startup.
        """
        spec, b, rng = self.spec, self.b, self.rng
        hot_classes = len(self._hot_class_names)
        # Reserve: Main class + Init class.
        cold_classes = spec.classes - hot_classes - 2
        if cold_classes < 1:
            raise ConfigError(
                f"{spec.name}: Table 1 wants {spec.classes} classes but the "
                f"hot core already uses {hot_classes}")

        per_group = 24
        # Solve the methods budget exactly: n_cold + n_init == remaining
        # with every cold method covered (n_cold <= n_init * per_group),
        # i.e. n_init = ceil(remaining / (per_group + 1)).
        remaining = spec.methods - hot_methods
        n_init = max(1, -(-remaining // (per_group + 1)))
        n_cold = remaining - n_init
        if n_cold < cold_classes:
            raise ConfigError(
                f"{spec.name}: not enough cold methods ({n_cold}) to "
                f"populate {cold_classes} cold classes")

        # Decide instance-ness up front so the init/main sizes are exact.
        instance_flags = [rng.random() < 0.3 for _ in range(n_cold)]
        n_instance = sum(instance_flags)
        # Init bodies: one call (CALL_UNITS=4 bc) per cold method, one New
        # per instance method, plus a Return per group.
        init_bc = n_cold * 4 + n_instance + n_init
        # main: one call per init group, the driver loop, and a Return.
        main_bc = n_init * 4 + (2 + spec.drivers * 4) + 1
        cold_bc_budget = (spec.bytecodes - hot_bytecodes
                          - init_bc - main_bc)
        mean = max(8.0, cold_bc_budget / n_cold)

        cold_ids: List[Tuple[str, bool]] = []  # (method id, is_instance)
        budget_left = cold_bc_budget
        for index in range(n_cold):
            left = n_cold - index
            if left == 1:
                size = max(6, int(budget_left))
            else:
                size = max(6, min(int(rng.uniform(0.5, 1.5) * mean),
                                  int(budget_left) - 6 * (left - 1)))
            budget_left -= size
            klass = f"Cold{index % cold_classes}"
            if klass not in b.program.classes:
                b.cls(klass)
            is_instance = instance_flags[index]
            params = (1 if is_instance else 0) + rng.choice((0, 0, 1, 2))
            # Body bytecodes: Work(size-1) + Return == size exactly.
            method = b.method(klass, f"f{index}",
                              [Work(size - 1), Return(Const(0))],
                              params=params, static=not is_instance,
                              locals_=2)
            cold_ids.append((method.id, is_instance))

        # Init groups: touch every cold method exactly once.
        b.cls("Init")
        init_ids: List[str] = []
        for g in range(n_init):
            chunk = cold_ids[g * per_group:(g + 1) * per_group]
            body: List = []
            for method_id, is_instance in chunk:
                klass = method_id.split(".", 1)[0]
                method = b.program.method(method_id)
                if is_instance:
                    body.append(New(0, klass))
                    args: List = [Local(0)]
                    extra = method.num_params - 1
                else:
                    args = []
                    extra = method.num_params
                args.extend(Const(1) for _ in range(extra))
                body.append(StaticCall(b.site(), method_id, args))
            body.append(Return(Const(0)))
            init = b.static_method("Init", f"init{g}", body, params=0,
                                   locals_=2)
            init_ids.append(init.id)
        return init_ids

    def _build_main(self, init_calls: Sequence[str]) -> None:
        spec, b = self.spec, self.b
        b.cls("Main")
        body: List = [StaticCall(b.site(), init_id) for init_id in init_calls]
        loop_body: List = []
        for d in range(spec.drivers):
            loop_body.append(StaticCall(b.site(), f"Drv.t{d}", [Local(0)],
                                        dst=1))
        body.append(Loop(Const(spec.iterations), 0, loop_body))
        body.append(Return(Const(0)))
        b.static_method("Main", "main", body, params=0, locals_=4)
        b.entry("Main.main")
