"""Workloads: builder DSL, Table-1-calibrated suite, and example programs."""
