"""A two-phase workload for exercising the decay organizer (Section 3.2).

The program's polymorphic ``step`` site receives class ``A`` instances for
the first half of the run and class ``B`` afterwards.  Without decay, the
phase-1 profile dominates forever and the phase-2 target never becomes
hot; with decay, old weight fades and the adaptive system re-optimizes for
the new phase.  Used by the ``phase_shift`` example and the decay ablation
(experiment E9 in DESIGN.md).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.jvm.program import (Arg, Const, If, Let, Local, Loop, Lt, New,
                               Program, Return, StaticCall, VirtualCall,
                               Work)
from repro.workloads.builder import ProgramBuilder


class TwoPhaseProgram(NamedTuple):
    program: Program
    step_site: int
    iterations: int


def build(iterations: int = 40_000,
          switch_fraction: float = 0.5) -> TwoPhaseProgram:
    """Build the two-phase program.

    ``switch_fraction`` is the point in the run where the receiver class
    flips from A to B.  Late switches (e.g. 0.75) make the decay organizer
    decisive: without decay, the short second phase cannot outweigh the
    accumulated phase-1 profile.
    """
    b = ProgramBuilder("phase_shift")
    b.cls("Base")
    b.cls("A", superclass="Base")
    b.cls("B", superclass="Base")
    b.cls("App")

    b.method("Base", "step", [Work(12), Return(Const(0))], params=1)
    b.method("A", "step", [Work(12), Return(Const(1))], params=1)
    b.method("B", "step", [Work(12), Return(Const(2))], params=1)

    # ``work`` is large so it is always compiled as its own root: the
    # guarded step dispatch then lives in code whose recompilation budget
    # belongs to ``work`` itself (entry methods get optimized early via
    # OSR and would otherwise exhaust their version budget before the
    # phase shift arrives).
    step_site = b.site()
    b.static_method("App", "work", [
        Work(52),
        VirtualCall(step_site, "step", Arg(0), dst=0),
        Work(52),
        Return(Local(0)),
    ], params=1, locals_=2)

    work_site = b.site()
    b.static_method("App", "main", [
        New(0, "A"),
        New(1, "B"),
        Loop(Const(iterations), 2, [
            If(Lt(Local(2), Const(int(iterations * switch_fraction))),
               [Let(3, Local(0))],     # phase 1: receiver A
               [Let(3, Local(1))]),    # phase 2: receiver B
            StaticCall(work_site, "App.work", [Local(3)], dst=4),
        ]),
        Return(Const(0)),
    ], params=0, locals_=6)
    b.entry("App.main")
    return TwoPhaseProgram(b.build(), step_site, iterations)
