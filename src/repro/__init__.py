"""Adaptive online context-sensitive inlining -- a full reproduction.

Reproduces Hazelwood & Grove, *Adaptive Online Context-Sensitive Inlining*
(CGO 2003) on a simulated JVM adaptive optimization system.  See DESIGN.md
for the system inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import AdaptiveRuntime, make_policy
    from repro.workloads import hashmap_example

    built = hashmap_example.build()
    runtime = AdaptiveRuntime(built.program, make_policy("fixed", 2))
    result = runtime.run()
    print(result.opt_code_bytes, result.total_cycles)

The imports below are ordered bottom-up (errors/values -> program model ->
profiles -> compiler -> policies -> interpreter -> AOS) so the module
graph stays acyclic.
"""

# -- mini-JVM substrate -------------------------------------------------------
from repro.jvm.errors import (CompilationError, ConfigError, ExecutionError,
                              ProgramError, ReproError)
from repro.jvm.values import Instance, Value, dynamic_class
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.program import (Add, Arg, ClassDef, Const, Expr, If,
                               InterfaceCall, Let, Local, Loop, Lt,
                               MethodDef, Mod, Mul, New, NewPool, Pick,
                               Program, Return, StaticCall, Stmt, Sub,
                               VirtualCall, Work, body_bytecodes)
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.frames import Frame, physical_method

# -- profiles -------------------------------------------------------------------
from repro.profiles.trace import (Context, InlineRule, TraceKey, format_trace,
                                  make_context)
from repro.profiles.partial_match import (applicable_rules, candidate_targets,
                                          contexts_compatible,
                                          ordered_candidates)
from repro.profiles.dcg import DynamicCallGraph
from repro.profiles.cct import CallingContextTree, CCTNode

# -- compiler ---------------------------------------------------------------------
from repro.compiler.size_estimator import (SizeClass, classify,
                                           estimate_inlined_bytecodes,
                                           is_large)
from repro.compiler.compiled_method import (CompiledMethod, GuardOption,
                                            InlineDecision, InlineNode)
from repro.compiler.code_cache import CodeCache
from repro.compiler.oracle import Decision, InlineOracle
from repro.compiler.opt_compiler import OptCompiler, iter_call_sites

# -- policies ----------------------------------------------------------------------
from repro.policies import (ClassMethods, ContextInsensitive,
                            ContextSensitivityPolicy, FixedLevel,
                            ImprecisionDriven, LargeMethods, POLICY_LABELS,
                            ParameterlessClassMethods,
                            ParameterlessLargeMethods, ParameterlessMethods,
                            StaticOraclePolicy, make_policy)

# -- execution engine ---------------------------------------------------------------
from repro.jvm.interpreter import Machine, MachineStats

# -- adaptive optimization system ------------------------------------------------------
from repro.aos.cost_accounting import (AOS_COMPONENTS, ALL_COMPONENTS, APP,
                                       CostAccounting)
from repro.aos.database import AOSDatabase, CompilationEvent
from repro.aos.listeners import (MethodListener, TerminationStatsProbe,
                                 TraceListener)
from repro.aos.runtime import AdaptiveRuntime, RunResult

# -- telemetry -------------------------------------------------------------------------
from repro.telemetry import (NullRecorder, ProgressTracker,
                             TelemetryRecorder, TelemetrySnapshot,
                             to_chrome_trace)

# -- decision provenance -----------------------------------------------------------------
from repro.provenance import (DecisionRecord, EventKind, ProvenanceRecorder,
                              ReasonCode, diff_logs, explain_method,
                              read_decision_log, render_diff)

# -- fleet profile service ---------------------------------------------------------------
from repro.fleet import (FleetConfig, ShardedProfileStore, WarmProfile,
                         apply_warm_start, build_fleet_bundle,
                         build_warm_profile, program_fingerprint, run_fleet)

# -- causal profiling --------------------------------------------------------------------
from repro.causal import (CausalConfig, CausalResults,
                          apply_virtual_speedup, build_causal_bundle,
                          render_causal_bundle, run_causal)

# -- static analysis ---------------------------------------------------------------------
from repro.analysis import (SoundnessReport, StaticCallGraph, StaticOracle,
                            VerificationReport, VerifierError,
                            analyze_program, attribute_flips,
                            build_call_graph, check_soundness,
                            verify_program)

__version__ = "1.0.0"

__all__ = [
    "AOSDatabase", "AOS_COMPONENTS", "APP", "ALL_COMPONENTS", "Add",
    "AdaptiveRuntime", "Arg", "CCTNode", "CallingContextTree",
    "CausalConfig", "CausalResults", "ClassDef",
    "ClassHierarchy", "ClassMethods", "CodeCache", "CompilationError",
    "CompilationEvent", "CompiledMethod", "ConfigError", "Const", "Context",
    "ContextInsensitive", "ContextSensitivityPolicy", "CostAccounting",
    "CostModel", "DEFAULT_COSTS", "Decision", "DecisionRecord",
    "DynamicCallGraph", "EventKind",
    "ExecutionError", "Expr", "FixedLevel", "FleetConfig", "Frame",
    "GuardOption", "If",
    "ImprecisionDriven", "InlineDecision", "InlineNode", "InlineOracle",
    "InterfaceCall",
    "InlineRule", "Instance", "LargeMethods", "Let", "Local", "Loop",
    "Machine", "MachineStats", "MethodDef", "MethodListener", "Mod", "Mul",
    "New", "NewPool", "OptCompiler", "POLICY_LABELS",
    "ParameterlessClassMethods", "ParameterlessLargeMethods",
    "NullRecorder",
    "ParameterlessMethods", "Pick", "Program", "ProgramError",
    "ProgressTracker", "ProvenanceRecorder", "ReasonCode", "ReproError",
    "Return", "RunResult", "ShardedProfileStore", "SizeClass",
    "SoundnessReport", "StaticCall",
    "StaticCallGraph", "StaticOracle", "StaticOraclePolicy", "Stmt", "Sub",
    "TelemetryRecorder", "TelemetrySnapshot",
    "TerminationStatsProbe", "TraceKey", "TraceListener", "Value",
    "VerificationReport", "VerifierError",
    "VirtualCall", "WarmProfile", "Work", "analyze_program",
    "applicable_rules", "apply_virtual_speedup", "apply_warm_start",
    "attribute_flips", "body_bytecodes", "build_call_graph",
    "build_causal_bundle", "build_fleet_bundle", "build_warm_profile",
    "candidate_targets", "check_soundness", "classify",
    "contexts_compatible", "diff_logs",
    "dynamic_class",
    "estimate_inlined_bytecodes", "explain_method", "format_trace",
    "is_large",
    "iter_call_sites", "make_context", "make_policy", "ordered_candidates",
    "physical_method", "program_fingerprint", "read_decision_log",
    "render_causal_bundle", "render_diff", "run_causal", "run_fleet",
    "to_chrome_trace", "verify_program",
]
