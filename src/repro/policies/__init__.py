"""Context-sensitivity policies (paper Section 4)."""

from typing import Dict, List, Optional, Type

from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.errors import ConfigError
from repro.policies.base import ContextSensitivityPolicy
from repro.policies.catalog import (ClassMethods, ContextInsensitive,
                                    FixedLevel, LargeMethods,
                                    ParameterlessClassMethods,
                                    ParameterlessLargeMethods,
                                    ParameterlessMethods,
                                    StaticContextOraclePolicy,
                                    StaticOraclePolicy)
from repro.policies.imprecision import ImprecisionDriven

#: Figure labels -> policy families, matching the paper's x-axes, plus
#: the ``static``/``static-k`` no-profile baselines (not paper figure
#: families).
POLICY_LABELS = ("cins", "fixed", "paramLess", "class", "large", "hybrid1",
                 "hybrid2", "imprecision", "static", "static-k")


def make_policy(label: str, max_depth: int = 1,
                costs: CostModel = DEFAULT_COSTS) -> ContextSensitivityPolicy:
    """Instantiate a policy by its figure label.

    ``cins`` ignores ``max_depth`` (it is depth 1 by definition); all other
    families use it as the paper's "maximum context sensitivity" knob.
    """
    if label == "cins":
        return ContextInsensitive()
    if label == "fixed":
        return FixedLevel(max_depth)
    if label == "paramLess":
        return ParameterlessMethods(max_depth)
    if label == "class":
        return ClassMethods(max_depth)
    if label == "large":
        return LargeMethods(max_depth, costs)
    if label == "hybrid1":
        return ParameterlessClassMethods(max_depth)
    if label == "hybrid2":
        return ParameterlessLargeMethods(max_depth, costs)
    if label == "imprecision":
        return ImprecisionDriven(max_depth)
    if label == "static":
        # Depth-1 by construction (the profile is gathered but unused).
        return StaticOraclePolicy(costs=costs)
    if label == "static-k":
        # ``max_depth`` plays the role of k: the sweep's depth axis
        # becomes the call-string length of the k-CFA graph.
        return StaticContextOraclePolicy(k=max_depth, costs=costs)
    raise ConfigError(f"unknown policy label {label!r}; "
                      f"expected one of {POLICY_LABELS}")


__all__ = [
    "ClassMethods", "ContextInsensitive", "ContextSensitivityPolicy",
    "FixedLevel", "ImprecisionDriven", "LargeMethods", "POLICY_LABELS",
    "ParameterlessClassMethods", "ParameterlessLargeMethods",
    "ParameterlessMethods", "StaticContextOraclePolicy",
    "StaticOraclePolicy", "make_policy",
]
