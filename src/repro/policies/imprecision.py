"""The imprecision-driven adaptive policy (paper Section 4.3, final scheme).

The paper describes -- but did not implement -- a policy that starts with
context-insensitive profiling everywhere and *adds* context sensitivity
only at call sites whose profiles are demonstrably imprecise:

1. all sites begin at depth 1 (plain edge profiling);
2. each time the DCG organizer processes a batch, it identifies
   polymorphic call sites whose target distribution is not highly skewed
   (no target holds a dominant share).  Such sites cannot be guard-inlined
   from the data at hand, so their depth is increased;
3. iteration continues until the imprecision resolves (some context-
   qualified view of the site is skewed) or the site is declared
   *inherently polymorphic* and abandoned back to depth 1.

This module implements that loop as an extension of the reproduction
(experiment E10 in DESIGN.md).  Plevyak's iterative call-graph
construction used the same idea offline.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.policies.base import ContextSensitivityPolicy
from repro.profiles.dcg import SKEW_THRESHOLD, DynamicCallGraph

#: After this many consecutive epochs at maximum depth with the site still
#: unskewed, the site is declared inherently polymorphic.
GIVE_UP_EPOCHS = 3


class ImprecisionDriven(ContextSensitivityPolicy):
    """Adaptively deepen profiling only at imprecise polymorphic sites."""

    label = "imprecision"

    def __init__(self, max_depth: int,
                 skew_threshold: float = SKEW_THRESHOLD):
        super().__init__(max_depth)
        self._skew_threshold = skew_threshold
        self._site_depth: Dict[Tuple[str, int], int] = {}
        self._epochs_at_max: Dict[Tuple[str, int], int] = {}
        self._abandoned: Dict[Tuple[str, int], bool] = {}
        #: Number of observe() epochs processed (diagnostics).
        self.epochs = 0

    # -- listener-facing API ---------------------------------------------------

    def depth_limit(self, caller_id: str, site: int) -> int:
        return self._site_depth.get((caller_id, site), 1)

    # -- organizer feedback ------------------------------------------------------

    def observe(self, dcg: DynamicCallGraph) -> None:
        """One iteration of the imprecision-resolution loop."""
        self.epochs += 1
        flagged = set(dcg.polymorphic_unskewed_sites(self._skew_threshold))

        for site_key in flagged:
            if self._abandoned.get(site_key):
                continue
            current = self._site_depth.get(site_key, 1)
            if current < self.max_depth:
                # Depth-1 view is unskewed only if the *contextual* views
                # are too -- but deeper samples haven't accumulated yet, so
                # check whether added context has already resolved it.
                if current == 1 or not self._context_resolves(dcg, site_key,
                                                              current):
                    self._site_depth[site_key] = current + 1
                self._epochs_at_max.pop(site_key, None)
            else:
                if self._context_resolves(dcg, site_key, current):
                    self._epochs_at_max.pop(site_key, None)
                    continue
                stuck = self._epochs_at_max.get(site_key, 0) + 1
                self._epochs_at_max[site_key] = stuck
                if stuck >= GIVE_UP_EPOCHS:
                    # Inherently too polymorphic: stop paying for context.
                    self._abandoned[site_key] = True
                    self._site_depth[site_key] = 1

        # Sites no longer flagged have resolved; keep their depth (the
        # useful context) but clear any give-up counters.
        for site_key in list(self._epochs_at_max):
            if site_key not in flagged:
                del self._epochs_at_max[site_key]

    def _context_resolves(self, dcg: DynamicCallGraph,
                          site_key: Tuple[str, int], depth: int) -> bool:
        """Is some depth>1 contextual view of this site skewed?

        If any context-qualified slice of the site's samples has a dominant
        target, the added context is paying off.
        """
        caller_id, site = site_key
        by_context: Dict[tuple, Dict[str, float]] = {}
        for key, weight in dcg.items():
            c0 = key.context[0]
            if c0[0] != caller_id or c0[1] != site or key.depth < 2:
                continue
            targets = by_context.setdefault(key.context, {})
            targets[key.callee] = targets.get(key.callee, 0.0) + weight
        for targets in by_context.values():
            total = sum(targets.values())
            if total > 0 and max(targets.values()) / total >= self._skew_threshold:
                return True
        return False

    # -- diagnostics ---------------------------------------------------------------

    def deepened_sites(self) -> Dict[Tuple[str, int], int]:
        """Sites currently profiled deeper than depth 1."""
        return {k: d for k, d in self._site_depth.items() if d > 1}

    def abandoned_sites(self) -> int:
        """Sites declared inherently polymorphic."""
        return sum(1 for v in self._abandoned.values() if v)
