"""Context-sensitivity policy protocol (paper Section 4).

A policy controls how deep the trace listener walks the call stack when it
takes a sample.  The walk that all policies share (implemented in
:class:`repro.aos.listeners.TraceListener`):

* the chain starts at the sampled callee ``m0``; edge *e* adds caller
  ``m_e`` and the call site inside it;
* edge 1 (the plain context-insensitive edge) is always recorded;
* before adding edge *e* (for e >= 2) the walk consults
  :meth:`ContextSensitivityPolicy.stop_below` on ``m_{e-2}`` -- the method
  through which any state from the new context would have to flow.  If no
  state can flow through it, deeper context is inconsequential and the walk
  stops (Parameterless / Class-Methods family);
* after adding edge *e* the walk consults :meth:`stop_at` on the caller
  just added.  The Large-Methods policy stops here: a large method is never
  inlined into its own caller, so context above it can never be used;
* the walk never exceeds :attr:`max_depth` edges.

Policies may additionally vary the depth limit per call site
(:meth:`depth_limit`); the imprecision-driven policy uses this hook.
"""

from __future__ import annotations

from typing import Optional

from repro.jvm.program import MethodDef


class ContextSensitivityPolicy:
    """Base policy: fixed-level behaviour with no early termination."""

    #: Short label used in figures (matches the paper's x-axis labels).
    label = "base"

    def __init__(self, max_depth: int):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth

    @property
    def name(self) -> str:
        return f"{self.label}(max={self.max_depth})"

    # -- the three extension hooks -------------------------------------------

    def depth_limit(self, caller_id: str, site: int) -> int:
        """Per-site depth cap; defaults to the policy-wide maximum."""
        return self.max_depth

    def stop_below(self, method: MethodDef) -> bool:
        """True when no state can flow through ``method`` from deeper context.

        Checked *before* extending the trace past this method.
        """
        return False

    def stop_at(self, caller: MethodDef) -> bool:
        """True when context above ``caller`` can never be used.

        Checked *after* adding ``caller`` to the trace.
        """
        return False

    # -- organizer feedback (imprecision policy) -------------------------------

    def observe(self, dcg) -> None:
        """Hook called by the DCG organizer after each processing epoch.

        Most policies are stateless and ignore it; the imprecision-driven
        policy uses it to adapt per-site depths.
        """

    def __repr__(self) -> str:
        return f"<policy {self.name}>"
