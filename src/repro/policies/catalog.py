"""The concrete context-sensitivity policies evaluated in the paper.

Six policy families appear in the paper's Figures 4-6 (plus the baseline):

* ``cins``     -- context-insensitive edge profiling (Jikes RVM's default);
* ``fixed``    -- non-adaptive fixed-level sensitivity (Section 4.2);
* ``paramLess``-- early termination at parameterless methods;
* ``class``    -- early termination at class (static) methods;
* ``large``    -- early termination one level above large methods;
* ``hybrid1``  -- Parameterless Class Methods;
* ``hybrid2``  -- Parameterless Large Methods.

Each takes a ``max_depth`` (the paper sweeps 2-5 for the sensitive
policies; ``cins`` is exactly depth 1).
"""

from __future__ import annotations

from typing import Dict

from repro.compiler.size_estimator import is_large
from repro.jvm.costs import DEFAULT_COSTS, CostModel
from repro.jvm.program import MethodDef
from repro.policies.base import ContextSensitivityPolicy


class ContextInsensitive(ContextSensitivityPolicy):
    """Plain edge profiling: every trace is a single call edge."""

    label = "cins"

    def __init__(self) -> None:
        super().__init__(max_depth=1)


class FixedLevel(ContextSensitivityPolicy):
    """Non-adaptive: every trace is exactly ``max_depth`` edges (stack
    permitting).  The paper's Section 4.2 policy."""

    label = "fixed"


class ParameterlessMethods(ContextSensitivityPolicy):
    """Stop extending once the chain passes through a parameterless method.

    If no declared parameters feed a method, the context in which its
    caller ran cannot change what flows into it (``this`` and globals being
    the paper's acknowledged exceptions).
    """

    label = "paramLess"

    def stop_below(self, method: MethodDef) -> bool:
        return method.is_parameterless


class ClassMethods(ContextSensitivityPolicy):
    """Stop extending once the chain passes through a class (static) method.

    In OO code the dominant state channel is the receiver; a static call
    has no receiver, so deeper context is assumed inconsequential.
    """

    label = "class"

    def stop_below(self, method: MethodDef) -> bool:
        return method.is_static


class LargeMethods(ContextSensitivityPolicy):
    """Stop one level above a large method.

    Large methods are never inlined into their callers, so an inlining
    rule can never consume context that crosses a large caller: record the
    large caller itself, then stop.
    """

    label = "large"

    def __init__(self, max_depth: int, costs: CostModel = DEFAULT_COSTS):
        super().__init__(max_depth)
        self._costs = costs

    def stop_at(self, caller: MethodDef) -> bool:
        return is_large(caller, self._costs)


class ParameterlessClassMethods(ContextSensitivityPolicy):
    """Hybrid 1: stop below parameterless *or* static methods.

    The paper found this the most stable policy (performance nearly always
    within 1% of context-insensitive inlining).
    """

    label = "hybrid1"

    def stop_below(self, method: MethodDef) -> bool:
        return method.is_parameterless or method.is_static


class ParameterlessLargeMethods(ContextSensitivityPolicy):
    """Hybrid 2: parameterless stop-below plus large-method stop-at.

    More dramatic behaviour than hybrid 1, but one of the few policies
    with an average speedup in the paper.
    """

    label = "hybrid2"

    def __init__(self, max_depth: int, costs: CostModel = DEFAULT_COSTS):
        super().__init__(max_depth)
        self._costs = costs

    def stop_below(self, method: MethodDef) -> bool:
        return method.is_parameterless

    def stop_at(self, caller: MethodDef) -> bool:
        return is_large(caller, self._costs)


class StaticOraclePolicy(ContextSensitivityPolicy):
    """The static-oracle baseline: all inlining decided offline.

    Not a paper policy -- the no-profile counterfactual the paper's
    online system is compared against.  Trace collection is pinned to
    depth 1 (like ``cins``) to keep listener overhead minimal and
    comparable; the profile it gathers is *never consulted*, because
    :meth:`make_oracle` replaces the profile-directed oracle with a
    :class:`~repro.analysis.static_oracle.StaticOracle` driven by a
    whole-program static call graph built once per program.
    """

    label = "static"

    def __init__(self, costs: CostModel = DEFAULT_COSTS,
                 precision: str = "rta"):
        super().__init__(max_depth=1)
        self._costs = costs
        self._precision = precision
        # One static call graph per program, built lazily on the first
        # compilation plan and shared by every oracle for that program.
        self._graphs: Dict[int, object] = {}

    def make_oracle(self, program, hierarchy, costs, *, on_refusal=None,
                    on_cha_dependency=None, telemetry=None, provenance=None):
        """Controller hook: build a :class:`StaticOracle` for one plan."""
        # Imported lazily: repro.analysis sits above the policy layer,
        # and only this one policy reaches up into it.
        from repro.analysis.callgraph import build_call_graph
        from repro.analysis.static_oracle import StaticOracle
        from repro.provenance.recorder import NULL_PROVENANCE
        from repro.telemetry.recorder import NULL_RECORDER

        graph = self._graphs.get(id(program))
        if graph is None:
            graph = build_call_graph(program, hierarchy=hierarchy,
                                     precision=self._precision, costs=costs)
            self._graphs[id(program)] = graph
        return StaticOracle(
            program, hierarchy, costs, graph, on_refusal=on_refusal,
            on_cha_dependency=on_cha_dependency,
            telemetry=telemetry if telemetry is not None else NULL_RECORDER,
            provenance=(provenance if provenance is not None
                        else NULL_PROVENANCE))


class StaticContextOraclePolicy(StaticOraclePolicy):
    """The context-sensitive static baseline: k-CFA instead of a profile.

    The static counterpart of the paper's context-sensitive profiles:
    :meth:`make_oracle` installs a :class:`~repro.analysis.static_oracle.
    StaticContextOracle` that conditions every virtual-site decision on
    the inline chain above it, using a whole-program k-CFA call graph
    built once per program (alongside the flat RTA graph the bound-callee
    screens still use).  ``k`` plays the role ``max_depth`` plays for the
    profile-driven families and is sweepable the same way; trace
    collection stays pinned to depth 1 because, like ``static``, the
    gathered profile is never consulted.
    """

    label = "static-k"

    def __init__(self, k: int = 1, costs: CostModel = DEFAULT_COSTS,
                 precision: str = "rta"):
        super().__init__(costs=costs, precision=precision)
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.k = k
        self._kgraphs: Dict[int, object] = {}

    @property
    def name(self) -> str:
        return f"{self.label}(k={self.k})"

    def make_oracle(self, program, hierarchy, costs, *, on_refusal=None,
                    on_cha_dependency=None, telemetry=None, provenance=None):
        """Controller hook: build a :class:`StaticContextOracle`."""
        from repro.analysis.callgraph import build_call_graph
        from repro.analysis.kcfa import build_kcfa_graph
        from repro.analysis.static_oracle import StaticContextOracle
        from repro.provenance.recorder import NULL_PROVENANCE
        from repro.telemetry.recorder import NULL_RECORDER

        graph = self._graphs.get(id(program))
        if graph is None:
            graph = build_call_graph(program, hierarchy=hierarchy,
                                     precision=self._precision, costs=costs)
            self._graphs[id(program)] = graph
        kgraph = self._kgraphs.get(id(program))
        if kgraph is None:
            kgraph = build_kcfa_graph(program, hierarchy=hierarchy,
                                      k=self.k, costs=costs)
            self._kgraphs[id(program)] = kgraph
        return StaticContextOracle(
            program, hierarchy, costs, graph, kgraph,
            on_refusal=on_refusal, on_cha_dependency=on_cha_dependency,
            telemetry=telemetry if telemetry is not None else NULL_RECORDER,
            provenance=(provenance if provenance is not None
                        else NULL_PROVENANCE))
