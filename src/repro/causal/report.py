"""The "what's worth optimizing" report over a causal grid.

Predicted speedups are *progress-rate* changes: for each seed the
experiment's marks-per-cycle throughput is paired against its same-seed
baseline, and ``100 * (rate_exp / rate_base - 1)`` is one replicate.
Replicates feed Student-t confidence intervals
(:func:`repro.metrics.stats.confidence_interval`); a cell whose relative
CI width exceeds :data:`NOISY_RCIW` -- or that has fewer than two
replicates -- is flagged noisy, following the JMH-style guidance that a
wide interval means "collect more data", not "trust the mean".

Each component's measured causal effect is reported next to its
*accounted* share of execution time (what a conventional profiler would
say).  The interesting rows are where they disagree: a component with a
2% accounted share whose virtual speedup buys 6% throughput is a
leverage point no flat profile would surface.

Everything is emitted as a versioned ``repro.causal/v1`` JSON bundle;
:func:`validate_causal_bundle` checks structure plus the acceptance
invariant that the top-ranked component's progress-rate effect is
reproduced in sign by the plain wall-clock (total-cycles) effect of the
same cost-model override.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from typing import Dict, List, Optional, Sequence

from repro.causal.components import accounted_share, component_names
from repro.causal.engine import CausalResults
from repro.jvm.costs import DEFAULT_COSTS
from repro.metrics.report import format_table
from repro.metrics.stats import confidence_interval, relative_ci_width
from repro.telemetry.progress import progress_rate

#: Schema identifier of the causal report bundle.
CAUSAL_SCHEMA = "repro.causal/v1"

#: Relative-CI-width threshold above which a cell is flagged noisy.
NOISY_RCIW = 0.25

#: The magnitude (in percent speedup) below which a sign disagreement
#: between progress-rate and wall-clock effects is treated as noise
#: around zero rather than a validation failure.
SIGN_EPSILON = 0.5


def _finite(value: float) -> Optional[float]:
    """JSON-safe float: ``None`` for infinities/NaN (strict JSON)."""
    return value if math.isfinite(value) else None


def cell_stats(results: CausalResults, benchmark: str, family: str,
               component: str, factor: float) -> dict:
    """Paired multi-seed statistics for one experiment cell."""
    pairs = results.pairs(benchmark, family, component, factor)
    rate_speedups: List[float] = []
    cycle_speedups: List[float] = []
    for _seed, base, exp in pairs:
        base_rate = progress_rate(base.progress_points, base.total_cycles)
        exp_rate = progress_rate(exp.progress_points, exp.total_cycles)
        if base_rate > 0.0:
            rate_speedups.append(100.0 * (exp_rate / base_rate - 1.0))
        if exp.total_cycles > 0.0:
            cycle_speedups.append(
                100.0 * (base.total_cycles / exp.total_cycles - 1.0))
    if rate_speedups:
        interval = confidence_interval(rate_speedups)
        rciw = relative_ci_width(rate_speedups)
        noisy = interval.n < 2 or rciw > NOISY_RCIW
        stats = {
            "mean_speedup_pct": round(interval.mean, 4),
            "ci_low": _finite(round(interval.low, 4)),
            "ci_high": _finite(round(interval.high, 4)),
            "rciw": _finite(round(rciw, 4)),
            "noisy": noisy,
        }
    else:
        stats = {"mean_speedup_pct": None, "ci_low": None, "ci_high": None,
                 "rciw": None, "noisy": True}
    stats.update({
        "factor": factor,
        "seeds": len(pairs),
        "expected_seeds": results.config.seeds,
        "cycles_speedup_pct": round(
            sum(cycle_speedups) / len(cycle_speedups), 4)
        if cycle_speedups else None,
        "per_seed_speedup_pct": [round(s, 4) for s in rate_speedups],
    })
    return stats


def component_curve(results: CausalResults, benchmark: str, family: str,
                    component: str) -> dict:
    """One component's factor curve plus its accounted-share contrast."""
    factors = sorted(results.config.factors)
    cells = [cell_stats(results, benchmark, family, component, factor)
             for factor in factors]
    share: Optional[float] = None
    base = next((results.baseline(benchmark, family, seed)
                 for seed in range(results.config.seeds)
                 if results.baseline(benchmark, family, seed) is not None),
                None)
    if base is not None:
        share = accounted_share(component, base, DEFAULT_COSTS)
    peak = max((cell["mean_speedup_pct"] for cell in cells
                if cell["mean_speedup_pct"] is not None),
               default=None)
    return {
        "component": component,
        "accounted_share_pct": round(100.0 * share, 4)
        if share is not None else None,
        "peak_speedup_pct": round(peak, 4) if peak is not None else None,
        "cells": cells,
    }


def _max_factor_speedup(curve: dict) -> Optional[float]:
    """Mean speedup of the curve's highest-factor cell."""
    if not curve["cells"]:
        return None
    return curve["cells"][-1]["mean_speedup_pct"]


def benchmark_report(results: CausalResults, benchmark: str,
                     family: str) -> dict:
    """Full per-(benchmark, family) causal report."""
    curves = [component_curve(results, benchmark, family, component)
              for component in results.config.components]
    ranking = sorted(
        (curve["component"] for curve in curves
         if _max_factor_speedup(curve) is not None),
        key=lambda name: (-next(_max_factor_speedup(c) for c in curves
                                if c["component"] == name), name))
    return {
        "benchmark": benchmark,
        "family": family,
        "depth": results.config.depth,
        "components": curves,
        "ranking": ranking,
    }


def _overall_ranking(reports: Sequence[dict]) -> List[dict]:
    """Components ranked by mean max-factor speedup across all reports."""
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    shares: Dict[str, List[float]] = {}
    for report in reports:
        for curve in report["components"]:
            speedup = _max_factor_speedup(curve)
            if speedup is None:
                continue
            name = curve["component"]
            sums[name] = sums.get(name, 0.0) + speedup
            counts[name] = counts.get(name, 0) + 1
            if curve["accounted_share_pct"] is not None:
                shares.setdefault(name, []).append(
                    curve["accounted_share_pct"])
    rows = []
    for name in sorted(sums, key=lambda n: (-sums[n] / counts[n], n)):
        mean_share = (sum(shares[name]) / len(shares[name])
                      if name in shares else None)
        rows.append({
            "component": name,
            "mean_speedup_pct": round(sums[name] / counts[name], 4),
            "benchmarks": counts[name],
            "mean_accounted_share_pct": round(mean_share, 4)
            if mean_share is not None else None,
        })
    return rows


def _validate_top_component(results: CausalResults,
                            ranking: Sequence[dict]) -> dict:
    """Cross-check the winner's effect against plain wall-clock runs.

    The causal measurement is a progress-rate delta; the same cells'
    total-cycle ratios are what a plain ``CostModel``-override run
    reports.  Both are computed from the grid's stored results, so the
    check costs nothing and stays deterministic.  Sign agreement (up to
    :data:`SIGN_EPSILON` around zero) is the acceptance invariant; the
    magnitudes are reported for the rough-agreement eyeball.
    """
    if not ranking:
        return {"top_component": None, "sign_agrees": None}
    top = ranking[0]["component"]
    max_factor = max(results.config.factors)
    rate_effects: List[float] = []
    cycle_effects: List[float] = []
    for benchmark in results.config.benchmarks:
        for family in results.config.families:
            stats = cell_stats(results, benchmark, family, top, max_factor)
            if stats["mean_speedup_pct"] is not None:
                rate_effects.append(stats["mean_speedup_pct"])
            if stats["cycles_speedup_pct"] is not None:
                cycle_effects.append(stats["cycles_speedup_pct"])
    if not rate_effects or not cycle_effects:
        return {"top_component": top, "sign_agrees": None}
    rate_mean = sum(rate_effects) / len(rate_effects)
    cycle_mean = sum(cycle_effects) / len(cycle_effects)
    near_zero = (abs(rate_mean) < SIGN_EPSILON
                 or abs(cycle_mean) < SIGN_EPSILON)
    agrees = near_zero or (rate_mean > 0) == (cycle_mean > 0)
    return {
        "top_component": top,
        "factor": max_factor,
        "progress_rate_speedup_pct": round(rate_mean, 4),
        "wall_clock_speedup_pct": round(cycle_mean, 4),
        "sign_agrees": agrees,
    }


def build_causal_bundle(results: CausalResults) -> dict:
    """The versioned ``repro.causal/v1`` bundle for one grid."""
    reports = [benchmark_report(results, benchmark, family)
               for benchmark in results.config.benchmarks
               for family in results.config.families]
    ranking = _overall_ranking(reports)
    bundle = {
        "schema": CAUSAL_SCHEMA,
        "config": dataclasses.asdict(results.config),
        "benchmarks": reports,
        "ranking": ranking,
        "validation": _validate_top_component(results, ranking),
        "failures": [dataclasses.asdict(results.failures[key])
                     for key in sorted(results.failures)],
    }
    bundle["problems"] = validate_causal_bundle(bundle)
    bundle["ok"] = not bundle["problems"]
    return bundle


def validate_causal_bundle(bundle: dict) -> List[str]:
    """Structural + acceptance checks; returns problems (empty = valid)."""
    problems: List[str] = []
    if bundle.get("schema") != CAUSAL_SCHEMA:
        problems.append(f"schema is {bundle.get('schema')!r}, "
                        f"expected {CAUSAL_SCHEMA!r}")
        return problems
    reports = bundle.get("benchmarks") or []
    if not reports:
        problems.append("bundle reports no benchmarks")
    known = set(component_names())
    for report in reports:
        name = f"{report.get('benchmark', '?')}/{report.get('family', '?')}"
        curves = report.get("components") or []
        if not curves:
            problems.append(f"{name}: no component curves")
        for curve in curves:
            if curve.get("component") not in known:
                problems.append(f"{name}: unknown component "
                                f"{curve.get('component')!r}")
            for cell in curve.get("cells") or []:
                missing = [field for field in
                           ("factor", "seeds", "mean_speedup_pct",
                            "ci_low", "ci_high", "rciw", "noisy")
                           if field not in cell]
                if missing:
                    problems.append(
                        f"{name}/{curve.get('component')}: cell missing "
                        f"{', '.join(missing)}")
                    break
                if cell["seeds"] < cell.get("expected_seeds", 0):
                    problems.append(
                        f"{name}/{curve.get('component')}@"
                        f"{cell['factor']:g}: only {cell['seeds']} of "
                        f"{cell['expected_seeds']} seed pair(s) present")
        if not report.get("ranking"):
            problems.append(f"{name}: empty component ranking")
    if not bundle.get("ranking"):
        problems.append("bundle has no overall ranking")
    validation = bundle.get("validation") or {}
    if validation.get("sign_agrees") is False:
        problems.append(
            f"top component {validation.get('top_component')!r}: "
            f"progress-rate effect "
            f"({validation.get('progress_rate_speedup_pct')}%) disagrees "
            f"in sign with wall-clock effect "
            f"({validation.get('wall_clock_speedup_pct')}%)")
    if bundle.get("failures"):
        problems.append(f"{len(bundle['failures'])} grid cell(s) failed")
    return problems


def render_causal_bundle(bundle: dict) -> str:
    """Human-readable "what's worth optimizing" summary."""
    out: List[str] = []
    config = bundle["config"]
    out.append(
        f"Causal profile: {', '.join(config['benchmarks'])} | "
        f"families {', '.join(config['families'])}"
        f"(max={config['depth']}) | {config['seeds']} seed(s), "
        f"scale {config['scale']:g}")
    out.append("")

    rows = []
    for entry in bundle["ranking"]:
        share = entry["mean_accounted_share_pct"]
        rows.append([
            entry["component"],
            f"{entry['mean_speedup_pct']:+.2f}%",
            f"{share:.2f}%" if share is not None else "-",
            str(entry["benchmarks"]),
        ])
    out.append(format_table(
        ["component", "predicted speedup", "accounted share", "benchmarks"],
        rows,
        title="What's worth optimizing (virtual speedup at max factor)"))
    out.append("")

    for report in bundle["benchmarks"]:
        rows = []
        for curve in report["components"]:
            for cell in curve["cells"]:
                mean = cell["mean_speedup_pct"]
                if mean is None:
                    ci = "-"
                    mean_text = "-"
                else:
                    mean_text = f"{mean:+.2f}%"
                    low, high = cell["ci_low"], cell["ci_high"]
                    ci = (f"[{low:+.2f}, {high:+.2f}]"
                          if low is not None and high is not None
                          else "[-inf, +inf]")
                rows.append([
                    curve["component"],
                    f"{cell['factor']:g}",
                    mean_text,
                    ci,
                    "noisy" if cell["noisy"] else "ok",
                ])
        out.append(format_table(
            ["component", "factor", "speedup", "95% CI", "signal"],
            rows,
            title=f"{report['benchmark']} / {report['family']}"
                  f"(max={report['depth']})"))
        out.append("")

    validation = bundle["validation"]
    if validation.get("top_component"):
        out.append(
            f"validation: top component {validation['top_component']!r} "
            f"at factor {validation.get('factor', 0):g} -- progress-rate "
            f"{validation.get('progress_rate_speedup_pct')}% vs wall-clock "
            f"{validation.get('wall_clock_speedup_pct')}% "
            f"({'sign agrees' if validation.get('sign_agrees') else 'SIGN DISAGREES'})")
    if bundle["ok"]:
        out.append("causal bundle: OK")
    else:
        out.append("causal bundle: INVALID")
        for problem in bundle["problems"]:
            out.append(f"  - {problem}")
    return "\n".join(out)


def write_causal_bundle(path: str, bundle: dict) -> None:
    """Atomically persist a bundle as sorted-key JSON."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as handle:
        json.dump(bundle, handle, indent=2, sort_keys=True)
    os.replace(tmp, path)
