"""The causal experiment engine: virtual-speedup grids over benchmarks.

One causal *experiment cell* runs a fixed-seed benchmark under a cost
model with exactly one component virtually sped up by one factor, and
measures progress-point throughput (marks per cycle) against the
matching *baseline cell* (same benchmark, family, seed; stock costs).
The per-seed paired speedups feed the report layer's confidence
intervals.

The grid reuses the sweep harness wholesale: cells fan out over the
fault-tolerant process pool of :mod:`repro.experiments.runner` with a
causal-specific worker, and finished cells persist through the same
content-addressed :class:`~repro.experiments.cell_cache.CellCache` --
the causal fingerprint hashes the *scaled* cost model plus the seed
index, so interrupted grids resume for free and a factor change never
aliases a cached cell.

Cell keys are sweep-shaped ``(str, str, int)`` tuples so the pool
helpers apply unchanged: the middle slot carries
``"<family>+<component>@<factor>"`` (or ``"<family>+baseline"``) and
the integer slot is the seed index.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aos.runtime import RunResult
from repro.causal.components import apply_virtual_speedup, component_names
from repro.experiments.cell_cache import CellCache
from repro.experiments.config import cost_model_fingerprint
from repro.experiments.runner import (CellFailure, CellKey,
                                      _run_cell_with_retry,
                                      _run_cells_parallel, run_single)
from repro.fleet.harness import SEED_STRIDE
from repro.jvm.costs import DEFAULT_COSTS
from repro.jvm.errors import ConfigError
from repro.telemetry.progress import ProgressTracker
from repro.workloads.spec import build_benchmark

#: Default virtual-speedup grid: 10% to 100% ("component is free").
DEFAULT_FACTORS: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0)

#: Baseline marker used in the key's component slot.
BASELINE = "baseline"

#: Bumped whenever causal fingerprint inputs or the cached cell format
#: change incompatibly.
CAUSAL_FINGERPRINT_VERSION = 1


@dataclass(frozen=True)
class CausalConfig:
    """What to profile: benchmarks x families x components x factors."""

    #: The ISSUE's trio spans the interesting personalities: jess
    #: (compile-time dominated), db (guard/dispatch heavy), javac (deep
    #: chains, organizer pressure).
    benchmarks: Tuple[str, ...] = ("jess", "db", "javac")
    families: Tuple[str, ...] = ("cins",)
    depth: int = 2
    components: Tuple[str, ...] = field(default_factory=component_names)
    factors: Tuple[float, ...] = DEFAULT_FACTORS
    #: Independent replicates per cell; each shifts the workload
    #: generator seed by :data:`~repro.fleet.harness.SEED_STRIDE`.
    seeds: int = 3
    #: Single sampling phase per cell (causal cells are paired baseline
    #: vs experiment at identical phase, so best-of-phases would only
    #: blur the pairing).
    phase: float = 0.0
    scale: float = 1.0
    jobs: int = 0
    cell_timeout: Optional[float] = None

    def validate(self) -> None:
        known = set(component_names())
        unknown = sorted(set(self.components) - known)
        if unknown:
            raise ConfigError(
                f"unknown causal component(s): {', '.join(unknown)}; "
                f"expected a subset of {', '.join(sorted(known))}")
        for factor in self.factors:
            if not 0.0 < factor <= 1.0:
                raise ConfigError(
                    f"virtual-speedup factors must be in (0, 1], "
                    f"got {factor!r}")
        if self.seeds < 1:
            raise ConfigError(f"seeds must be >= 1, got {self.seeds}")

    def cells(self) -> List[CellKey]:
        """All cell keys, baselines first (report order)."""
        keys: List[CellKey] = []
        for benchmark in self.benchmarks:
            for family in self.families:
                for seed_index in range(self.seeds):
                    keys.append(baseline_key(benchmark, family, seed_index))
        for benchmark in self.benchmarks:
            for family in self.families:
                for component in self.components:
                    for factor in self.factors:
                        for seed_index in range(self.seeds):
                            keys.append(experiment_key(
                                benchmark, family, component, factor,
                                seed_index))
        return keys


# -- key encoding -------------------------------------------------------------

def baseline_key(benchmark: str, family: str, seed_index: int) -> CellKey:
    return (benchmark, f"{family}+{BASELINE}", seed_index)


def experiment_key(benchmark: str, family: str, component: str,
                   factor: float, seed_index: int) -> CellKey:
    return (benchmark, f"{family}+{component}@{factor:g}", seed_index)


def parse_key(key: CellKey) -> Tuple[str, str, Optional[str], float, int]:
    """Decode ``(benchmark, family, component|None, factor, seed_index)``."""
    benchmark, slot, seed_index = key
    family, _, experiment = slot.partition("+")
    if experiment == BASELINE:
        return benchmark, family, None, 0.0, seed_index
    component, _, factor_text = experiment.partition("@")
    return benchmark, family, component, float(factor_text), seed_index


# -- fingerprints -------------------------------------------------------------

def causal_fingerprint(benchmark: str, family: str, depth: int,
                       component: Optional[str], factor: float,
                       seed_index: int, phase: float, scale: float) -> str:
    """Content hash of everything that determines one causal cell.

    Hashes the *scaled* cost model, so two different (component, factor)
    pairs that happen to produce the same model still cache separately
    only through their explicit identity fields -- and a change to the
    stock :data:`DEFAULT_COSTS` invalidates every causal cell at once.
    """
    costs = DEFAULT_COSTS
    if component is not None:
        costs = apply_virtual_speedup(DEFAULT_COSTS, component, factor)
    payload = json.dumps({
        "version": CAUSAL_FINGERPRINT_VERSION,
        "kind": "causal",
        "benchmark": benchmark,
        "family": family,
        "depth": depth,
        "component": component or BASELINE,
        "factor": float(factor),
        "seed_index": seed_index,
        "phase": float(phase),
        "scale": float(scale),
        "costs": cost_model_fingerprint(costs),
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_fingerprint(config: CausalConfig, key: CellKey) -> str:
    benchmark, family, component, factor, seed_index = parse_key(key)
    return causal_fingerprint(benchmark, family, config.depth, component,
                              factor, seed_index, config.phase, config.scale)


# -- the worker ---------------------------------------------------------------

def _causal_worker(args) -> Tuple[CellKey, RunResult, None, None]:
    """Run one causal cell; module-level so the process pool can pickle it.

    Returns the ``(key, result, snapshot, log)`` shape the sweep pool
    helpers expect; causal cells carry their measurements inside
    :attr:`RunResult.progress_points`, so the snapshot/log slots stay
    empty.
    """
    (benchmark, family, depth, phase, scale, seed_index,
     component, factor) = args
    costs = DEFAULT_COSTS
    if component is not None:
        costs = apply_virtual_speedup(DEFAULT_COSTS, component, factor)
        key = experiment_key(benchmark, family, component, factor,
                             seed_index)
    else:
        key = baseline_key(benchmark, family, seed_index)
    generated = build_benchmark(benchmark, scale=scale,
                                seed_offset=seed_index * SEED_STRIDE)
    tracker = ProgressTracker(label=f"{key[0]}/{key[1]}/seed{seed_index}")
    result = run_single(benchmark, family, depth, phase, scale, costs,
                        progress=tracker, generated=generated)
    return key, result, None, None


# -- results ------------------------------------------------------------------

@dataclass
class CausalResults:
    """All cells of one causal grid, with paired lookups."""

    config: CausalConfig
    cells: Dict[CellKey, RunResult]
    failures: Dict[CellKey, CellFailure] = field(default_factory=dict)

    def baseline(self, benchmark: str, family: str,
                 seed_index: int) -> Optional[RunResult]:
        return self.cells.get(baseline_key(benchmark, family, seed_index))

    def experiment(self, benchmark: str, family: str, component: str,
                   factor: float, seed_index: int) -> Optional[RunResult]:
        return self.cells.get(experiment_key(benchmark, family, component,
                                             factor, seed_index))

    def pairs(self, benchmark: str, family: str, component: str,
              factor: float) -> List[Tuple[int, RunResult, RunResult]]:
        """Per-seed ``(seed_index, baseline, experiment)`` pairs.

        Seeds where either side failed are silently absent; the report
        layer flags cells whose pair count fell below the configured
        replicate count.
        """
        paired = []
        for seed_index in range(self.config.seeds):
            base = self.baseline(benchmark, family, seed_index)
            exp = self.experiment(benchmark, family, component, factor,
                                  seed_index)
            if base is not None and exp is not None:
                paired.append((seed_index, base, exp))
        return paired


def run_causal(config: Optional[CausalConfig] = None,
               cache: Optional[CellCache] = None,
               verbose: bool = False) -> CausalResults:
    """Run the causal grid, fanning cells out over worker processes.

    Mirrors :func:`repro.experiments.runner.run_sweep`: cached cells are
    loaded up front, fresh results persist the moment a worker finishes,
    cells that fail even after retry are recorded instead of aborting.
    """
    if config is None:
        config = CausalConfig()
    config.validate()
    cells = config.cells()
    total = len(cells)
    results: Dict[CellKey, RunResult] = {}
    failures: Dict[CellKey, CellFailure] = {}

    fingerprints: Dict[CellKey, str] = {}
    if cache is not None:
        fingerprints = {key: config_fingerprint(config, key)
                        for key in cells}
        results.update(cache.load_many(fingerprints))
        # A cell cached without progress points (e.g. killed mid-write or
        # a pre-causal cache collision) cannot feed rate math; re-run it.
        stale = [key for key, result in results.items()
                 if result.progress_points is None]
        for key in stale:
            del results[key]
        if verbose and results:
            print(f"  resumed {len(results)}/{total} causal cell(s) "
                  f"from {cache.root}")

    pending = [key for key in cells if key not in results]
    done = len(results)

    def finish(key: CellKey, result: RunResult, snapshot, log) -> None:
        nonlocal done
        results[key] = result
        if cache is not None:
            cache.store(fingerprints[key], key, result)
        done += 1
        if verbose:
            print(f"  [{done}/{total}] done {key}")

    def fail(key: CellKey, failure: CellFailure) -> None:
        nonlocal done
        failures[key] = failure
        done += 1
        if verbose:
            print(f"  [{done}/{total}] FAILED {key}: "
                  f"{failure.error_type}: {failure.message}")

    def args_for(key: CellKey):
        benchmark, family, component, factor, seed_index = parse_key(key)
        return (benchmark, family, config.depth, config.phase, config.scale,
                seed_index, component, factor)

    if pending:
        jobs = config.jobs if config.jobs > 0 else (os.cpu_count() or 2)
        jobs = min(jobs, len(pending))
        if jobs > 1:
            pending = _run_cells_parallel(pending, args_for, jobs,
                                          config.cell_timeout, finish, fail,
                                          worker=_causal_worker)
        for key in pending:
            _run_cell_with_retry(key, args_for(key), finish, fail,
                                 worker=_causal_worker)

    missing_baselines = [
        (benchmark, family)
        for benchmark in config.benchmarks for family in config.families
        if not any(baseline_key(benchmark, family, s) in results
                   for s in range(config.seeds))
    ]
    if missing_baselines:
        warnings.warn(
            f"causal grid lost every baseline seed for "
            f"{missing_baselines}; affected experiments cannot be paired",
            RuntimeWarning, stacklevel=2)

    return CausalResults(config=config, cells=results, failures=failures)
