"""Causal profiling for the adaptive optimization system.

Coz-style what-if experiments (arXiv:1608.03676) over the simulation's
cost model: each experiment makes one AOS component *virtually faster*
by scaling its :class:`~repro.jvm.costs.CostModel` fields, re-runs the
fixed-seed benchmark, and measures the change in progress-point
throughput (:mod:`repro.telemetry.progress`).  The report ranks
components by how much end-to-end progress their speedup would actually
buy -- which is not the same as how much time they account for.

* :mod:`~repro.causal.components` -- the registry of virtually-speedable
  components and their cost-field/accounting mappings;
* :mod:`~repro.causal.engine` -- the multi-seed experiment grid, run on
  the sweep harness's fault-tolerant pool and per-cell cache;
* :mod:`~repro.causal.report` -- confidence intervals, rankings, and the
  versioned ``repro.causal/v1`` bundle.
"""

from repro.causal.components import (CAUSAL_COMPONENTS, CausalComponent,
                                     accounted_share, apply_virtual_speedup,
                                     component_names, get_component)
from repro.causal.engine import (BASELINE, DEFAULT_FACTORS, CausalConfig,
                                 CausalResults, baseline_key,
                                 causal_fingerprint, experiment_key,
                                 parse_key, run_causal)
from repro.causal.report import (CAUSAL_SCHEMA, NOISY_RCIW,
                                 build_causal_bundle, cell_stats,
                                 component_curve, render_causal_bundle,
                                 validate_causal_bundle,
                                 write_causal_bundle)

__all__ = [
    "BASELINE", "CAUSAL_COMPONENTS", "CAUSAL_SCHEMA", "CausalComponent",
    "CausalConfig", "CausalResults", "DEFAULT_FACTORS", "NOISY_RCIW",
    "accounted_share", "apply_virtual_speedup", "baseline_key",
    "build_causal_bundle", "causal_fingerprint", "cell_stats",
    "component_curve", "component_names", "experiment_key", "get_component",
    "parse_key", "render_causal_bundle", "run_causal",
    "validate_causal_bundle", "write_causal_bundle",
]
