"""The virtually-speedable components of the adaptive optimization system.

A *causal component* is a named slice of the simulation's cost model
that a causal experiment can make virtually faster: scaling its
:class:`~repro.jvm.costs.CostModel` fields by ``1 - factor`` simulates
the component running ``factor`` faster (Coz-style virtual speedup,
arXiv:1608.03676).  Because the system is clock-driven, decisions are
*allowed* to adapt to the cheaper component -- a cheaper compiler
compiles more, cheaper organizers sample-process faster -- which is
exactly the what-if being asked: "what would the whole adaptive system
do if this part were faster?".

Only pure cost-rate fields are scaled.  Decision-side knobs (size-class
limits, inline depth, space caps, thresholds) stay fixed: scaling those
would change *policy*, not component speed, and answer a different
question.  ``invalidation`` is the one modeling stretch: it has no cost
field of its own, so its virtual speedup scales the recompile cooldown,
modeling a system that recovers from invalidated assumptions sooner.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.aos.cost_accounting import (COMPILATION, LISTENERS, ORGANIZERS,
                                       component_share)
from repro.aos.runtime import RunResult
from repro.jvm.costs import CostModel
from repro.jvm.errors import ConfigError


@dataclass(frozen=True)
class CausalComponent:
    """One virtually-speedable slice of the cost model."""

    name: str
    description: str
    #: :class:`CostModel` field names scaled by ``1 - factor``.
    cost_fields: Tuple[str, ...]
    #: Cost-accounting components whose cycles this slice owns, for the
    #: accounted-share contrast in reports; empty when the component's
    #: cycles are charged to the application (guard, dispatch) or are
    #: not cycles at all (invalidation cooldown).
    accounting: Tuple[str, ...] = ()


#: The registry, in report order.
CAUSAL_COMPONENTS: Tuple[CausalComponent, ...] = (
    CausalComponent(
        name="guard",
        description="inline guard (class test) execution at guarded "
                    "inline sites",
        cost_fields=("guard_test",)),
    CausalComponent(
        name="dispatch",
        description="virtual/interface dispatch and non-inlined call "
                    "overhead",
        cost_fields=("virtual_dispatch", "interface_dispatch",
                     "call_overhead")),
    CausalComponent(
        name="compile",
        description="baseline and optimizing compiler throughput",
        cost_fields=("opt_compile_cycles_per_bc",
                     "baseline_compile_cycles_per_bc"),
        accounting=(COMPILATION,)),
    CausalComponent(
        name="organizer",
        description="organizer threads and controller event processing",
        cost_fields=("dcg_ingest_cost", "ai_examine_cost",
                     "method_organizer_cost", "decay_entry_cost",
                     "missing_edge_check_cost", "controller_event_cost"),
        accounting=ORGANIZERS),
    CausalComponent(
        name="listener",
        description="timer-sample listeners (method + trace)",
        cost_fields=("method_listener_cost", "trace_frame_cost"),
        accounting=(LISTENERS,)),
    CausalComponent(
        name="invalidation",
        description="recovery latency after invalidated speculation "
                    "(recompile cooldown)",
        cost_fields=("recompile_cooldown",)),
)

_BY_NAME: Dict[str, CausalComponent] = {
    component.name: component for component in CAUSAL_COMPONENTS
}


def component_names() -> Tuple[str, ...]:
    """Registry names in report order."""
    return tuple(component.name for component in CAUSAL_COMPONENTS)


def get_component(name: str) -> CausalComponent:
    """Look a component up by name; unknown names fail diagnosably."""
    try:
        return _BY_NAME[name]
    except KeyError:
        close = difflib.get_close_matches(name, sorted(_BY_NAME), n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ConfigError(
            f"unknown causal component {name!r}{hint}; "
            f"expected one of {', '.join(component_names())}") from None


def apply_virtual_speedup(costs: CostModel, component: str,
                          factor: float) -> CostModel:
    """Cost model with one component made ``factor`` faster.

    ``factor`` is the virtual-speedup fraction: ``0.25`` makes the
    component 25% faster (its cost fields scale to 75%), ``1.0`` makes
    it free.  ``factor`` must lie in ``(0, 1]`` -- a zero speedup is
    the baseline run, not an experiment.
    """
    if not 0.0 < factor <= 1.0:
        raise ConfigError(
            f"virtual-speedup factor must be in (0, 1], got {factor!r}")
    spec = get_component(component)
    remaining = 1.0 - factor
    return costs.replace(**{
        name: getattr(costs, name) * remaining for name in spec.cost_fields
    })


def accounted_share(component: str, result: RunResult,
                    costs: CostModel) -> Optional[float]:
    """The component's *accounted* fraction of a run's total cycles.

    This is the conventional profiler's answer ("X% of time is spent
    here"), reported next to the causal profiler's measured effect so
    the report can show where the two disagree.  Accounting-backed
    components read :attr:`RunResult.component_cycles`; guard and
    dispatch cycles are charged to the application, so their share is
    estimated from event counts times unit costs.  ``invalidation`` has
    no cycle cost at all (the cooldown is latency, not work) and
    returns ``None``.
    """
    spec = get_component(component)
    if spec.accounting:
        return component_share(result.component_cycles, spec.accounting)
    total = result.total_cycles
    if total <= 0:
        return 0.0
    if component == "guard":
        return result.guard_tests * costs.guard_test / total
    if component == "dispatch":
        estimated = (result.dispatches * costs.virtual_dispatch
                     + result.calls * costs.call_overhead)
        return estimated / total
    return None
