"""Cross-process telemetry aggregation for experiment sweeps.

Sweep cells run in worker processes; each worker freezes its recorder
into a picklable :class:`~repro.telemetry.recorder.TelemetrySnapshot`
that travels back with the cell's :class:`~repro.aos.runtime.RunResult`.
This module merges those per-cell snapshots: combined component totals,
summed counters, folded histograms, and a single multi-process Chrome
trace (one ``pid`` per cell, so Perfetto shows the whole sweep as one
inspectable timeline).
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Tuple

from repro.aos.cost_accounting import ALL_COMPONENTS
from repro.metrics.report import format_table
from repro.telemetry.chrome_trace import trace_events
from repro.telemetry.recorder import HistogramData, TelemetrySnapshot
from repro.telemetry.summary import component_totals


#: One sweep cell's identity, as the experiment harness keys it.
CellKey = Tuple[str, str, int]  # (benchmark, family, depth)


def cell_label(key: CellKey) -> str:
    """Human-readable label for one sweep cell's telemetry."""
    benchmark, family, depth = key
    return f"{benchmark}/{family}/max{depth}"


def label_cell_snapshots(
        telemetry: Mapping[CellKey, TelemetrySnapshot]) \
        -> Dict[str, TelemetrySnapshot]:
    """Re-key a sweep's per-cell snapshot map by readable labels.

    ``SweepResults.telemetry`` is keyed by cell tuples; every merge
    helper in this module (and the multi-process Chrome trace) wants
    string labels.  This is the adapter between the two.
    """
    return {cell_label(key): snapshot
            for key, snapshot in telemetry.items()}


def merge_cell_telemetry(
        *maps: Optional[Mapping[CellKey, TelemetrySnapshot]]) \
        -> Dict[CellKey, TelemetrySnapshot]:
    """Union per-cell snapshot maps from resumed sweep runs.

    A resumed sweep only collects telemetry for the cells it actually
    ran -- cells served from the per-cell cache carry no snapshot.  This
    folds the partial maps of successive runs into one view; later maps
    win where cells overlap (they re-ran the cell), and ``None`` maps
    (sweeps run without ``collect_telemetry``) are skipped.

    The result is key-sorted so downstream folds (and serializations)
    are independent of the insertion order of the input maps.
    """
    merged: Dict[CellKey, TelemetrySnapshot] = {}
    for mapping in maps:
        if mapping:
            merged.update(mapping)
    return {key: merged[key] for key in sorted(merged)}


def merge_component_totals(
        snapshots: Mapping[str, TelemetrySnapshot]) -> Dict[str, float]:
    """Sum per-component span cycles (plus the app residual) across runs.

    Folds in a canonical (label-sorted, then component-sorted) order:
    float addition is not associative, so an order-sensitive fold would
    make the merged totals depend on dict insertion order.  Shuffled
    inputs must produce byte-identical output.
    """
    merged: Dict[str, float] = {}
    for label in sorted(snapshots):
        totals = component_totals(snapshots[label])
        for component in sorted(totals):
            merged[component] = merged.get(component, 0.0) + totals[component]
    return {component: merged[component] for component in sorted(merged)}


def merge_counters(
        snapshots: Mapping[str, TelemetrySnapshot]) -> Dict[str, float]:
    """Sum every monotonic counter across runs (order-canonical fold)."""
    merged: Dict[str, float] = {}
    for label in sorted(snapshots):
        counters = snapshots[label].counters
        for name in sorted(counters):
            merged[name] = merged.get(name, 0.0) + counters[name]
    return {name: merged[name] for name in sorted(merged)}


def merge_histograms(
        snapshots: Mapping[str, TelemetrySnapshot]) \
        -> Dict[str, HistogramData]:
    """Fold every histogram across runs (bucket-wise, order-canonical)."""
    merged: Dict[str, HistogramData] = {}
    for label in sorted(snapshots):
        histograms = snapshots[label].histograms
        for name in sorted(histograms):
            if name not in merged:
                merged[name] = HistogramData()
            merged[name].merge(histograms[name])
    return {name: merged[name] for name in sorted(merged)}


def merged_chrome_trace(
        snapshots: Mapping[str, TelemetrySnapshot]) -> dict:
    """One Chrome trace spanning every run: one process (pid) per label."""
    events: List[dict] = []
    total = 0.0
    for pid, label in enumerate(sorted(snapshots), start=1):
        snapshot = snapshots[label]
        per_run = trace_events(snapshot, pid=pid)
        # The per-run process_name metadata already names the run; prefer
        # the mapping key so sweep cells are labelled consistently.
        for event in per_run:
            if event.get("name") == "process_name":
                event["args"] = {"name": label}
        events.extend(per_run)
        total += snapshot.total_cycles
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "runs": len(snapshots),
            "total_cycles": total,
            "clock_unit": "simulated cycles (rendered as microseconds)",
        },
    }


def write_merged_chrome_trace(
        path: str, snapshots: Mapping[str, TelemetrySnapshot]) -> int:
    """Write the merged multi-process trace; returns the event count."""
    trace = merged_chrome_trace(snapshots)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])


def render_aggregate(
        snapshots: Mapping[str, TelemetrySnapshot]) -> Tuple[dict, str]:
    """Aggregate overhead table across runs; returns (data, rendered)."""
    totals = merge_component_totals(snapshots)
    grand_total = sum(snapshots[label].total_cycles
                      for label in sorted(snapshots)) or 1.0
    components = [c for c in ALL_COMPONENTS if c in totals]
    components += sorted(c for c in totals if c not in ALL_COMPONENTS)
    rows = [[component, f"{totals[component]:,.0f}",
             f"{100.0 * totals[component] / grand_total:.3f}%"]
            for component in components]
    rendered = format_table(
        ["component", "cycles", "% of total"], rows,
        title=f"Aggregate telemetry over {len(snapshots)} runs "
              f"({grand_total:,.0f} cycles)")
    data = {"totals": totals, "total_cycles": grand_total,
            "counters": merge_counters(snapshots)}
    return data, rendered
