"""Progress points: named throughput markers on the simulated cycle clock.

A *progress point* (Coz, arXiv:1608.03676) is a place in the program
whose rate of execution defines "progress" -- here, completion of one
iteration of a benchmark's top-level driver loop.  Causal experiments
report predicted speedups as *progress-rate* changes (marks per cycle)
rather than raw total-cycle deltas, so a what-if that merely shifts work
around without completing transactions faster scores zero.

The tracker follows the telemetry zero-overhead contract: marking a
progress point charges no simulated cycles and changes no decisions, so
a tracked run is cycle-identical to an untracked one.  The machine's
marking hook is two attribute loads and a dict probe per *loop
statement* (not per iteration) when no points are registered.

When a :class:`~repro.telemetry.recorder.TelemetryRecorder` is attached,
every mark is mirrored as a ``progress/<name>`` counter sample, which
the Chrome-trace exporter renders as a throughput track -- the causal
profiler's experiment annotations ride along in the trace metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.jvm.program import Loop, MethodDef, Program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.telemetry.recorder import TelemetryRecorder


@dataclass
class ProgressPointStats:
    """Everything recorded about one progress point."""

    count: int = 0
    first_clock: float = 0.0
    last_clock: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"count": float(self.count),
                "first_clock": self.first_clock,
                "last_clock": self.last_clock}


class ProgressTracker:
    """Counts progress-point hits against the simulated cycle clock."""

    def __init__(self, label: str = "run",
                 telemetry: Optional["TelemetryRecorder"] = None):
        self.label = label
        self.telemetry = telemetry
        self.points: Dict[str, ProgressPointStats] = {}
        self._clock: Callable[[], float] = lambda: 0.0

    def bind(self, clock: Callable[[], float]) -> None:
        """Attach the cycle-clock source (the adaptive runtime does this)."""
        self._clock = clock

    def mark(self, name: str) -> None:
        """Record one completion of the named progress point."""
        clock = self._clock()
        stats = self.points.get(name)
        if stats is None:
            stats = self.points[name] = ProgressPointStats()
            stats.first_clock = clock
        stats.count += 1
        stats.last_clock = clock
        if self.telemetry is not None:
            self.telemetry.count(f"progress/{name}")

    # -- queries -----------------------------------------------------------

    def total_marks(self) -> int:
        return sum(stats.count for stats in self.points.values())

    def rate(self, total_cycles: float,
             name: Optional[str] = None) -> float:
        """Progress throughput in marks per 1000 cycles.

        With ``name`` the rate of one point; without, the aggregate rate
        over every point.  Zero cycles yields zero rate.
        """
        if total_cycles <= 0.0:
            return 0.0
        count = (self.points[name].count if name is not None
                 else self.total_marks())
        return 1000.0 * count / total_cycles

    def summary(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready per-point statistics (sorted for determinism)."""
        return {name: self.points[name].as_dict()
                for name in sorted(self.points)}


# -- rate helpers over persisted summaries ----------------------------------

def progress_rate(progress_points: Optional[Dict[str, Dict[str, float]]],
                  total_cycles: float) -> float:
    """Aggregate marks-per-1000-cycles from a persisted summary.

    Operates on the ``RunResult.progress_points`` payload so reports can
    compute rates from cached cells without re-running anything.
    """
    if not progress_points or total_cycles <= 0.0:
        return 0.0
    count = sum(stats["count"] for stats in progress_points.values())
    return 1000.0 * count / total_cycles


# -- wiring ------------------------------------------------------------------

def main_loop_points(program: Program,
                     method: Optional[MethodDef] = None) -> Dict[int, str]:
    """Progress points for a program's entry-method top-level loops.

    Each top-level ``Loop`` of the entry method is one progress point:
    a single loop is named ``main`` (the common all-drivers-per-
    iteration shape); several top-level loops are the program's phases
    and named ``phase0``, ``phase1``, ... in source order.  Keys are
    loop-statement identities, matching the machine's registration
    surface (:attr:`~repro.jvm.interpreter.Machine.progress_loops`).
    """
    entry = method if method is not None else program.entry_method()
    loops = [stmt for stmt in entry.body if isinstance(stmt, Loop)]
    if not loops:
        return {}
    if len(loops) == 1:
        return {id(loops[0]): "main"}
    return {id(stmt): f"phase{index}"
            for index, stmt in enumerate(loops)}


def instrument_progress(machine, program: Program,
                        tracker: ProgressTracker) -> Dict[int, str]:
    """Register entry-loop progress points on a machine.

    Binds the tracker to the machine clock, installs the per-iteration
    marking hook, and returns the registered ``{id(loop): name}`` map
    (empty when the entry method has no top-level loop).
    """
    points = main_loop_points(program)
    tracker.bind(lambda: machine.clock)
    if points:
        machine.progress_loops.update(points)
        machine.progress_observer = tracker.mark
    return points
