"""Unified tracing/metrics for the adaptive optimization system.

The subsystem has four parts:

* :mod:`~repro.telemetry.recorder` -- deterministic spans, instants,
  counters, gauges, and histograms on the simulated cycle clock, with a
  zero-overhead :class:`NullRecorder` default;
* :mod:`~repro.telemetry.chrome_trace` -- Chrome trace-event JSON export
  (open in Perfetto), one track per AOS component;
* :mod:`~repro.telemetry.summary` -- per-component overhead tables that
  reconcile exactly with :class:`~repro.aos.cost_accounting.CostAccounting`;
* :mod:`~repro.telemetry.aggregate` -- merging recorders across sweep
  worker processes into combined tables and multi-process traces;
* :mod:`~repro.telemetry.progress` -- progress points: named throughput
  markers on the cycle clock (Coz-style), the measurement surface of the
  causal profiler (:mod:`repro.causal`).
"""

from repro.telemetry.recorder import (NULL_RECORDER, HistogramData,
                                      InstantRecord, NullRecorder,
                                      SpanRecord, TelemetryRecorder,
                                      TelemetrySnapshot)
from repro.telemetry.progress import (ProgressPointStats, ProgressTracker,
                                      instrument_progress, main_loop_points,
                                      progress_rate)
from repro.telemetry.chrome_trace import (to_chrome_trace, trace_events,
                                          write_chrome_trace)
from repro.telemetry.summary import (component_totals, fractions, reconcile,
                                     span_stats, summarize)
from repro.telemetry.aggregate import (cell_label, label_cell_snapshots,
                                       merge_cell_telemetry,
                                       merge_component_totals, merge_counters,
                                       merge_histograms, merged_chrome_trace,
                                       render_aggregate,
                                       write_merged_chrome_trace)

__all__ = [
    "NULL_RECORDER", "HistogramData", "InstantRecord", "NullRecorder",
    "ProgressPointStats", "ProgressTracker",
    "SpanRecord", "TelemetryRecorder", "TelemetrySnapshot",
    "cell_label", "component_totals", "fractions", "instrument_progress",
    "label_cell_snapshots", "main_loop_points",
    "merge_cell_telemetry", "merge_component_totals",
    "merge_counters", "merge_histograms", "merged_chrome_trace",
    "progress_rate", "reconcile", "render_aggregate", "span_stats",
    "summarize", "to_chrome_trace", "trace_events", "write_chrome_trace",
    "write_merged_chrome_trace",
]
