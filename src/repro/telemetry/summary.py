"""Per-component overhead/latency summaries over telemetry snapshots.

The summary is the tabular counterpart of Figure 6: for each AOS
component it reports how many spans ran, the cycles they consumed
(span ``self_cycles``, which sums to the component's
:class:`~repro.aos.cost_accounting.CostAccounting` total by
construction), the fraction of total execution time, and simple span
latency statistics.  :func:`reconcile` asserts that agreement against a
run's actual accounting snapshot -- the subsystem's own measurement
honesty check.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.aos.cost_accounting import ALL_COMPONENTS, AOS_COMPONENTS, APP
from repro.metrics.report import format_table
from repro.telemetry.recorder import TelemetrySnapshot

#: Relative disagreement tolerated between span totals and accounting
#: (floating-point summation order differs between the two sides).
RECONCILE_REL_TOL = 1e-9


def component_totals(snapshot: TelemetrySnapshot) -> Dict[str, float]:
    """Sum span ``self_cycles`` per component track.

    ``app`` is reported as the residual (total minus every span-covered
    component): the application has no spans of its own, exactly as it
    has no listener/organizer/compiler regions.
    """
    totals: Dict[str, float] = {}
    for span in snapshot.spans:
        totals[span.component] = totals.get(span.component, 0.0) \
            + span.self_cycles
    totals[APP] = snapshot.total_cycles - sum(
        cycles for component, cycles in totals.items() if component != APP)
    return totals


def span_stats(snapshot: TelemetrySnapshot) \
        -> Dict[str, Tuple[int, float, float]]:
    """Per component: (span count, mean span cycles, max span cycles)."""
    grouped: Dict[str, List[float]] = {}
    for span in snapshot.spans:
        grouped.setdefault(span.component, []).append(span.self_cycles)
    return {component: (len(values), sum(values) / len(values), max(values))
            for component, values in grouped.items()}


def summarize(snapshot: TelemetrySnapshot) -> Tuple[List[dict], str]:
    """Build the per-component overhead table; returns (rows, rendered)."""
    totals = component_totals(snapshot)
    stats = span_stats(snapshot)
    total = snapshot.total_cycles or 1.0

    components = [c for c in ALL_COMPONENTS if c in totals]
    components += sorted(c for c in totals if c not in ALL_COMPONENTS)

    rows = []
    for component in components:
        count, mean, peak = stats.get(component, (0, 0.0, 0.0))
        rows.append({
            "component": component,
            "spans": count,
            "cycles": totals[component],
            "fraction": totals[component] / total,
            "mean_span_cycles": mean,
            "max_span_cycles": peak,
        })
    rendered = format_table(
        ["component", "spans", "cycles", "% of total", "mean span", "max span"],
        [[r["component"], str(r["spans"]), f"{r['cycles']:,.0f}",
          f"{100.0 * r['fraction']:.3f}%", f"{r['mean_span_cycles']:,.1f}",
          f"{r['max_span_cycles']:,.1f}"] for r in rows],
        title=f"Telemetry component summary ({snapshot.label}, "
              f"{snapshot.total_cycles:,.0f} cycles)")
    return rows, rendered


def reconcile(snapshot: TelemetrySnapshot,
              accounting: Mapping[str, float],
              rel_tol: float = RECONCILE_REL_TOL) -> Tuple[bool, List[dict], str]:
    """Check span totals against a run's cost-accounting snapshot.

    ``accounting`` is :meth:`CostAccounting.snapshot` (or the equal
    ``RunResult.component_cycles``).  Returns ``(ok, rows, rendered)``
    where ``ok`` means every component agrees within ``rel_tol``
    (relative to total cycles).
    """
    totals = component_totals(snapshot)
    total = snapshot.total_cycles or 1.0
    ok = True
    rows = []
    for component in ALL_COMPONENTS:
        measured = totals.get(component, 0.0)
        expected = accounting.get(component, 0.0)
        diff = measured - expected
        agrees = abs(diff) <= rel_tol * max(total, 1.0)
        ok = ok and agrees
        rows.append({
            "component": component,
            "span_cycles": measured,
            "accounting_cycles": expected,
            "diff": diff,
            "ok": agrees,
        })
    rendered = format_table(
        ["component", "span cycles", "accounting", "diff", "ok"],
        [[r["component"], f"{r['span_cycles']:,.1f}",
          f"{r['accounting_cycles']:,.1f}", f"{r['diff']:+.3g}",
          "yes" if r["ok"] else "NO"] for r in rows],
        title="Telemetry vs cost accounting reconciliation")
    return ok, rows, rendered


def fractions(snapshot: TelemetrySnapshot) -> Dict[str, float]:
    """Figure-6-style per-component fractions derived from spans alone.

    Matches :meth:`CostAccounting.fractions` for an instrumented run
    (see :func:`reconcile`).
    """
    totals = component_totals(snapshot)
    total = snapshot.total_cycles
    if total == 0:
        return {component: 0.0 for component in ALL_COMPONENTS}
    return {component: totals.get(component, 0.0) / total
            for component in ALL_COMPONENTS}
