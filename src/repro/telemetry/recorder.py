"""Deterministic telemetry recording on the simulated cycle clock.

The recorder is the write side of the ``repro.telemetry`` subsystem:
components open **spans** (begin/end intervals on the simulated clock),
drop **instant events** (invalidations, OSR requests, rule changes), bump
**counters**, sample **gauges**, and feed **histograms**.  Everything is
timestamped with the machine's cycle clock, so two runs of the same
configuration produce byte-identical telemetry.

Like :class:`~repro.aos.event_log.EventLog`, telemetry is pure
instrumentation: it charges no simulated cycles and changes no decisions,
so a traced run and an untraced run are cycle-identical.  Un-instrumented
runs pay nothing at all -- every instrumentation point defaults to the
:data:`NULL_RECORDER` singleton, whose methods are all no-ops.

Exact cost attribution
----------------------

A span's wall extent is the clock interval it covers, but its
``self_cycles`` is the delta of the *component's* cycle accumulator
(:class:`~repro.aos.cost_accounting.CostAccounting`) between begin and
end.  Because each instrumented region charges exactly one component,
summing ``self_cycles`` per component reproduces the cost-accounting
totals exactly -- even when spans of different components nest (a timer
tick firing inside a baseline compile, say).  Call sites that know their
exact cost can pass ``self_cycles`` explicitly to ``end_span`` instead.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass
class SpanRecord:
    """One closed span: a named interval on one component's track."""

    component: str
    name: str
    begin: float
    end: float
    self_cycles: float
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.begin


@dataclass
class InstantRecord:
    """One point event on a component's track (invalidation, OSR, ...)."""

    component: str
    name: str
    clock: float
    args: Dict[str, Any] = field(default_factory=dict)


@dataclass
class HistogramData:
    """A log2-bucketed histogram of observed values."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    #: bucket index -> count; bucket ``i`` holds values in (2^(i-1), 2^i].
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        index = 0 if value <= 1.0 else int(math.ceil(math.log2(value)))
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "HistogramData") -> None:
        """Fold another histogram into this one (for sweep aggregation)."""
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count


@dataclass
class TelemetrySnapshot:
    """A frozen, picklable copy of everything a recorder collected.

    Snapshots are what crosses process boundaries in sweep aggregation and
    what the exporters (:mod:`repro.telemetry.chrome_trace`,
    :mod:`repro.telemetry.summary`) consume.
    """

    label: str
    total_cycles: float
    spans: List[SpanRecord] = field(default_factory=list)
    instants: List[InstantRecord] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    counter_series: Dict[str, List[Tuple[float, float]]] = \
        field(default_factory=dict)
    histograms: Dict[str, HistogramData] = field(default_factory=dict)


class _OpenSpan:
    __slots__ = ("component", "name", "begin", "begin_cycles", "args")

    def __init__(self, component: str, name: str, begin: float,
                 begin_cycles: float, args: Dict[str, Any]):
        self.component = component
        self.name = name
        self.begin = begin
        self.begin_cycles = begin_cycles
        self.args = args


class TelemetryRecorder:
    """Collects spans, instants, counters, gauges, and histograms.

    The recorder is passive until :meth:`bind` attaches it to a clock
    source (and optionally a per-component cycle accumulator); the
    adaptive runtime does this when it is handed a recorder.
    """

    enabled = True

    def __init__(self, label: str = "run"):
        self.label = label
        self._clock: Callable[[], float] = lambda: 0.0
        self._component_cycles: Callable[[str], float] = lambda component: 0.0
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.counter_series: Dict[str, List[Tuple[float, float]]] = {}
        self.histograms: Dict[str, HistogramData] = {}
        self._open: Dict[int, _OpenSpan] = {}
        self._next_id = 1

    # -- wiring ------------------------------------------------------------------

    def bind(self, clock: Callable[[], float],
             component_cycles: Optional[Callable[[str], float]] = None) \
            -> None:
        """Attach the clock (and per-component cycle) sources."""
        self._clock = clock
        if component_cycles is not None:
            self._component_cycles = component_cycles

    # -- spans -------------------------------------------------------------------

    def begin_span(self, component: str, name: str, **args: Any) -> int:
        """Open a span on ``component``'s track; returns its handle."""
        span_id = self._next_id
        self._next_id += 1
        self._open[span_id] = _OpenSpan(
            component, name, self._clock(),
            self._component_cycles(component), dict(args))
        return span_id

    def end_span(self, span_id: int,
                 self_cycles: Optional[float] = None, **args: Any) -> None:
        """Close a span; ``self_cycles`` overrides the accounting delta."""
        open_span = self._open.pop(span_id, None)
        if open_span is None:
            return
        end = self._clock()
        if self_cycles is None:
            self_cycles = (self._component_cycles(open_span.component)
                           - open_span.begin_cycles)
        if args:
            open_span.args.update(args)
        self.spans.append(SpanRecord(
            open_span.component, open_span.name, open_span.begin, end,
            self_cycles, open_span.args))

    @contextmanager
    def span(self, component: str, name: str, **args: Any):
        """Context manager form of :meth:`begin_span`/:meth:`end_span`."""
        span_id = self.begin_span(component, name, **args)
        try:
            yield span_id
        finally:
            self.end_span(span_id)

    # -- instants, counters, gauges, histograms ----------------------------------

    def instant(self, component: str, name: str, **args: Any) -> None:
        """Record a point event on ``component``'s track."""
        self.instants.append(
            InstantRecord(component, name, self._clock(), dict(args)))

    def count(self, name: str, delta: float = 1.0) -> None:
        """Bump a monotonic counter and record its timeline sample."""
        value = self.counters.get(name, 0.0) + delta
        self.counters[name] = value
        self.counter_series.setdefault(name, []).append(
            (self._clock(), value))

    def gauge(self, name: str, value: float) -> None:
        """Sample an absolute (non-monotonic) value over time."""
        self.gauges[name] = value
        self.counter_series.setdefault(name, []).append(
            (self._clock(), value))

    def observe(self, name: str, value: float) -> None:
        """Feed one observation into the named histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = HistogramData()
        histogram.observe(value)

    # -- export ------------------------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze the recorder into a picklable snapshot.

        Any still-open spans are closed at the current clock (defensive;
        balanced instrumentation never leaves spans open).
        """
        for span_id in sorted(self._open):
            self.end_span(span_id)
        return TelemetrySnapshot(
            label=self.label,
            total_cycles=self._clock(),
            spans=list(self.spans),
            instants=list(self.instants),
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            counter_series={name: list(points) for name, points
                            in self.counter_series.items()},
            histograms={name: HistogramData(h.count, h.total, h.minimum,
                                            h.maximum, dict(h.buckets))
                        for name, h in self.histograms.items()})


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return 0

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """A do-nothing recorder: every instrumentation point is a no-op.

    This is the zero-overhead contract: instrumented code paths call
    through this singleton by default, charge no simulated cycles, and
    allocate nothing, so un-traced runs are cycle-identical to traced
    ones (and to pre-telemetry builds).
    """

    enabled = False

    def bind(self, clock, component_cycles=None) -> None:
        pass

    def begin_span(self, component: str, name: str, **args: Any) -> int:
        return 0

    def end_span(self, span_id: int,
                 self_cycles: Optional[float] = None, **args: Any) -> None:
        pass

    def span(self, component: str, name: str, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, component: str, name: str, **args: Any) -> None:
        pass

    def count(self, name: str, delta: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot(label="null", total_cycles=0.0)


#: Shared no-op recorder used as the default at every instrumentation point.
NULL_RECORDER = NullRecorder()
