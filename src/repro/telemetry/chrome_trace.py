"""Export telemetry snapshots to the Chrome trace-event JSON format.

The output loads directly into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: one process per run, one named thread (track) per
AOS component from :data:`repro.aos.cost_accounting.ALL_COMPONENTS`,
complete events (``ph: "X"``) for spans, instant events (``ph: "i"``)
for invalidations/OSR/rule changes, and counter events (``ph: "C"``)
for the code-cache and controller time series.

Simulated cycles are emitted one-to-one as trace microseconds (``ts`` /
``dur``); the absolute unit is meaningless for a simulation, but ratios
and the timeline shape are faithful.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

from repro.aos.cost_accounting import ALL_COMPONENTS
from repro.telemetry.recorder import TelemetrySnapshot

#: ``tid`` reserved for counter events (Perfetto renders them per-process).
COUNTER_TID = 0


def track_order(snapshot: TelemetrySnapshot) -> List[str]:
    """Component tracks, cost-accounting components first, extras after."""
    seen = set(ALL_COMPONENTS)
    extras = []
    for record in list(snapshot.spans) + list(snapshot.instants):
        if record.component not in seen:
            seen.add(record.component)
            extras.append(record.component)
    return list(ALL_COMPONENTS) + extras


def trace_events(snapshot: TelemetrySnapshot, pid: int = 1) -> List[dict]:
    """Flatten one snapshot into a list of trace-event dicts."""
    tids = {component: index + 1
            for index, component in enumerate(track_order(snapshot))}
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "ts": 0, "pid": pid,
        "tid": COUNTER_TID, "args": {"name": snapshot.label},
    }]
    for component, tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "ts": 0,
                       "pid": pid, "tid": tid,
                       "args": {"name": component}})
        events.append({"name": "thread_sort_index", "ph": "M", "ts": 0,
                       "pid": pid, "tid": tid,
                       "args": {"sort_index": tid}})

    body: List[dict] = []
    for span in snapshot.spans:
        args: Dict[str, Any] = dict(span.args)
        args["self_cycles"] = span.self_cycles
        body.append({
            "name": span.name, "cat": span.component, "ph": "X",
            "ts": span.begin, "dur": span.end - span.begin,
            "pid": pid, "tid": tids[span.component], "args": args,
        })
    for instant in snapshot.instants:
        body.append({
            "name": instant.name, "cat": instant.component, "ph": "i",
            "s": "t", "ts": instant.clock, "pid": pid,
            "tid": tids[instant.component], "args": dict(instant.args),
        })
    for name, points in sorted(snapshot.counter_series.items()):
        for clock, value in points:
            body.append({
                "name": name, "ph": "C", "ts": clock, "pid": pid,
                "tid": COUNTER_TID, "args": {"value": value},
            })
    # Stable-sort the payload per track so ``ts`` is monotone within every
    # (pid, tid) pair, which some viewers require for complete events.
    body.sort(key=lambda event: (event["tid"], event["ts"]))
    return events + body


def to_chrome_trace(snapshot: TelemetrySnapshot, pid: int = 1,
                    annotations: Optional[Mapping[str, Any]] = None) -> dict:
    """Build the top-level Chrome trace object for one snapshot.

    ``annotations`` are extra ``otherData`` entries -- the causal
    profiler stamps its experiment parameters (component, virtual-
    speedup factor, seed) here so a trace is self-describing.  They
    cannot shadow the built-in keys.
    """
    other_data: Dict[str, Any] = {
        "label": snapshot.label,
        "total_cycles": snapshot.total_cycles,
        "clock_unit": "simulated cycles (rendered as microseconds)",
    }
    if annotations:
        for key in sorted(annotations):
            other_data.setdefault(str(key), annotations[key])
    return {
        "traceEvents": trace_events(snapshot, pid=pid),
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }


def write_chrome_trace(path: str, snapshot: TelemetrySnapshot,
                       pid: int = 1,
                       annotations: Optional[Mapping[str, Any]] = None) -> int:
    """Write one snapshot's Chrome trace JSON; returns the event count."""
    trace = to_chrome_trace(snapshot, pid=pid, annotations=annotations)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])
