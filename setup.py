"""Setuptools shim so `pip install -e .` works without the wheel package.

The real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path in offline environments.
"""
from setuptools import setup

setup()
