#!/usr/bin/env python
"""Dynamic class loading vs CHA devirtualization (and pre-existence).

The inline oracle devirtualizes virtual calls whose selector has a single
dispatch target *among the classes loaded so far* (paper Section 3.1's
"class analysis + class hierarchy analysis + pre-existence" pipeline).
That binding can be broken by the class loader: this example runs a
program that only instantiates ``Circle`` for the first 60% of the run,
letting the optimizer inline ``Circle.area`` into the hot ``measure``
method without any guard.  When ``Square`` first loads:

* the recorded CHA dependency fires and the devirtualized code is
  invalidated (future invocations fall back to baseline);
* in-flight activations safely finish on the old code -- their receivers
  pre-exist the new class, which is exactly what pre-existence licenses;
* the adaptive system recompiles ``measure``, now using profile-directed
  guarded inlining for the two-target dispatch.

Run with::

    python examples/class_loading.py
"""

from repro import AdaptiveRuntime, make_policy
from repro.workloads import lazy_loading


def main() -> None:
    built = lazy_loading.build(iterations=30_000)
    runtime = AdaptiveRuntime(built.program, make_policy("cins", 1))
    result = runtime.run()

    print(f"run: {built.iterations} iterations; Square first instantiated "
          f"at iteration {built.load_at}")
    print(f"classes loaded during the run: "
          f"{runtime.hierarchy.loaded_count}")
    print(f"invalidations: {result.invalidations}")
    for root_id, selector, clock in runtime.database.invalidations:
        print(f"  {root_id}: CHA binding for {selector!r} broken "
              f"at cycle {clock:,.0f}")

    invalidated = {root for root, _sel, _clk
                   in runtime.database.invalidations}
    for method_id in sorted(invalidated):
        print(f"\ncompilation history of {method_id}:")
        for event in runtime.database.compilations_of(method_id):
            print(f"  v{event.version} at cycle {event.clock:,.0f} "
                  f"({event.reason}, {event.inlined_bytecodes} bc)")
        compiled = runtime.code_cache.opt_version(method_id)
        if compiled is None:
            print("  (currently running at the baseline tier)")
            continue
        for node in compiled.root.walk():
            decision = node.decisions.get(built.area_site)
            if decision is not None:
                kind = "guarded" if decision.kind == "guarded" else "direct"
                print(f"  final code: area dispatch {kind}-inlines "
                      f"{decision.targets()} (inside {node.method.id})")
                break
        else:
            print("  final code: area dispatch left as a virtual call")
    print(f"\nguard misses paid during the transition: "
          f"{result.guard_misses}")


if __name__ == "__main__":
    main()
