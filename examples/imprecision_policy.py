#!/usr/bin/env python
"""The imprecision-driven adaptive policy (the paper's future-work scheme).

Section 4.3's final policy starts everything at context-insensitive edge
profiling and adds context only where the profile is demonstrably
imprecise: polymorphic sites without a dominant target get their sampling
depth bumped until the added context resolves the imprecision or the site
is declared inherently polymorphic.  The paper describes but does not
implement it; this reproduction does (experiment E10).

The example runs a benchmark whose polymorphic sites are context-
correlated, shows which sites the policy deepened, and compares the
outcome against plain edge profiling and fixed depth-3 profiling.

Run with::

    python examples/imprecision_policy.py [benchmark]
"""

import sys

from repro import AdaptiveRuntime, ImprecisionDriven, make_policy
from repro.metrics.report import format_table
from repro.workloads.spec import BENCHMARK_ORDER, build_benchmark


def run(benchmark, policy):
    generated = build_benchmark(benchmark)
    runtime = AdaptiveRuntime(generated.program, policy)
    return runtime, runtime.run()


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "db"
    if benchmark not in BENCHMARK_ORDER:
        raise SystemExit(f"unknown benchmark {benchmark!r}")

    _rt_cins, cins = run(benchmark, make_policy("cins", 1))
    _rt_fixed, fixed = run(benchmark, make_policy("fixed", 3))
    policy = ImprecisionDriven(max_depth=3)
    runtime, adaptive = run(benchmark, policy)

    rows = []
    for label, result in (("cins", cins), ("fixed(3)", fixed),
                          ("imprecision(3)", adaptive)):
        speedup = 100 * (cins.total_cycles / result.total_cycles - 1)
        code = 100 * (result.live_opt_code_bytes
                      / cins.live_opt_code_bytes - 1)
        rows.append([label, f"{speedup:+.2f}%", f"{code:+.1f}%",
                     f"{result.mean_trace_depth:.2f}",
                     str(result.guard_misses)])
    print(f"benchmark={benchmark}")
    print(format_table(
        ["policy", "speedup", "code delta", "mean trace depth",
         "guard misses"], rows))

    print()
    deepened = policy.deepened_sites()
    print(f"sites the imprecision policy deepened: {len(deepened)}")
    for (caller, site), depth in sorted(deepened.items()):
        print(f"  {caller} @ site {site}: depth {depth}")
    print(f"sites declared inherently polymorphic: "
          f"{policy.abandoned_sites()}")
    print(f"observation epochs: {policy.epochs}")
    print()
    print("The adaptive policy pays for context only at imprecise sites,")
    print("so its mean trace depth sits well below the fixed policy's while")
    print("still disambiguating the polymorphic call sites that matter.")


if __name__ == "__main__":
    main()
