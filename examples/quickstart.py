#!/usr/bin/env python
"""Quickstart: run the paper's motivating example end to end.

Builds the Figure 1 ``HashMapTest`` program, runs it once under Jikes
RVM's classic context-insensitive profile-directed inlining and once under
depth-2 context-sensitive profiling, and shows how the two systems see the
``key.hashCode()`` call site inside ``HashMap.get``:

* the edge profile reports a useless 50/50 target split (Figure 2b), so
  the inliner guards in *both* ``hashCode`` implementations everywhere;
* the depth-2 trace profile separates the two ``runTest`` call sites
  (Figure 2c), so each inlined copy of ``get`` receives exactly the right
  target -- less code, fewer guard tests.

Run with::

    python examples/quickstart.py
"""

from repro import AdaptiveRuntime, make_policy
from repro.profiles.trace import format_trace
from repro.workloads.hashmap_example import build


def run(policy_label: str, max_depth: int):
    built = build(iterations=4000)
    runtime = AdaptiveRuntime(built.program, make_policy(policy_label,
                                                         max_depth))
    result = runtime.run()
    return built, runtime, result


def show_profile(title, runtime, built, min_depth):
    print(f"  {title}")
    site = built.sites.hash_site
    for key, weight in sorted(runtime.state.dcg.items(),
                              key=lambda kv: -kv[1]):
        if key.context[0] != ("HashMap.get", site):
            continue
        if key.depth < min_depth:
            continue
        print(f"    {format_trace(key):55s} weight {weight:7.1f}")


def main() -> None:
    print("== Context-insensitive (cins) run ==")
    built, cins_runtime, cins = run("cins", 1)
    show_profile("edge profile at HashMap.get -> hashCode:",
                 cins_runtime, built, min_depth=1)
    print(f"  optimized code: {cins.live_opt_code_bytes} bytes, "
          f"guard tests executed: {cins.guard_tests}")

    print()
    print("== Context-sensitive (fixed, max=2) run ==")
    built2, cs_runtime, cs = run("fixed", 2)
    show_profile("trace profile at HashMap.get -> hashCode:",
                 cs_runtime, built2, min_depth=2)
    print(f"  optimized code: {cs.live_opt_code_bytes} bytes, "
          f"guard tests executed: {cs.guard_tests}")

    print()
    code_delta = 100.0 * (cs.live_opt_code_bytes / cins.live_opt_code_bytes
                          - 1.0)
    guard_delta = 100.0 * (cs.guard_tests / max(1, cins.guard_tests) - 1.0)
    speedup = 100.0 * (cins.total_cycles / cs.total_cycles - 1.0)
    print(f"context sensitivity: code space {code_delta:+.1f}%, "
          f"guard tests {guard_delta:+.1f}%, wall-clock {speedup:+.2f}%")


if __name__ == "__main__":
    main()
