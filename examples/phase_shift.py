#!/usr/bin/env python
"""The decay organizer adapting profile data across a program phase shift.

The paper's decay organizer (Section 3.2) periodically decays the dynamic
call graph so hot-edge detection tracks *recent* behaviour.  This example
builds a two-phase program: for the first half of the run a polymorphic
call site always receives class ``A`` instances, then it switches to
class ``B``.  With decay, the old phase's profile weight fades, the
``B``-target trace crosses the hot threshold, and the missing-edge
organizer gets the site re-optimized for the new phase.

The example prints the rule set and the installed inline decisions before
and after the shift, plus the guard-miss count (old guards missing on
new-phase receivers until the recompile lands).

Run with::

    python examples/phase_shift.py
"""

from repro import AdaptiveRuntime, make_policy
from repro.workloads import phase_shift

ITERATIONS = 40000


def describe_decisions(runtime, step_site):
    compiled = runtime.code_cache.opt_version("App.work")
    if compiled is None:
        return "App.work not optimized"
    decision = compiled.root.decisions.get(step_site)
    if decision is None:
        return f"v{compiled.version}: step site not inlined (plain dispatch)"
    targets = ", ".join(decision.targets())
    return f"v{compiled.version}: guarded inline of [{targets}]"


def main() -> None:
    built = phase_shift.build(ITERATIONS)
    program, step_site = built.program, built.step_site
    runtime = AdaptiveRuntime(program, make_policy("cins", 1))
    result = runtime.run()

    print(f"two-phase run: {ITERATIONS} iterations, receiver class "
          f"switches A->B at the midpoint")
    print(f"final installed code for App.work: "
          f"{describe_decisions(runtime, step_site)}")
    print(f"recompilations of App.work: "
          f"{runtime.database.version_count('App.work')}")
    print(f"guard misses during the run: {result.guard_misses} "
          f"(paid while phase-1 guards were stale)")
    print(f"decay organizer ran {runtime.decay_organizer.runs} times")

    history = runtime.database.compilations_of("App.work")
    for event in history:
        print(f"  compiled v{event.version} at cycle {event.clock:,.0f} "
              f"({event.reason})")

    final_rules = [r for r in runtime.state.rules
                   if r.context[0] == ("App.work", step_site)]
    print("final rules at the step site:")
    for rule in final_rules:
        print(f"  {rule.callee}  share={rule.share:.3f}")


if __name__ == "__main__":
    main()
