#!/usr/bin/env python
"""Compare every context-sensitivity policy on one benchmark.

Runs a Table-1-calibrated synthetic benchmark (default: ``jess``) under the
context-insensitive baseline and under each of the paper's six policy
families at a chosen maximum depth, then prints the three quantities the
paper's evaluation balances: wall-clock speedup, optimized code space, and
optimizing-compilation time.

Run with::

    python examples/policy_comparison.py [benchmark] [max_depth]
"""

import sys

from repro import AdaptiveRuntime, make_policy
from repro.experiments.config import POLICY_FAMILIES
from repro.metrics.report import format_table
from repro.workloads.spec import BENCHMARK_ORDER, build_benchmark

#: Sampling phases: like the paper's best-of-N runs for a timer-driven
#: (and therefore nondeterministic) adaptive system.
PHASES = (0.0, 0.33, 0.66)


def best_run(benchmark: str, family: str, depth: int):
    best = None
    for phase in PHASES:
        generated = build_benchmark(benchmark)
        runtime = AdaptiveRuntime(generated.program,
                                  make_policy(family, depth),
                                  sample_phase=phase)
        result = runtime.run()
        if best is None or result.total_cycles < best.total_cycles:
            best = result
    return best


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "jess"
    depth = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    if benchmark not in BENCHMARK_ORDER:
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"choose from {', '.join(BENCHMARK_ORDER)}")

    print(f"benchmark={benchmark}, max context depth={depth}, "
          f"best of {len(PHASES)} runs per policy")
    baseline = best_run(benchmark, "cins", 1)
    rows = [["cins (baseline)", f"{baseline.total_cycles / 1e6:.3f}M",
             "--", str(baseline.live_opt_code_bytes), "--",
             str(baseline.opt_compilations), str(baseline.guard_tests)]]

    for family in POLICY_FAMILIES:
        result = best_run(benchmark, family, depth)
        speedup = 100 * (baseline.total_cycles / result.total_cycles - 1)
        code = 100 * (result.live_opt_code_bytes
                      / baseline.live_opt_code_bytes - 1)
        rows.append([
            family,
            f"{result.total_cycles / 1e6:.3f}M",
            f"{speedup:+.2f}%",
            str(result.live_opt_code_bytes),
            f"{code:+.1f}%",
            str(result.opt_compilations),
            str(result.guard_tests),
        ])

    print(format_table(
        ["policy", "cycles", "speedup", "opt code B", "code delta",
         "compiles", "guard tests"],
        rows))


if __name__ == "__main__":
    main()
