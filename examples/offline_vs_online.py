#!/usr/bin/env python
"""Quantify the online penalty: offline vs online profile-directed inlining.

The paper's premise (Section 2) is that an online system must decide with
"only the profile information from the current execution of the program so
far", while offline systems like Vortex post-process a complete training
profile.  This example measures what that costs on one benchmark:

1. a training run collects the complete, undecayed trace profile;
2. inlining rules are derived from it once, offline;
3. a production run executes with those rules pinned from the start.

The pinned run needs fewer compilations (no missing-edge churn, no
immature-profile recompiles) and usually finishes a little faster -- the
"perfect foresight" bound the online policies are chasing.

Run with::

    python examples/offline_vs_online.py [benchmark] [family] [depth]
"""

import sys

from repro.experiments.offline import compare_online_offline
from repro.workloads.spec import BENCHMARK_ORDER


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "jess"
    family = sys.argv[2] if len(sys.argv) > 2 else "fixed"
    depth = int(sys.argv[3]) if len(sys.argv) > 3 else 3
    if benchmark not in BENCHMARK_ORDER:
        raise SystemExit(f"unknown benchmark {benchmark!r}")

    comparison, rendered = compare_online_offline(benchmark, family, depth)
    print(rendered)
    print()
    print(f"The offline bound used {comparison.offline_rules} rules derived "
          f"from the full training profile.")
    print("Everything separating the two rows is the cost of deciding")
    print("online: compiling before the profile matured, re-compiling as")
    print("rules surfaced, and executing at the baseline tier meanwhile.")


if __name__ == "__main__":
    main()
