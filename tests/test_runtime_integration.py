"""Integration tests: the full adaptive runtime on real workloads.

These verify the paper's end-to-end mechanisms: sampling drives
recompilation, the HashMap example's context-sensitive inlining chooses
the right targets, and the accounting invariants hold across a whole run.
"""

import pytest

from repro.aos.cost_accounting import ALL_COMPONENTS, APP
from repro.aos.runtime import AdaptiveRuntime
from repro.jvm.costs import CostModel
from repro.policies import make_policy
from repro.workloads.hashmap_example import build as build_hashmap


@pytest.fixture(scope="module")
def cins_run():
    built = build_hashmap(iterations=4000)
    runtime = AdaptiveRuntime(built.program, make_policy("cins", 1))
    result = runtime.run()
    return built, runtime, result


@pytest.fixture(scope="module")
def fixed2_run():
    built = build_hashmap(iterations=4000)
    runtime = AdaptiveRuntime(built.program, make_policy("fixed", 2))
    result = runtime.run()
    return built, runtime, result


class TestAdaptationHappens:
    def test_samples_taken(self, cins_run):
        _b, _rt, result = cins_run
        assert result.samples_taken > 100

    def test_hot_methods_recompiled(self, cins_run):
        _b, runtime, result = cins_run
        assert result.opt_compilations > 0
        hot_ids = {cm.method.id for cm in runtime.code_cache.opt_methods()}
        # The hot loop bodies must be optimized.
        assert "HashMap.get" in hot_ids or "HashMapTest.runTest" in hot_ids

    def test_rules_derived(self, cins_run):
        _b, _rt, result = cins_run
        assert result.rule_count > 0

    def test_component_accounting_sums_to_total(self, cins_run):
        _b, _rt, result = cins_run
        total = sum(result.component_cycles[c] for c in ALL_COMPONENTS)
        assert total == pytest.approx(result.total_cycles)

    def test_app_dominates(self, cins_run):
        _b, _rt, result = cins_run
        assert result.component_cycles[APP] / result.total_cycles > 0.8

    def test_aos_fraction_small(self, cins_run):
        # Figure 6: the AOS (listeners+organizers+controller+compilation)
        # stays a small fraction of execution.
        _b, _rt, result = cins_run
        assert result.aos_fraction() < 0.15


class TestHashMapContextSensitivity:
    def test_cins_profile_shows_5050_split(self, cins_run):
        built, runtime, _result = cins_run
        dist = runtime.state.dcg.site_target_distribution(
            "HashMap.get", built.sites.hash_site)
        assert set(dist) == {"MyKey.hashCode", "Object.hashCode"}
        total = sum(dist.values())
        for weight in dist.values():
            assert 0.3 < weight / total < 0.7  # roughly 50/50

    def test_trace_profile_separates_contexts(self, fixed2_run):
        built, runtime, _result = fixed2_run
        per_context = {}
        for key, weight in runtime.state.dcg.items():
            if key.depth < 2:
                continue
            if key.context[0] != ("HashMap.get", built.sites.hash_site):
                continue
            per_context.setdefault(key.context[1], {}).setdefault(
                key.callee, 0.0)
            per_context[key.context[1]][key.callee] += weight
        # Figure 2c: each runTest call site sees exactly one target.
        assert len(per_context) == 2
        for bucket in per_context.values():
            assert len(bucket) == 1

    def test_context_sensitive_code_not_larger(self, cins_run, fixed2_run):
        _b1, _rt1, cins = cins_run
        _b2, _rt2, fixed2 = fixed2_run
        assert fixed2.live_opt_code_bytes <= cins.live_opt_code_bytes * 1.05

    def test_context_sensitive_fewer_guard_tests(self, cins_run, fixed2_run):
        _b1, _rt1, cins = cins_run
        _b2, _rt2, fixed2 = fixed2_run
        assert fixed2.guard_tests < cins.guard_tests

    def test_right_targets_inlined_per_context(self, fixed2_run):
        built, runtime, _result = fixed2_run
        compiled = runtime.code_cache.opt_version("HashMapTest.runTest")
        if compiled is None:
            pytest.skip("runTest not independently optimized in this run")
        # Inside runTest's inlined copies of get, the hashCode site must
        # inline exactly the context-correct target.
        for node in compiled.root.walk():
            decision = node.decisions.get(built.sites.hash_site)
            if decision is None:
                continue
            assert len(decision.options) == 1

    def test_mean_trace_depth_matches_policy(self, cins_run, fixed2_run):
        _b1, _rt1, cins = cins_run
        _b2, _rt2, fixed2 = fixed2_run
        assert cins.mean_trace_depth == pytest.approx(1.0)
        assert fixed2.mean_trace_depth > 1.2


class TestRuntimeConfigValidation:
    def test_bad_sample_phase_rejected(self):
        built = build_hashmap(iterations=10)
        with pytest.raises(ValueError):
            AdaptiveRuntime(built.program, make_policy("cins", 1),
                            sample_phase=1.5)

    def test_custom_cost_model(self):
        built = build_hashmap(iterations=200)
        costs = CostModel().replace(sample_interval=1_000)
        runtime = AdaptiveRuntime(built.program, make_policy("cins", 1),
                                  costs=costs)
        result = runtime.run()
        assert result.samples_taken > 0

    def test_return_value_propagates(self):
        built = build_hashmap(iterations=10)
        runtime = AdaptiveRuntime(built.program, make_policy("cins", 1))
        result = runtime.run()
        assert result.return_value == 0
