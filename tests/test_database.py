"""Unit tests for the AOS database."""

from repro.aos.database import AOSDatabase, CompilationEvent


class TestRefusals:
    def test_record_and_query(self):
        db = AOSDatabase()
        db.record_refusal("C.m", 3, "C.big", "large")
        assert db.was_refused("C.m", 3, "C.big")
        assert not db.was_refused("C.m", 4, "C.big")
        assert not db.was_refused("C.m", 3, "C.other")
        assert db.refusal_reason("C.m", 3, "C.big") == "large"
        assert db.refusal_reason("C.m", 9, "C.big") is None

    def test_refusals_idempotent(self):
        db = AOSDatabase()
        db.record_refusal("C.m", 3, "C.big", "large")
        db.record_refusal("C.m", 3, "C.big", "space")
        assert db.refusal_count == 1
        # Latest reason wins.
        assert db.refusal_reason("C.m", 3, "C.big") == "space"


class TestCompilationLog:
    def _event(self, method_id="C.m", version=1):
        return CompilationEvent(method_id=method_id, version=version,
                                inlined_bytecodes=100, code_bytes=600,
                                compile_cycles=1400.0, clock=5000.0,
                                reason="hot")

    def test_log_and_filter(self):
        db = AOSDatabase()
        db.log_compilation(self._event("C.a", 1))
        db.log_compilation(self._event("C.a", 2))
        db.log_compilation(self._event("C.b", 1))
        assert len(db.compilations) == 3
        assert len(db.compilations_of("C.a")) == 2
        assert db.version_count("C.a") == 2
        assert db.version_count("C.zzz") == 0
