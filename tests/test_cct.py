"""Unit tests for the calling-context tree (Ammons et al. representation)."""

import pytest

from repro.profiles.cct import CallingContextTree
from repro.profiles.trace import TraceKey


def key(callee, *pairs):
    return TraceKey(callee, tuple(pairs))


@pytest.fixture
def cct():
    return CallingContextTree()


class TestInsertion:
    def test_single_trace(self, cct):
        node = cct.add_trace(key("D", ("C", 1)))
        assert node.method == "D"
        assert node.weight == 1.0
        assert cct.samples == 1

    def test_repeated_trace_accumulates(self, cct):
        cct.add_trace(key("D", ("C", 1)), 2.0)
        node = cct.add_trace(key("D", ("C", 1)), 3.0)
        assert node.weight == 5.0
        assert cct.node_count() == 2  # C and D

    def test_shared_prefix_shares_nodes(self, cct):
        cct.add_trace(key("D", ("C", 1), ("A", 2)))
        cct.add_trace(key("E", ("C", 3), ("A", 2)))
        # A shared; C appears twice? No: A -> C via site1... site 2 is A->C's
        # entry in both traces, so A and the two C entries (site 1 vs 3
        # belong to C's children): A, C, D, C', E -- C is shared only when
        # entered through the same site.
        methods = [n.method for n in cct.walk()]
        assert methods.count("A") == 1

    def test_distinct_sites_distinct_children(self, cct):
        cct.add_trace(key("D", ("C", 1)))
        cct.add_trace(key("D", ("C", 2)))
        # Two different call sites in C produce two D nodes.
        d_nodes = [n for n in cct.walk() if n.method == "D"]
        assert len(d_nodes) == 2


class TestPaths:
    def test_path_reconstruction(self, cct):
        node = cct.add_trace(key("D", ("C", 1), ("B", 2), ("A", 3)))
        chain = node.path()
        assert [m for m, _s in chain] == ["A", "B", "C", "D"]

    def test_hot_contexts(self, cct):
        cct.add_trace(key("D", ("C", 1)), 90.0)
        cct.add_trace(key("E", ("C", 2)), 10.0)
        hot = cct.hot_contexts(0.5)
        assert len(hot) == 1
        assert hot[0][0].method == "D"

    def test_hot_contexts_empty_tree(self, cct):
        assert cct.hot_contexts(0.015) == []


class TestRoundTrip:
    def test_projection_inverts_insertion(self, cct):
        keys = [key("D", ("C", 1), ("B", 2)),
                key("D", ("C", 1)),
                key("E", ("C", 2), ("B", 2), ("A", 1))]
        for index, k in enumerate(keys):
            cct.add_trace(k, float(index + 1))
        back = cct.to_trace_weights()
        assert back == {keys[0]: 1.0, keys[1]: 2.0, keys[2]: 3.0}

    def test_total_weight(self, cct):
        cct.add_trace(key("D", ("C", 1)), 2.5)
        cct.add_trace(key("E", ("C", 2)), 2.5)
        assert cct.total_weight() == pytest.approx(5.0)
