"""Tests for the experiment harness: runner, sweep serialization, figures.

The sweeps here run at tiny scale -- the point is plumbing correctness
(keys, baselines, serialization, rendering), not paper-shaped numbers.
"""

import pytest

from repro.experiments.config import (DEFAULT_PHASES, DEPTHS,
                                      POLICY_FAMILIES, SweepConfig)
from repro.experiments.figures import (FIGURE6_COMPONENTS, figure2, figure4,
                                       figure5, figure6, headline, table1,
                                       termination_stats)
from repro.aos.listeners import TerminationStatsProbe
from repro.experiments.runner import (SweepResults, _cell_worker,
                                      load_or_run_sweep, run_cell,
                                      run_single, run_sweep)
from repro.jvm.costs import DEFAULT_COSTS
from repro.workloads.spec import BENCHMARK_ORDER

TINY = SweepConfig(benchmarks=("jess", "db"), families=("fixed", "hybrid1"),
                   depths=(2,), phases=(0.0,), scale=0.05, jobs=1)


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_sweep(TINY)


class TestConfig:
    def test_configurations_include_baseline_first_per_benchmark(self):
        cells = TINY.configurations()
        assert cells[0] == ("jess", "cins", 1)
        assert ("jess", "fixed", 2) in cells
        assert ("db", "hybrid1", 2) in cells

    def test_default_families_match_paper(self):
        assert POLICY_FAMILIES == ("fixed", "paramLess", "class", "large",
                                   "hybrid1", "hybrid2")
        assert DEPTHS == (2, 3, 4, 5)
        assert len(DEFAULT_PHASES) >= 2


class TestRunner:
    def test_run_single_returns_result(self):
        result = run_single("jess", "cins", 1, scale=0.05)
        assert result.total_cycles > 0
        assert result.program_name == "jess"

    def test_run_cell_takes_best_of_phases(self):
        best = run_cell("jess", "cins", 1, phases=(0.0, 0.5), scale=0.05)
        single0 = run_single("jess", "cins", 1, phase=0.0, scale=0.05)
        single5 = run_single("jess", "cins", 1, phase=0.5, scale=0.05)
        assert best.total_cycles == min(single0.total_cycles,
                                        single5.total_cycles)

    def test_sweep_covers_all_cells(self, tiny_sweep):
        assert set(tiny_sweep.cells) == set(TINY.configurations())

    def test_relative_metrics(self, tiny_sweep):
        # Baseline relative to itself is exactly zero.
        assert tiny_sweep.speedup_percent("jess", "cins", 1) == 0.0
        assert tiny_sweep.code_size_percent("jess", "cins", 1) == 0.0
        assert tiny_sweep.compile_time_percent("jess", "cins", 1) == 0.0
        # Non-baseline cells produce finite numbers.
        value = tiny_sweep.speedup_percent("db", "fixed", 2)
        assert -100.0 < value < 100.0


class TestSerialization:
    def test_round_trip(self, tiny_sweep):
        text = tiny_sweep.to_json()
        loaded = SweepResults.from_json(text)
        assert loaded.config == tiny_sweep.config
        assert set(loaded.cells) == set(tiny_sweep.cells)
        for key in tiny_sweep.cells:
            assert loaded.cells[key].total_cycles == \
                tiny_sweep.cells[key].total_cycles
            assert loaded.cells[key].depth_histogram == \
                tiny_sweep.cells[key].depth_histogram

    def test_load_or_run_uses_cache(self, tiny_sweep, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(tiny_sweep.to_json())
        loaded = load_or_run_sweep(str(path), TINY)
        assert set(loaded.cells) == set(tiny_sweep.cells)

    def test_load_or_run_regenerates_on_mismatch(self, tiny_sweep, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(tiny_sweep.to_json())
        other = SweepConfig(benchmarks=("db",), families=("fixed",),
                            depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
        regenerated = load_or_run_sweep(str(path), other)
        assert regenerated.config == other

    def test_corrupt_cache_regenerated_with_warning(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{not json!")
        small = SweepConfig(benchmarks=("db",), families=("fixed",),
                            depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
        with pytest.warns(RuntimeWarning, match="regenerating"):
            result = load_or_run_sweep(str(path), small)
        assert result.config == small

    def test_truncated_cache_regenerated_with_warning(self, tiny_sweep,
                                                      tmp_path):
        # A partially written cache (e.g. a killed sweep) is valid-looking
        # JSON syntax up to the cut, but unreadable; the warning must name
        # the path and the failure so the silent re-run is explicable.
        path = tmp_path / "sweep.json"
        path.write_text(tiny_sweep.to_json()[:200])
        small = SweepConfig(benchmarks=("db",), families=("fixed",),
                            depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
        with pytest.warns(RuntimeWarning) as captured:
            result = load_or_run_sweep(str(path), small)
        assert result.config == small
        message = str(captured[0].message)
        assert str(path) in message
        assert "unreadable" in message
        # The fresh sweep replaced the truncated file on disk.
        assert SweepResults.from_json(path.read_text()).config == small


class TestProbeThreading:
    def test_run_cell_threads_probe(self):
        probe = TerminationStatsProbe(DEFAULT_COSTS)
        run_cell("jess", "fixed", 2, phases=(0.0,), scale=0.05, probe=probe)
        assert probe.samples > 0
        assert sum(probe.first_parameterless.values()) == probe.samples

    def test_run_cell_probe_sees_every_phase(self):
        # The probe accumulates across the best-of-phases runs: two phases
        # must record (strictly) more samples than one.
        one = TerminationStatsProbe(DEFAULT_COSTS)
        run_cell("jess", "fixed", 2, phases=(0.0,), scale=0.05, probe=one)
        two = TerminationStatsProbe(DEFAULT_COSTS)
        run_cell("jess", "fixed", 2, phases=(0.0, 0.5), scale=0.05,
                 probe=two)
        assert two.samples > one.samples

    def test_cell_worker_threads_probe(self):
        probe = TerminationStatsProbe(DEFAULT_COSTS)
        key, result, snapshot = _cell_worker(
            ("jess", "fixed", 2, (0.0,), 0.05, probe, False))
        assert key == ("jess", "fixed", 2)
        assert result.total_cycles > 0
        assert snapshot is None
        assert probe.samples > 0


class TestFigures:
    def test_figure4_structure(self, tiny_sweep):
        panels, rendered = figure4(tiny_sweep)
        assert set(panels) == {"fixed", "hybrid1"}
        assert "harMean" in panels["fixed"]
        assert "jess" in rendered and "db" in rendered

    def test_figure5_structure(self, tiny_sweep):
        panels, rendered = figure5(tiny_sweep)
        assert set(panels) == {"fixed", "hybrid1"}
        assert "code space" in rendered

    def test_figure6_structure(self, tiny_sweep):
        series, rendered = figure6(tiny_sweep)
        assert "cins" in series
        assert "fixed-2" in series
        for fractions in series.values():
            for component in FIGURE6_COMPONENTS:
                assert 0.0 <= fractions[component] < 0.5
        assert "AOS component" in rendered

    def test_figure2_shows_context_split(self):
        data, rendered = figure2(iterations=3000)
        edge_split = data["edge"]["global"]
        assert set(edge_split) == {"MyKey.hashCode", "Object.hashCode"}
        per_context = data["trace"]["per_context"]
        assert len(per_context) == 2
        for bucket in per_context.values():
            assert max(bucket.values()) > 0.99  # 100% per context
        assert "Figure 2" in rendered

    def test_table1_matches_spec(self):
        rows, rendered = table1(scale=0.05)
        assert [r["benchmark"] for r in rows] == list(BENCHMARK_ORDER)
        from repro.workloads.spec import TABLE1
        for row in rows:
            classes, methods, _bc = TABLE1[row["benchmark"]]
            assert row["classes"] == classes
            assert row["methods"] == methods
        assert "Table 1" in rendered

    def test_termination_stats(self):
        stats, rendered = termination_stats(scale=0.05)
        assert set(stats) == set(BENCHMARK_ORDER)
        for entry in stats.values():
            assert 0.0 <= entry["immediately_parameterless"] <= 1.0
            assert entry["parameterless_within_5"] >= \
                entry["immediately_parameterless"]
        assert "termination" in rendered

    def test_headline(self, tiny_sweep):
        data, rendered = headline(tiny_sweep)
        assert data["min_speedup_percent"] <= data["max_speedup_percent"]
        assert "Headline" in rendered
