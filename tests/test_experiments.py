"""Tests for the experiment harness: runner, sweep serialization, figures.

The sweeps here run at tiny scale -- the point is plumbing correctness
(keys, baselines, serialization, rendering), not paper-shaped numbers.
"""

import json
import os

import pytest

from repro.experiments import runner
from repro.experiments.cell_cache import CellCache, cell_cache_root
from repro.experiments.config import (DEFAULT_PHASES, DEPTHS,
                                      POLICY_FAMILIES, SweepConfig)
from repro.experiments.figures import (FIGURE6_COMPONENTS, figure2, figure4,
                                       figure5, figure6, headline, table1,
                                       termination_stats)
from repro.aos.listeners import TerminationStatsProbe
from repro.experiments.runner import (CellFailure, SweepResults,
                                      _cell_worker, load_or_run_sweep,
                                      run_cell, run_single, run_sweep)
from repro.jvm.costs import DEFAULT_COSTS
from repro.jvm.errors import ExecutionError
from repro.workloads.spec import BENCHMARK_ORDER

TINY = SweepConfig(benchmarks=("jess", "db"), families=("fixed", "hybrid1"),
                   depths=(2,), phases=(0.0,), scale=0.05, jobs=1)


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_sweep(TINY)


class TestConfig:
    def test_configurations_include_baseline_first_per_benchmark(self):
        cells = TINY.configurations()
        assert cells[0] == ("jess", "cins", 1)
        assert ("jess", "fixed", 2) in cells
        assert ("db", "hybrid1", 2) in cells

    def test_default_families_match_paper(self):
        assert POLICY_FAMILIES == ("fixed", "paramLess", "class", "large",
                                   "hybrid1", "hybrid2")
        assert DEPTHS == (2, 3, 4, 5)
        assert len(DEFAULT_PHASES) >= 2


class TestRunner:
    def test_run_single_returns_result(self):
        result = run_single("jess", "cins", 1, scale=0.05)
        assert result.total_cycles > 0
        assert result.program_name == "jess"

    def test_run_cell_takes_best_of_phases(self):
        best = run_cell("jess", "cins", 1, phases=(0.0, 0.5), scale=0.05)
        single0 = run_single("jess", "cins", 1, phase=0.0, scale=0.05)
        single5 = run_single("jess", "cins", 1, phase=0.5, scale=0.05)
        assert best.total_cycles == min(single0.total_cycles,
                                        single5.total_cycles)

    def test_sweep_covers_all_cells(self, tiny_sweep):
        assert set(tiny_sweep.cells) == set(TINY.configurations())

    def test_relative_metrics(self, tiny_sweep):
        # Baseline relative to itself is exactly zero.
        assert tiny_sweep.speedup_percent("jess", "cins", 1) == 0.0
        assert tiny_sweep.code_size_percent("jess", "cins", 1) == 0.0
        assert tiny_sweep.compile_time_percent("jess", "cins", 1) == 0.0
        # Non-baseline cells produce finite numbers.
        value = tiny_sweep.speedup_percent("db", "fixed", 2)
        assert -100.0 < value < 100.0


class TestSerialization:
    def test_round_trip(self, tiny_sweep):
        text = tiny_sweep.to_json()
        loaded = SweepResults.from_json(text)
        assert loaded.config == tiny_sweep.config
        assert set(loaded.cells) == set(tiny_sweep.cells)
        for key in tiny_sweep.cells:
            assert loaded.cells[key].total_cycles == \
                tiny_sweep.cells[key].total_cycles
            assert loaded.cells[key].depth_histogram == \
                tiny_sweep.cells[key].depth_histogram

    def test_load_or_run_uses_cache(self, tiny_sweep, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(tiny_sweep.to_json())
        loaded = load_or_run_sweep(str(path), TINY)
        assert set(loaded.cells) == set(tiny_sweep.cells)

    def test_load_or_run_regenerates_on_mismatch(self, tiny_sweep, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(tiny_sweep.to_json())
        other = SweepConfig(benchmarks=("db",), families=("fixed",),
                            depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
        regenerated = load_or_run_sweep(str(path), other)
        assert regenerated.config == other

    def test_corrupt_cache_regenerated_with_warning(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{not json!")
        small = SweepConfig(benchmarks=("db",), families=("fixed",),
                            depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
        with pytest.warns(RuntimeWarning, match="regenerating"):
            result = load_or_run_sweep(str(path), small)
        assert result.config == small

    def test_truncated_cache_regenerated_with_warning(self, tiny_sweep,
                                                      tmp_path):
        # A partially written cache (e.g. a killed sweep) is valid-looking
        # JSON syntax up to the cut, but unreadable; the warning must name
        # the path and the failure so the silent re-run is explicable.
        path = tmp_path / "sweep.json"
        path.write_text(tiny_sweep.to_json()[:200])
        small = SweepConfig(benchmarks=("db",), families=("fixed",),
                            depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
        with pytest.warns(RuntimeWarning) as captured:
            result = load_or_run_sweep(str(path), small)
        assert result.config == small
        message = str(captured[0].message)
        assert str(path) in message
        assert "unreadable" in message
        # The fresh sweep replaced the truncated file on disk.
        assert SweepResults.from_json(path.read_text()).config == small


SMALL = SweepConfig(benchmarks=("jess",), families=("fixed",),
                    depths=(2,), phases=(0.0,), scale=0.05, jobs=1)


def _counting_worker(executed):
    """A _cell_worker wrapper recording which cells actually run."""
    real = _cell_worker

    def worker(args):
        executed.append(args[:3])
        return real(args)
    return worker


class TestResumableSweep:
    def test_resume_reruns_exactly_the_missing_cells(self, tmp_path,
                                                     monkeypatch):
        executed = []
        monkeypatch.setattr(runner, "_cell_worker",
                            _counting_worker(executed))
        cache = CellCache(str(tmp_path / "cells"))
        run_sweep(SMALL, cache=cache)
        assert set(executed) == set(SMALL.configurations())

        # A wider sweep sharing phases/scale reuses the overlapping
        # cells and dispatches only the new ones.
        executed.clear()
        full = SweepConfig(benchmarks=("jess", "db"), families=("fixed",),
                           depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
        results = run_sweep(full, cache=cache)
        assert set(executed) == \
            set(full.configurations()) - set(SMALL.configurations())
        assert set(results.cells) == set(full.configurations())

        # A fully cached rerun dispatches nothing at all.
        executed.clear()
        again = run_sweep(full, cache=cache)
        assert executed == []
        assert again.cells == results.cells

    def test_interrupted_sweep_resumes_where_it_died(self, tmp_path,
                                                     monkeypatch):
        path = str(tmp_path / "sweep.json")
        config = SweepConfig(benchmarks=("jess", "db"), families=("fixed",),
                             depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
        real = _cell_worker
        completed_before_kill = 2
        state = {"left": completed_before_kill}

        def dying(args):
            if state["left"] == 0:
                raise KeyboardInterrupt
            state["left"] -= 1
            return real(args)

        monkeypatch.setattr(runner, "_cell_worker", dying)
        with pytest.raises(KeyboardInterrupt):
            load_or_run_sweep(path, config)
        assert not os.path.exists(path)  # monolithic file never written

        executed = []
        monkeypatch.setattr(runner, "_cell_worker",
                            _counting_worker(executed))
        results = load_or_run_sweep(path, config)
        assert len(executed) == \
            len(config.configurations()) - completed_before_kill
        assert set(results.cells) == set(config.configurations())
        assert os.path.exists(path)

    def test_cached_and_fresh_cells_bit_identical(self, tmp_path):
        cache = CellCache(str(tmp_path / "cells"))
        fresh = run_sweep(SMALL, cache=cache)
        cached = run_sweep(SMALL, cache=cache)
        assert cached.cells == fresh.cells
        assert cached.to_json() == fresh.to_json()

    def test_corrupt_cell_entry_costs_exactly_one_rerun(self, tmp_path,
                                                        monkeypatch):
        cache = CellCache(str(tmp_path / "cells"))
        run_sweep(SMALL, cache=cache)
        victim = ("jess", "fixed", 2)
        entry = cache.path_for(SMALL.cell_fingerprint(*victim))
        with open(entry, "w") as handle:
            handle.write("{half an entr")

        executed = []
        monkeypatch.setattr(runner, "_cell_worker",
                            _counting_worker(executed))
        with pytest.warns(RuntimeWarning, match="rerunning that cell"):
            results = run_sweep(SMALL, cache=cache)
        assert executed == [victim]
        assert set(results.cells) == set(SMALL.configurations())

    def test_worker_error_becomes_structured_failure(self, tmp_path,
                                                     monkeypatch):
        config = SweepConfig(benchmarks=("jess", "db"), families=("fixed",),
                             depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
        bad = ("db", "fixed", 2)
        real = _cell_worker

        def flaky(args):
            if args[:3] == bad:
                raise ExecutionError("simulated worker crash")
            return real(args)

        monkeypatch.setattr(runner, "_cell_worker", flaky)
        cache = CellCache(str(tmp_path / "cells"))
        results = run_sweep(config, cache=cache)

        # The failing cell is recorded, not fatal; every other cell
        # completed and was persisted.
        assert bad not in results.cells
        failure = results.failures[bad]
        assert failure.error_type == "ExecutionError"
        assert "simulated worker crash" in failure.message
        assert failure.attempts == 2  # first try plus one retry
        assert set(results.cells) == set(config.configurations()) - {bad}

        # The next sweep retries only the failed cell (failures are
        # never cached) and succeeds.
        executed = []
        monkeypatch.setattr(runner, "_cell_worker",
                            _counting_worker(executed))
        retried = run_sweep(config, cache=cache)
        assert executed == [bad]
        assert not retried.failures
        assert set(retried.cells) == set(config.configurations())

    def test_transient_error_recovered_by_retry(self, monkeypatch):
        real = _cell_worker
        state = {"failed_once": False}

        def flaky_once(args):
            if args[:3] == ("jess", "fixed", 2) and not state["failed_once"]:
                state["failed_once"] = True
                raise RuntimeError("transient")
            return real(args)

        monkeypatch.setattr(runner, "_cell_worker", flaky_once)
        results = run_sweep(SMALL)
        assert not results.failures
        assert set(results.cells) == set(SMALL.configurations())

    def test_pool_unavailable_degrades_to_in_process(self, monkeypatch):
        import concurrent.futures

        def unavailable(*args, **kwargs):
            raise OSError("no sem_open on this platform")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            unavailable)
        config = SweepConfig(benchmarks=("jess",), families=("fixed",),
                             depths=(2,), phases=(0.0,), scale=0.05, jobs=2)
        with pytest.warns(RuntimeWarning, match="in-process"):
            results = run_sweep(config)
        assert set(results.cells) == set(config.configurations())
        assert not results.failures

    def test_legacy_monolithic_cache_migrates_to_cells(self, tiny_sweep,
                                                       tmp_path,
                                                       monkeypatch):
        path = tmp_path / "sweep.json"
        path.write_text(tiny_sweep.to_json())
        executed = []
        monkeypatch.setattr(runner, "_cell_worker",
                            _counting_worker(executed))
        # A different (subset) config: the monolithic fast path cannot
        # serve it, but every requested cell exists in the legacy file.
        sub = SweepConfig(benchmarks=("db",), families=("fixed",),
                          depths=(2,), phases=(0.0,), scale=0.05, jobs=1)
        results = load_or_run_sweep(str(path), sub)
        assert executed == []
        assert set(results.cells) == set(sub.configurations())
        for key in results.cells:
            assert results.cells[key] == tiny_sweep.cells[key]
        assert os.path.isdir(cell_cache_root(str(path)))


class TestFailureSerialization:
    def test_round_trip_with_nondefault_config_and_failures(self):
        config = SweepConfig(benchmarks=("jess",), families=("class",),
                             depths=(3,), phases=(0.1, 0.9), scale=0.25,
                             jobs=3, cell_timeout=12.5)
        result = run_single("jess", "cins", 1, scale=0.05)
        failure = CellFailure(benchmark="jess", family="class", depth=3,
                              error_type="ExecutionError",
                              message="stack overflow", attempts=2)
        results = SweepResults(config=config,
                               cells={("jess", "cins", 1): result},
                               failures={failure.key: failure})
        loaded = SweepResults.from_json(results.to_json())
        assert loaded.config == config
        assert loaded.cells == results.cells
        assert loaded.failures == results.failures

    def test_from_json_accepts_legacy_payload(self, tiny_sweep):
        # Payloads written before per-cell caching carry neither the
        # failures list nor the cell_timeout field.
        payload = json.loads(tiny_sweep.to_json())
        payload["config"].pop("cell_timeout")
        assert "failures" not in payload
        loaded = SweepResults.from_json(json.dumps(payload))
        assert loaded.config == tiny_sweep.config
        assert loaded.failures == {}


class TestProbeThreading:
    def test_run_cell_threads_probe(self):
        probe = TerminationStatsProbe(DEFAULT_COSTS)
        run_cell("jess", "fixed", 2, phases=(0.0,), scale=0.05, probe=probe)
        assert probe.samples > 0
        assert sum(probe.first_parameterless.values()) == probe.samples

    def test_probe_describes_best_run_only(self):
        # Regression: run_cell used to thread one shared probe through
        # every phase, so its statistics aggregated all N attempts.  The
        # probe must describe the *reported* (best) run: its sample
        # count matches that run's traces_recorded (probe and trace
        # listener sample at the same ticks under the same gate).
        probe = TerminationStatsProbe(DEFAULT_COSTS)
        best = run_cell("jess", "fixed", 2, phases=(0.0, 0.5), scale=0.05,
                        probe=probe)
        assert probe.samples == best.traces_recorded

    def test_probe_aggregates_across_cells(self):
        # A probe shared across cells still accumulates -- one best run
        # per cell.
        probe = TerminationStatsProbe(DEFAULT_COSTS)
        first = run_cell("jess", "fixed", 2, phases=(0.0, 0.5), scale=0.05,
                         probe=probe)
        second = run_cell("db", "fixed", 2, phases=(0.0, 0.5), scale=0.05,
                          probe=probe)
        assert probe.samples == first.traces_recorded + \
            second.traces_recorded
        assert sum(probe.first_parameterless.values()) == probe.samples

    def test_cell_worker_threads_probe(self):
        probe = TerminationStatsProbe(DEFAULT_COSTS)
        key, result, snapshot, log = _cell_worker(
            ("jess", "fixed", 2, (0.0,), 0.05, probe, False, False))
        assert key == ("jess", "fixed", 2)
        assert result.total_cycles > 0
        assert snapshot is None
        assert log is None
        assert probe.samples > 0


class TestFigures:
    def test_figure4_structure(self, tiny_sweep):
        panels, rendered = figure4(tiny_sweep)
        assert set(panels) == {"fixed", "hybrid1"}
        assert "harMean" in panels["fixed"]
        assert "jess" in rendered and "db" in rendered

    def test_figure5_structure(self, tiny_sweep):
        panels, rendered = figure5(tiny_sweep)
        assert set(panels) == {"fixed", "hybrid1"}
        assert "code space" in rendered

    def test_figure6_structure(self, tiny_sweep):
        series, rendered = figure6(tiny_sweep)
        assert "cins" in series
        assert "fixed-2" in series
        for fractions in series.values():
            for component in FIGURE6_COMPONENTS:
                assert 0.0 <= fractions[component] < 0.5
        assert "AOS component" in rendered

    def test_figure2_shows_context_split(self):
        data, rendered = figure2(iterations=3000)
        edge_split = data["edge"]["global"]
        assert set(edge_split) == {"MyKey.hashCode", "Object.hashCode"}
        per_context = data["trace"]["per_context"]
        assert len(per_context) == 2
        for bucket in per_context.values():
            assert max(bucket.values()) > 0.99  # 100% per context
        assert "Figure 2" in rendered

    def test_table1_matches_spec(self):
        rows, rendered = table1(scale=0.05)
        assert [r["benchmark"] for r in rows] == list(BENCHMARK_ORDER)
        from repro.workloads.spec import TABLE1
        for row in rows:
            classes, methods, _bc = TABLE1[row["benchmark"]]
            assert row["classes"] == classes
            assert row["methods"] == methods
        assert "Table 1" in rendered

    def test_termination_stats(self):
        stats, rendered = termination_stats(scale=0.05)
        assert set(stats) == set(BENCHMARK_ORDER)
        for entry in stats.values():
            assert 0.0 <= entry["immediately_parameterless"] <= 1.0
            assert entry["parameterless_within_5"] >= \
                entry["immediately_parameterless"]
        assert "termination" in rendered

    def test_headline(self, tiny_sweep):
        data, rendered = headline(tiny_sweep)
        assert data["min_speedup_percent"] <= data["max_speedup_percent"]
        assert "Headline" in rendered
