"""Round-trip tests for the profile projections the fleet wire uses.

The fleet store's wire format IS ``CallingContextTree.to_trace_weights``
and ``DynamicCallGraph.edge_weights`` output: every published delta
crosses the process boundary as one of those projections and is later
rebuilt into profiles on the warm-start side.  These tests pin the
round-trip invariants that makes safe: a CCT rebuilt from its own trace
weights is the same tree (weights, node count, hot contexts), and the
DCG's depth-1 projection stays exact under heavy float accumulation.
"""

import random

import pytest

from repro.profiles.cct import CallingContextTree
from repro.profiles.dcg import DynamicCallGraph
from repro.profiles.trace import TraceKey, make_context


def sample_keys():
    """A mixed-depth trace population with shared prefixes."""
    return [
        TraceKey("A.m", make_context([("B.n", 0)])),
        TraceKey("A.m", make_context([("B.n", 0), ("C.p", 1)])),
        TraceKey("A.m", make_context([("B.n", 2), ("C.p", 1)])),
        TraceKey("D.q", make_context([("B.n", 0)])),
        TraceKey("D.q", make_context([("A.m", 3), ("B.n", 0), ("C.p", 1)])),
    ]


def rebuild(cct: CallingContextTree) -> CallingContextTree:
    """One fleet wire round trip: project to weights, rebuild the tree."""
    rebuilt = CallingContextTree()
    weights = cct.to_trace_weights()
    for key in sorted(weights, key=lambda k: (k.callee, k.context)):
        rebuilt.add_trace(key, weights[key])
    return rebuilt


class TestCCTRoundTrip:
    def build(self, weights=None):
        cct = CallingContextTree()
        for index, key in enumerate(sample_keys()):
            cct.add_trace(key, weights[index] if weights else index + 1.0)
        return cct

    def test_weights_preserved(self):
        cct = self.build()
        rebuilt = rebuild(cct)
        original = cct.to_trace_weights()
        recovered = rebuilt.to_trace_weights()
        assert set(recovered) == set(original)
        for key in original:
            assert recovered[key] == pytest.approx(original[key])
        assert rebuilt.total_weight() == pytest.approx(cct.total_weight())

    def test_node_count_preserved(self):
        # Shared context prefixes must collapse into shared interior
        # nodes on rebuild, not duplicate.
        cct = self.build()
        assert rebuild(cct).node_count() == cct.node_count()

    def test_hot_contexts_preserved(self):
        cct = self.build()
        rebuilt = rebuild(cct)
        for threshold in (0.05, 0.2, 0.5):
            hot = {(node.method, tuple(node.path()), w)
                   for node, w in cct.hot_contexts(threshold)}
            hot_rebuilt = {(node.method, tuple(node.path()), w)
                           for node, w in rebuilt.hot_contexts(threshold)}
            assert hot_rebuilt == hot

    def test_double_round_trip_is_fixed_point(self):
        cct = self.build()
        once = rebuild(cct)
        twice = rebuild(once)
        assert twice.to_trace_weights() == once.to_trace_weights()

    def test_round_trip_under_float_accumulation(self):
        # Many tiny unrepresentable increments -- the projection must
        # still agree with the tree it came from.
        rng = random.Random(7)
        keys = sample_keys()
        cct = CallingContextTree()
        for _ in range(5000):
            cct.add_trace(rng.choice(keys), rng.random() * 0.1)
        rebuilt = rebuild(cct)
        original = cct.to_trace_weights()
        recovered = rebuilt.to_trace_weights()
        for key in original:
            assert recovered[key] == pytest.approx(original[key],
                                                   rel=1e-12)


class TestDCGEdgeWeights:
    def test_edges_fold_contexts_onto_innermost_caller(self):
        dcg = DynamicCallGraph()
        dcg.add(TraceKey("A.m", make_context([("B.n", 0), ("C.p", 1)])), 2.0)
        dcg.add(TraceKey("A.m", make_context([("B.n", 0), ("D.q", 2)])), 3.0)
        dcg.add(TraceKey("A.m", make_context([("E.r", 4)])), 1.0)
        edges = dcg.edge_weights()
        assert edges[TraceKey("A.m", make_context([("B.n", 0)]))] == \
            pytest.approx(5.0)
        assert edges[TraceKey("A.m", make_context([("E.r", 4)]))] == \
            pytest.approx(1.0)

    def test_projection_total_under_float_accumulation(self):
        # The depth-1 projection must conserve total weight even when
        # built from thousands of non-representable float increments.
        rng = random.Random(11)
        keys = [key for key in sample_keys() if key.context]
        dcg = DynamicCallGraph()
        expected_total = 0.0
        for _ in range(5000):
            weight = rng.random() * 0.3 + 1e-7
            dcg.add(rng.choice(keys), weight)
            expected_total += weight
        edges = dcg.edge_weights()
        assert sum(edges.values()) == pytest.approx(expected_total,
                                                    rel=1e-9)
        assert sum(edges.values()) == pytest.approx(dcg.total_weight,
                                                    rel=1e-9)

    def test_projection_is_insertion_order_stable(self):
        keys = [key for key in sample_keys() if key.context]
        weights = [0.1, 0.2, 0.3, 1.7, 0.05]
        projections = []
        for seed in range(4):
            pairs = list(zip(keys, weights))
            random.Random(seed).shuffle(pairs)
            dcg = DynamicCallGraph()
            for key, weight in pairs:
                dcg.add(key, weight)
            projections.append(dcg.edge_weights())
        assert all(set(p) == set(projections[0]) for p in projections)
        for key in projections[0]:
            values = {p[key] for p in projections}
            # Identical up to fold order; the fleet store re-sorts before
            # aggregating so sub-ulp drift here cannot leak into stored
            # bytes.
            for value in values:
                assert value == pytest.approx(projections[0][key])
