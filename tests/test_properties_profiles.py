"""Property-based tests (hypothesis) for the profile data structures.

These pin down the algebraic invariants the rest of the system leans on:
Equation-3 matching behaves like prefix compatibility, the DCG conserves
weight under ingestion and scales it under decay, and the calling-context
tree round-trips the trace multiset it was built from.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiles.cct import CallingContextTree
from repro.profiles.dcg import PRUNE_EPSILON, DynamicCallGraph
from repro.profiles.partial_match import (candidate_targets,
                                          contexts_compatible)
from repro.profiles.trace import InlineRule, TraceKey

# -- strategies ---------------------------------------------------------------

method_names = st.sampled_from(["A.m", "B.m", "C.m", "D.m", "E.m"])
sites = st.integers(min_value=0, max_value=5)
context_elements = st.tuples(method_names, sites)
contexts = st.lists(context_elements, min_size=1, max_size=5).map(tuple)
trace_keys = st.builds(TraceKey, method_names, contexts)
weights = st.floats(min_value=0.1, max_value=100.0,
                    allow_nan=False, allow_infinity=False)


# -- Equation 3 ------------------------------------------------------------------

class TestEq3Properties:
    @given(contexts)
    def test_reflexive(self, ctx):
        assert contexts_compatible(ctx, ctx)

    @given(contexts, contexts)
    def test_symmetric(self, a, b):
        # min(k, j) is symmetric, so Eq. 3 is too.
        assert contexts_compatible(a, b) == contexts_compatible(b, a)

    @given(contexts, st.integers(min_value=1, max_value=5))
    def test_prefix_always_compatible(self, ctx, cut):
        assert contexts_compatible(ctx[:cut], ctx)

    @given(contexts, contexts, contexts)
    def test_compatibility_with_common_extension(self, a, b, c):
        # If a and b are both prefixes of c they are compatible with c.
        assert contexts_compatible(a, tuple(a) + tuple(c))
        assert contexts_compatible(b, tuple(b) + tuple(c))

    @given(st.lists(st.builds(InlineRule, trace_keys, weights,
                              st.floats(0.0, 1.0)), max_size=12),
           contexts)
    def test_candidates_subset_of_rule_callees(self, rules, ctx):
        candidates = candidate_targets(rules, ctx)
        assert set(candidates) <= {r.callee for r in rules}

    @given(st.lists(st.builds(InlineRule, trace_keys, weights,
                              st.floats(0.0, 1.0)), max_size=12),
           contexts)
    def test_candidate_weights_positive(self, rules, ctx):
        for weight in candidate_targets(rules, ctx).values():
            assert weight > 0.0


# -- DCG ----------------------------------------------------------------------------

class TestDCGProperties:
    @given(st.lists(st.tuples(trace_keys, weights), max_size=30))
    def test_total_weight_is_sum(self, samples):
        dcg = DynamicCallGraph()
        for key, weight in samples:
            dcg.add(key, weight)
        assert math.isclose(dcg.total_weight,
                            sum(w for _k, w in samples), abs_tol=1e-6)

    @given(st.lists(st.tuples(trace_keys, weights), max_size=30))
    def test_entry_weight_aggregates_duplicates(self, samples):
        dcg = DynamicCallGraph()
        expected = {}
        for key, weight in samples:
            dcg.add(key, weight)
            expected[key] = expected.get(key, 0.0) + weight
        for key, weight in expected.items():
            assert math.isclose(dcg.weight(key), weight, abs_tol=1e-6)

    @given(st.lists(st.tuples(trace_keys, weights), min_size=1, max_size=30),
           st.floats(min_value=0.3, max_value=1.0))
    def test_decay_preserves_shares_when_nothing_pruned(self, samples, rate):
        dcg = DynamicCallGraph()
        for key, weight in samples:
            dcg.add(key, weight)
        if any(w * rate < PRUNE_EPSILON for _k, w in dcg.items()):
            return  # pruning intentionally shifts survivor shares upward
        before = {k: w / dcg.total_weight for k, w in dcg.items()}
        dcg.decay(rate)
        for key, share in before.items():
            after_share = dcg.weight(key) / dcg.total_weight
            assert math.isclose(after_share, share,
                                rel_tol=1e-6, abs_tol=1e-9)

    @given(st.lists(st.tuples(trace_keys, weights), min_size=1, max_size=30),
           st.floats(min_value=0.3, max_value=1.0))
    def test_decay_never_shrinks_survivor_shares(self, samples, rate):
        # Pruning removes only the coldest entries, so any surviving
        # trace's share can only grow (hot-trace detection stays sound).
        dcg = DynamicCallGraph()
        for key, weight in samples:
            dcg.add(key, weight)
        before = {k: w / dcg.total_weight for k, w in dcg.items()}
        dcg.decay(rate)
        if dcg.total_weight <= 0:
            return
        for key, _w in dcg.items():
            after_share = dcg.weight(key) / dcg.total_weight
            assert after_share >= before[key] - 1e-9

    @given(st.lists(st.tuples(trace_keys, weights), max_size=30))
    def test_hot_traces_all_above_cutoff(self, samples):
        dcg = DynamicCallGraph()
        for key, weight in samples:
            dcg.add(key, weight)
        hot = dcg.hot_traces(0.10)
        cutoff = 0.10 * dcg.total_weight
        assert all(weight > cutoff for _key, weight in hot)

    @given(st.lists(st.tuples(trace_keys, weights), max_size=30))
    def test_edge_projection_conserves_weight(self, samples):
        dcg = DynamicCallGraph()
        for key, weight in samples:
            dcg.add(key, weight)
        edges = dcg.edge_weights()
        assert math.isclose(sum(edges.values()), dcg.total_weight,
                            abs_tol=1e-6)
        assert all(k.depth == 1 for k in edges)


# -- CCT ---------------------------------------------------------------------------

class TestCCTProperties:
    @given(st.lists(st.tuples(trace_keys, weights), max_size=25))
    def test_round_trip_preserves_trace_multiset(self, samples):
        cct = CallingContextTree()
        expected = {}
        for key, weight in samples:
            cct.add_trace(key, weight)
            expected[key] = expected.get(key, 0.0) + weight
        back = cct.to_trace_weights()
        assert set(back) == set(expected)
        for key, weight in expected.items():
            assert math.isclose(back[key], weight, abs_tol=1e-6)

    @given(st.lists(st.tuples(trace_keys, weights), max_size=25))
    def test_total_weight_conserved(self, samples):
        cct = CallingContextTree()
        for key, weight in samples:
            cct.add_trace(key, weight)
        assert math.isclose(cct.total_weight(),
                            sum(w for _k, w in samples), abs_tol=1e-6)

    @given(st.lists(st.tuples(trace_keys, weights), min_size=1, max_size=25))
    def test_shared_prefixes_compress(self, samples):
        # Node count never exceeds total context elements + callees.
        cct = CallingContextTree()
        for key, weight in samples:
            cct.add_trace(key, weight)
        upper = sum(k.depth + 1 for k, _w in samples)
        assert cct.node_count() <= upper
