"""Tests for the k-CFA-driven static-context oracle and its policy."""

import pytest

from conftest import build_context_program
from repro.analysis.callgraph import RTA, build_call_graph
from repro.analysis.kcfa import build_kcfa_graph
from repro.analysis.static_oracle import StaticContextOracle
from repro.compiler.compiled_method import DIRECT
from repro.compiler.opt_compiler import OptCompiler, iter_call_sites
from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.policies import StaticContextOraclePolicy, make_policy
from repro.provenance.reasons import ReasonCode


def make_oracle(program, k=1, costs=None):
    costs = costs or CostModel()
    hierarchy = ClassHierarchy(program)
    graph = build_call_graph(program, precision=RTA, costs=costs)
    kgraph = build_kcfa_graph(program, hierarchy=hierarchy, k=k, costs=costs)
    return StaticContextOracle(program, hierarchy, costs, graph, kgraph)


def decide_disp(program, sites, comp_context, k=1):
    oracle = make_oracle(program, k=k)
    helper = program.method("C.helper")
    stmt = next(s for s in iter_call_sites(helper.body)
                if s.site == sites["disp"])
    root_id = comp_context[-1][0]
    root = program.method(root_id)
    return oracle.decide(stmt, comp_context, depth=len(comp_context) - 1,
                         current_size=root.bytecodes, root=root)


class TestContextDecisions:
    def test_known_prefix_devirtualizes_without_guard(self, ctxprog):
        program, sites = ctxprog
        # Compiling C.c1 with helper inlined: the chain above the
        # dispatch proves the (c1 -> helper) call string.
        comp_context = (("C.helper", sites["disp"]), ("C.c1", sites["c1"]))
        decision = decide_disp(program, sites, comp_context)
        assert decision.inline and not decision.guarded
        assert decision.reason == ReasonCode.STATIC_CTX_MONO.value
        assert [t.id for t in decision.targets] == ["A.ping"]
        assert decision.weight is not None and decision.weight > 0

    def test_other_chain_picks_other_target(self, ctxprog):
        program, sites = ctxprog
        comp_context = (("C.helper", sites["disp"]), ("C.c2", sites["c2"]))
        decision = decide_disp(program, sites, comp_context)
        assert decision.inline
        assert [t.id for t in decision.targets] == ["B.ping"]

    def test_no_prefix_refuses_as_context_polymorphic(self, ctxprog):
        program, sites = ctxprog
        # Compiling C.helper as its own root: no chain, every analysis
        # context is compatible, the join stays polymorphic.
        comp_context = (("C.helper", sites["disp"]),)
        decision = decide_disp(program, sites, comp_context)
        assert not decision.inline
        assert decision.reason == ReasonCode.STATIC_CTX_POLY.value

    def test_prefix_cleared_between_decisions(self, ctxprog):
        program, sites = ctxprog
        oracle = make_oracle(program)
        helper = program.method("C.helper")
        stmt = next(s for s in iter_call_sites(helper.body)
                    if s.site == sites["disp"])
        root = program.method("C.c1")
        oracle.decide(stmt, (("C.helper", sites["disp"]),
                             ("C.c1", sites["c1"])),
                      depth=1, current_size=root.bytecodes, root=root)
        assert oracle._known_prefix == ()


class TestCompiledTree:
    def test_guard_elimination_through_full_compile(self, ctxprog):
        program, sites = ctxprog
        costs = CostModel()
        hierarchy = ClassHierarchy(program)
        graph = build_call_graph(program, precision=RTA, costs=costs)
        kgraph = build_kcfa_graph(program, hierarchy=hierarchy, k=1,
                                  costs=costs)
        oracle = StaticContextOracle(program, hierarchy, costs, graph,
                                     kgraph)
        compiled = OptCompiler(program, hierarchy, costs).compile(
            program.method("C.c1"), oracle, version=1)
        # helper inlines into c1, and inside that inlined body the
        # dispatch devirtualizes directly -- no method-test guard.
        assert compiled.has_inlined(sites["c1"], "C.helper")
        decisions = {site: d for node in compiled.root.walk()
                     for site, d in node.decisions.items()}
        decision = decisions[sites["disp"]]
        assert decision.kind == DIRECT
        assert decision.targets() == ["A.ping"]
        assert compiled.guard_count() == 0

    def test_flat_static_oracle_refuses_the_same_site(self, ctxprog):
        from repro.analysis.static_oracle import StaticOracle
        program, sites = ctxprog
        costs = CostModel()
        hierarchy = ClassHierarchy(program)
        graph = build_call_graph(program, precision=RTA, costs=costs)
        oracle = StaticOracle(program, hierarchy, costs, graph)
        compiled = OptCompiler(program, hierarchy, costs).compile(
            program.method("C.c1"), oracle, version=1)
        decided = {site for node in compiled.root.walk()
                   for site in node.decisions}
        assert sites["disp"] not in decided


class TestPolicyIntegration:
    def test_make_policy_maps_depth_to_k(self):
        policy = make_policy("static-k", 3)
        assert isinstance(policy, StaticContextOraclePolicy)
        assert policy.label == "static-k"
        assert policy.k == 3
        assert policy.name == "static-k(k=3)"

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            StaticContextOraclePolicy(k=-1)

    def test_make_oracle_caches_both_graphs(self, ctxprog):
        program, _sites = ctxprog
        policy = make_policy("static-k", 1)
        hierarchy = ClassHierarchy(program)
        costs = CostModel()
        oracle1 = policy.make_oracle(program, hierarchy, costs)
        oracle2 = policy.make_oracle(program, hierarchy, costs)
        assert isinstance(oracle1, StaticContextOracle)
        assert oracle1._graph is oracle2._graph
        assert oracle1._kgraph is oracle2._kgraph

    def test_run_single_with_static_k_family(self):
        from repro.experiments.runner import run_single
        result = run_single("jess", "static-k", 1, scale=0.05)
        assert result.total_cycles > 0
        assert result.opt_compilations > 0

    def test_static_k_runs_deterministically(self):
        from repro.experiments.runner import run_single
        a = run_single("db", "static-k", 1, scale=0.05)
        b = run_single("db", "static-k", 1, scale=0.05)
        assert a.total_cycles == b.total_cycles
        assert a.opt_code_bytes == b.opt_code_bytes


class TestSweepCell:
    def test_static_k_family_through_sweep(self):
        from repro.experiments.config import SweepConfig
        from repro.experiments.runner import run_sweep
        config = SweepConfig(benchmarks=("compress",),
                             families=("static-k",), depths=(1,),
                             phases=(0.0,), scale=0.05, jobs=1)
        results = run_sweep(config)
        assert results.failures == {}
        assert results.result("compress", "static-k", 1).total_cycles > 0
        assert isinstance(
            results.speedup_percent("compress", "static-k", 1), float)
