"""Unit tests for the compiled-code artifact model."""

import pytest

from repro.aos.listeners import TraceListener
from repro.compiler.compiled_method import (DIRECT, GUARDED, CompiledMethod,
                                            GuardOption, InlineDecision,
                                            InlineNode)
from repro.jvm.frames import Frame
from repro.jvm.program import Const, MethodDef, Return
from repro.policies.imprecision import ImprecisionDriven
from repro.profiles.dcg import DynamicCallGraph
from repro.profiles.trace import TraceKey


def method(name, params=1, static=False):
    return MethodDef("K", name, params, static, [Return(Const(0))])


class TestInlineDecision:
    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            InlineDecision("weird", [])

    def test_direct_requires_exactly_one_option(self):
        m = method("m")
        option = GuardOption(m, InlineNode(m, 1))
        with pytest.raises(ValueError):
            InlineDecision(DIRECT, [])
        with pytest.raises(ValueError):
            InlineDecision(DIRECT, [option, option])
        decision = InlineDecision(DIRECT, [option])
        assert decision.sole is option

    def test_guarded_any_count(self):
        m = method("m")
        options = [GuardOption(m, InlineNode(m, 1), "K")]
        decision = InlineDecision(GUARDED, options)
        assert decision.targets() == ["K.m"]


class TestInlineNode:
    def test_inlined_bytecodes_recursive(self):
        root_m = method("root")
        child_m = method("child")
        root = InlineNode(root_m, 0)
        child = InlineNode(child_m, 1)
        root.decisions[1] = InlineDecision(
            DIRECT, [GuardOption(child_m, child)])
        expected = root_m.bytecodes + child_m.bytecodes
        assert root.inlined_bytecodes() == expected

    def test_walk_preorder(self):
        root = InlineNode(method("root"), 0)
        child = InlineNode(method("child"), 1)
        root.decisions[1] = InlineDecision(
            DIRECT, [GuardOption(child.method, child)])
        names = [n.method.name for n in root.walk()]
        assert names == ["root", "child"]


class TestImprecisionListenerIntegration:
    """The imprecision policy's per-site depth limit drives the walk."""

    def _stack(self):
        main = method("main", params=0, static=True)
        a = method("a", params=2)
        b = method("b", params=2)
        return [Frame(main, None, False), Frame(a, 1, False),
                Frame(b, 2, False)]

    def test_undeepened_site_sampled_at_depth_one(self):
        policy = ImprecisionDriven(4)
        listener = TraceListener(policy)
        key = listener.sample(self._stack())
        assert key.depth == 1

    def test_deepened_site_sampled_deeper(self):
        policy = ImprecisionDriven(4)
        dcg = DynamicCallGraph()
        # Make (K.a, 2) look imprecise: two flat targets.
        dcg.add(TraceKey("K.b", (("K.a", 2),)), 10.0)
        dcg.add(TraceKey("K.x", (("K.a", 2),)), 10.0)
        policy.observe(dcg)
        listener = TraceListener(policy)
        key = listener.sample(self._stack())
        assert key.depth == 2
