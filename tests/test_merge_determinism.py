"""Merge determinism: shuffled inputs must produce byte-identical output.

Float addition is not associative, so any merge that folds weights in
dict-iteration order silently depends on insertion order -- two resumed
sweeps (or two fleet replicas) holding the same data in different orders
would serialize differently and break cache comparisons and golden
diffs.  Every merge in :mod:`repro.telemetry.aggregate` and
:mod:`repro.fleet.store` therefore folds in canonical sorted order;
these tests pin that by merging permuted inputs and requiring identical
bytes.
"""

import json
import random

from repro.telemetry.aggregate import (merge_cell_telemetry,
                                       merge_component_totals,
                                       merge_counters, merge_histograms)
from repro.telemetry.recorder import HistogramData, TelemetrySnapshot

#: Weights chosen so a different fold order flips low-order float bits:
#: (a + b) + c != a + (b + c) for these magnitudes.
WEIGHTS = [0.1, 0.2, 0.3, 1e16, 1.0, -1e16, 0.7, 1e-9]


def make_snapshot(index: int) -> TelemetrySnapshot:
    histogram = HistogramData()
    for value in WEIGHTS[: index + 2]:
        histogram.observe(abs(value) + 1.0)
    return TelemetrySnapshot(
        label=f"cell{index}",
        total_cycles=WEIGHTS[index % len(WEIGHTS)] + 100.0,
        counters={f"ctr{j}": WEIGHTS[(index + j) % len(WEIGHTS)]
                  for j in range(3)},
        histograms={"h": histogram})


def permutations_of_labelled_snapshots(count=5, orders=6):
    snapshots = {f"cell{i}": make_snapshot(i) for i in range(count)}
    labels = list(snapshots)
    for seed in range(orders):
        shuffled = list(labels)
        random.Random(seed).shuffle(shuffled)
        yield {label: snapshots[label] for label in shuffled}


class TestTelemetryMergeDeterminism:
    def test_counters_identical_across_input_orders(self):
        blobs = {json.dumps(merge_counters(ordering), sort_keys=False)
                 for ordering in permutations_of_labelled_snapshots()}
        assert len(blobs) == 1

    def test_counter_keys_emitted_sorted(self):
        for ordering in permutations_of_labelled_snapshots(orders=3):
            merged = merge_counters(ordering)
            assert list(merged) == sorted(merged)

    def test_component_totals_identical_across_input_orders(self):
        blobs = {json.dumps(merge_component_totals(ordering))
                 for ordering in permutations_of_labelled_snapshots()}
        assert len(blobs) == 1

    def test_histograms_identical_across_input_orders(self):
        blobs = set()
        for ordering in permutations_of_labelled_snapshots():
            merged = merge_histograms(ordering)
            blobs.add(json.dumps(
                {name: [h.count, h.total, h.minimum, h.maximum,
                        sorted(h.buckets.items())]
                 for name, h in merged.items()}, sort_keys=True))
        assert len(blobs) == 1

    def test_cell_maps_union_is_key_sorted(self):
        cells = {("jess", "fixed", d): make_snapshot(d) for d in (3, 1, 2)}
        later = {("db", "fixed", 1): make_snapshot(0),
                 ("jess", "fixed", 1): make_snapshot(4)}
        merged = merge_cell_telemetry(cells, None, later)
        assert list(merged) == sorted(merged)
        # Later maps win where cells overlap (the cell re-ran).
        assert merged[("jess", "fixed", 1)].label == "cell4"
