"""Shared fixtures: small hand-built programs used across the test suite."""

from __future__ import annotations

import pytest

from repro.jvm.costs import CostModel
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.program import (Arg, Const, Let, Local, Loop, New, Return,
                               StaticCall, VirtualCall, Work)
from repro.workloads import builder
from repro.workloads.builder import ProgramBuilder

# Every builder-constructed program in the suite additionally passes the
# full analysis-layer verifier (the debug gate is off in production).
builder.VERIFY_BUILDS = True


@pytest.fixture
def costs() -> CostModel:
    return CostModel()


def build_diamond_program(iterations: int = 10):
    """A tiny program with one polymorphic site and two receiver classes.

    ``Main.main`` allocates an ``A`` and a ``B`` and calls ``Main.run``
    ``iterations`` times; ``run`` virtual-dispatches ``ping`` on each.
    Returns (program, sites dict).
    """
    b = ProgramBuilder("diamond")
    b.cls("Base")
    b.cls("A", superclass="Base")
    b.cls("B", superclass="Base")
    b.cls("Main")

    b.method("Base", "ping", [Work(4), Return(Const(0))], params=1)
    b.method("A", "ping", [Work(4), Return(Const(1))], params=1)
    b.method("B", "ping", [Work(4), Return(Const(2))], params=1)

    ping_a = b.site()
    ping_b = b.site()
    run = b.static_method("Main", "run", [
        VirtualCall(ping_a, "ping", Arg(0), dst=0),
        VirtualCall(ping_b, "ping", Arg(1), dst=1),
        Work(2),
        Return(Local(1)),
    ], params=2, locals_=4)

    loop_site = b.site()
    b.static_method("Main", "main", [
        New(0, "A"),
        New(1, "B"),
        Loop(Const(iterations), 2, [
            StaticCall(loop_site, "Main.run", [Local(0), Local(1)], dst=3),
        ]),
        Return(Local(3)),
    ], params=0, locals_=6)
    b.entry("Main.main")
    program = b.build()
    sites = {"ping_a": ping_a, "ping_b": ping_b, "loop": loop_site,
             "run": run.id}
    return program, sites


def build_context_program(iterations: int = 10):
    """One dispatch site whose receiver depends on the *static* caller.

    ``C.helper`` virtual-dispatches ``ping`` on its argument; ``C.c1``
    always passes an ``A``, ``C.c2`` always a ``B``.  Context-insensitive
    analyses (RTA, 0-CFA) join both flows inside ``helper`` and call the
    dispatch polymorphic; 1-CFA analyzes ``helper`` once per calling site
    and proves every context monomorphic -- the minimal "context rescue"
    shape the k-CFA and lattice tests exercise.
    Returns (program, sites dict).
    """
    b = ProgramBuilder("ctxprog")
    b.cls("Base")
    b.cls("A", superclass="Base")
    b.cls("B", superclass="Base")
    b.cls("C")
    b.method("A", "ping", [Work(3), Return(Const(1))], params=1)
    b.method("B", "ping", [Work(3), Return(Const(2))], params=1)

    disp = b.site()
    b.method("C", "helper", [
        VirtualCall(disp, "ping", Arg(0), dst=0),
        Return(Local(0)),
    ], params=1, static=True, locals_=2)

    c1_site, c2_site = b.site(), b.site()
    b.method("C", "c1", [
        StaticCall(c1_site, "C.helper", [Arg(0)], dst=0),
        Return(Local(0)),
    ], params=1, static=True, locals_=2)
    b.method("C", "c2", [
        StaticCall(c2_site, "C.helper", [Arg(0)], dst=0),
        Return(Local(0)),
    ], params=1, static=True, locals_=2)

    call1, call2 = b.site(), b.site()
    b.static_method("C", "main", [
        New(0, "A"),
        New(1, "B"),
        Loop(Const(iterations), 2, [
            StaticCall(call1, "C.c1", [Local(0)], dst=3),
            StaticCall(call2, "C.c2", [Local(1)], dst=4),
        ]),
        Return(Local(3)),
    ], locals_=6)
    b.entry("C.main")
    sites = {"disp": disp, "c1": c1_site, "c2": c2_site,
             "call1": call1, "call2": call2}
    return b.build(), sites


@pytest.fixture
def diamond():
    return build_diamond_program()


@pytest.fixture
def ctxprog():
    return build_context_program()


@pytest.fixture
def diamond_program(diamond):
    program, _sites = diamond
    return program


@pytest.fixture
def diamond_hierarchy(diamond_program):
    return ClassHierarchy(diamond_program)
