"""Unit tests for small substrate modules: values, frames, cost model."""

import pytest

from repro.jvm.costs import CostModel, DEFAULT_COSTS
from repro.jvm.frames import Frame, physical_method
from repro.jvm.program import Const, MethodDef, Return
from repro.jvm.values import Instance, dynamic_class


class TestValues:
    def test_instance_carries_class(self):
        assert Instance("K").klass == "K"

    def test_instances_have_identity(self):
        a, b = Instance("K"), Instance("K")
        assert a is not b

    def test_dynamic_class_of_instance(self):
        assert dynamic_class(Instance("K")) == "K"

    def test_dynamic_class_of_int_rejected(self):
        with pytest.raises(TypeError):
            dynamic_class(7)


class TestFrames:
    def _method(self, name):
        return MethodDef("C", name, 0, True, [Return(Const(0))])

    def test_physical_method_skips_inlined(self):
        stack = [Frame(self._method("root"), None, False),
                 Frame(self._method("inl1"), 1, True),
                 Frame(self._method("inl2"), 2, True)]
        assert physical_method(stack).name == "root"

    def test_physical_method_top_when_not_inlined(self):
        stack = [Frame(self._method("root"), None, False),
                 Frame(self._method("callee"), 1, False)]
        assert physical_method(stack).name == "callee"

    def test_empty_stack(self):
        assert physical_method([]) is None


class TestCostModel:
    def test_defaults_match_module_constants(self):
        from repro.jvm import costs
        model = CostModel()
        assert model.sample_interval == costs.SAMPLE_INTERVAL
        assert model.hot_edge_threshold == costs.HOT_EDGE_THRESHOLD
        assert model.tiny_limit == 2 * costs.CALL_UNITS
        assert model.small_limit == 5 * costs.CALL_UNITS
        assert model.medium_limit == 25 * costs.CALL_UNITS

    def test_estimated_speedup_derived(self):
        model = CostModel(baseline_exec_mult=3.0, opt_exec_mult=1.5)
        assert model.estimated_opt_speedup == pytest.approx(2.0)

    def test_replace_is_nondestructive(self):
        model = CostModel()
        changed = model.replace(hot_edge_threshold=0.05)
        assert changed.hot_edge_threshold == 0.05
        assert model.hot_edge_threshold != 0.05
        assert changed.sample_interval == model.sample_interval

    def test_replace_rejects_unknown_field(self):
        from repro.jvm.errors import ConfigError
        model = CostModel()
        with pytest.raises(ConfigError) as excinfo:
            model.replace(guard_tset=0)
        # The error must name the typo and suggest the real field: a
        # silently-ignored override would run the baseline model and
        # corrupt any causal profile built on top of it.
        message = str(excinfo.value)
        assert "guard_tset" in message
        assert "guard_test" in message

    def test_replace_rejects_derived_property(self):
        from repro.jvm.errors import ConfigError
        with pytest.raises(ConfigError):
            CostModel().replace(estimated_opt_speedup=3.0)

    def test_replace_reports_all_unknowns(self):
        from repro.jvm.errors import ConfigError
        with pytest.raises(ConfigError) as excinfo:
            CostModel().replace(bogus_one=1, bogus_two=2)
        assert "bogus_one" in str(excinfo.value)
        assert "bogus_two" in str(excinfo.value)

    def test_replace_accepts_float_override_of_int_field(self):
        # Virtual-speedup experiments scale integer cycle costs by
        # fractional factors; the model must carry them through.
        changed = CostModel().replace(guard_test=0.5)
        assert changed.guard_test == 0.5

    def test_default_costs_singleton_sane(self):
        assert DEFAULT_COSTS.baseline_exec_mult > DEFAULT_COSTS.opt_exec_mult
        assert 0.0 < DEFAULT_COSTS.hot_edge_threshold < 1.0
        assert 0.0 < DEFAULT_COSTS.guard_coverage_min <= 1.0
        assert 0.0 < DEFAULT_COSTS.decay_rate <= 1.0
        assert DEFAULT_COSTS.tiny_limit < DEFAULT_COSTS.small_limit \
            < DEFAULT_COSTS.medium_limit
