"""Tests for the repro.telemetry subsystem.

Covers the three contract points of the telemetry design:

* **zero overhead** -- a traced run and an untraced run of the same
  configuration are cycle-identical (the NullRecorder/EventLog guarantee);
* **schema validity** -- exported Chrome traces carry the required
  trace-event keys with non-negative, per-track monotone timestamps;
* **measurement honesty** -- per-component span totals reconcile exactly
  with :class:`~repro.aos.cost_accounting.CostAccounting`.
"""

import json

import pytest

from repro.aos.cost_accounting import (AOS_COMPONENTS, APP, COMPILATION,
                                       LISTENERS)
from repro.aos.runtime import AdaptiveRuntime
from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_single, run_sweep
from repro.policies import make_policy
from repro.telemetry import (NULL_RECORDER, HistogramData, NullRecorder,
                             TelemetryRecorder, cell_label, component_totals,
                             fractions, label_cell_snapshots,
                             merge_cell_telemetry, merge_component_totals,
                             merge_counters, merge_histograms,
                             merged_chrome_trace, reconcile, render_aggregate,
                             summarize, to_chrome_trace, write_chrome_trace)
from repro.workloads.spec import build_benchmark

SCALE = 0.05


def traced_run(benchmark="jess", family="hybrid1", depth=3, scale=SCALE):
    """One instrumented run; returns (runtime, result, snapshot)."""
    recorder = TelemetryRecorder(label=f"{benchmark}/{family}/max{depth}")
    generated = build_benchmark(benchmark, scale=scale)
    runtime = AdaptiveRuntime(generated.program, make_policy(family, depth),
                              telemetry=recorder)
    result = runtime.run()
    return runtime, result, recorder.snapshot()


@pytest.fixture(scope="module")
def jess_traced():
    return traced_run()


class TestRecorder:
    def test_span_records_clock_interval(self):
        recorder = TelemetryRecorder()
        clock = [10.0]
        recorder.bind(lambda: clock[0])
        span_id = recorder.begin_span("c1", "work", detail="x")
        clock[0] = 25.0
        recorder.end_span(span_id, extra=1)
        (span,) = recorder.spans
        assert (span.begin, span.end) == (10.0, 25.0)
        assert span.duration == 15.0
        assert span.args == {"detail": "x", "extra": 1}

    def test_self_cycles_uses_component_delta(self):
        recorder = TelemetryRecorder()
        cycles = {"c1": 100.0}
        recorder.bind(lambda: 0.0, lambda c: cycles.get(c, 0.0))
        span_id = recorder.begin_span("c1", "work")
        cycles["c1"] = 140.0
        recorder.end_span(span_id)
        assert recorder.spans[0].self_cycles == 40.0

    def test_explicit_self_cycles_wins(self):
        recorder = TelemetryRecorder()
        with pytest.raises(TypeError):
            recorder.end_span()  # span_id is required
        span_id = recorder.begin_span("c1", "work")
        recorder.end_span(span_id, self_cycles=7.0)
        assert recorder.spans[0].self_cycles == 7.0

    def test_counters_and_gauges(self):
        recorder = TelemetryRecorder()
        recorder.count("n", 2.0)
        recorder.count("n")
        recorder.gauge("g", 5.0)
        recorder.gauge("g", 3.0)
        assert recorder.counters["n"] == 3.0
        assert recorder.gauges["g"] == 3.0
        assert [v for _t, v in recorder.counter_series["n"]] == [2.0, 3.0]
        assert [v for _t, v in recorder.counter_series["g"]] == [5.0, 3.0]

    def test_histogram_buckets(self):
        histogram = HistogramData()
        for value in (0.5, 1.0, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.minimum == 0.5 and histogram.maximum == 100.0
        assert histogram.mean == pytest.approx(104.5 / 4)
        assert histogram.buckets[0] == 2      # <= 1.0
        assert histogram.buckets[2] == 1      # (2, 4]
        assert histogram.buckets[7] == 1      # (64, 128]

    def test_snapshot_closes_open_spans_and_is_frozen(self):
        recorder = TelemetryRecorder(label="x")
        clock = [1.0]
        recorder.bind(lambda: clock[0])
        recorder.begin_span("c1", "dangling")
        clock[0] = 9.0
        snapshot = recorder.snapshot()
        assert snapshot.label == "x"
        assert snapshot.total_cycles == 9.0
        assert snapshot.spans[0].end == 9.0
        recorder.count("later")
        assert "later" not in snapshot.counters

    def test_null_recorder_is_inert(self):
        null = NullRecorder()
        assert not null.enabled and not NULL_RECORDER.enabled
        with null.span("c1", "work"):
            null.count("n")
            null.gauge("g", 1.0)
            null.observe("h", 2.0)
            null.instant("c1", "e")
        null.end_span(null.begin_span("c1", "w"))
        snapshot = null.snapshot()
        assert snapshot.spans == [] and snapshot.counters == {}


class TestZeroOverheadContract:
    def test_traced_run_is_cycle_identical(self):
        untraced = run_single("jess", "hybrid1", 3, scale=SCALE)
        recorder = TelemetryRecorder()
        traced = run_single("jess", "hybrid1", 3, scale=SCALE,
                            telemetry=recorder)
        assert traced.total_cycles == untraced.total_cycles
        assert traced.component_cycles == untraced.component_cycles
        assert traced.opt_compilations == untraced.opt_compilations
        assert len(recorder.spans) > 0  # ...and it actually recorded

    def test_traced_run_is_cycle_identical_with_osr_and_invalidation(self):
        # javac loads classes late (invalidation) and compress runs long
        # monomorphic loops (OSR); jess at tiny scale covers neither.
        untraced = run_single("javac", "fixed", 2, scale=SCALE)
        traced = run_single("javac", "fixed", 2, scale=SCALE,
                            telemetry=TelemetryRecorder())
        assert traced.total_cycles == untraced.total_cycles


class TestSummaryReconciliation:
    def test_span_totals_equal_cost_accounting(self, jess_traced):
        runtime, _result, snapshot = jess_traced
        accounting = runtime.accounting.snapshot()
        totals = component_totals(snapshot)
        for component in AOS_COMPONENTS:
            assert totals.get(component, 0.0) == pytest.approx(
                accounting[component], rel=1e-9, abs=1e-6), component
        assert totals[APP] == pytest.approx(accounting[APP], rel=1e-9)

    def test_fractions_match_cost_accounting(self, jess_traced):
        runtime, _result, snapshot = jess_traced
        expected = runtime.accounting.fractions()
        measured = fractions(snapshot)
        for component, value in expected.items():
            assert measured[component] == pytest.approx(value, abs=1e-12)

    def test_reconcile_accepts_run_result(self, jess_traced):
        _runtime, result, snapshot = jess_traced
        ok, rows, rendered = reconcile(snapshot, result.component_cycles)
        assert ok
        assert {row["component"] for row in rows} == set(
            result.component_cycles)
        assert "reconciliation" in rendered

    def test_reconcile_detects_disagreement(self, jess_traced):
        _runtime, result, snapshot = jess_traced
        skewed = dict(result.component_cycles)
        skewed[COMPILATION] += 0.5 * snapshot.total_cycles
        ok, _rows, _rendered = reconcile(snapshot, skewed)
        assert not ok

    def test_summarize_renders_components(self, jess_traced):
        _runtime, _result, snapshot = jess_traced
        rows, rendered = summarize(snapshot)
        by_component = {row["component"]: row for row in rows}
        assert by_component[LISTENERS]["spans"] > 0
        assert by_component[APP]["cycles"] > 0
        assert "Telemetry component summary" in rendered

    def test_per_compile_spans_carry_method_details(self, jess_traced):
        _runtime, result, snapshot = jess_traced
        compiles = [s for s in snapshot.spans if s.name == "opt_compile"]
        assert len(compiles) == result.opt_compilations
        for span in compiles:
            assert span.args["method"]
            assert span.args["inlined_bytecodes"] > 0
            assert span.args["inline_nodes"] >= 1
            assert span.args["guards"] >= 0
            assert span.args["reason"] in ("hot", "osr", "missing_edge")


class TestChromeTraceExport:
    REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")

    def test_events_satisfy_schema(self, jess_traced):
        _runtime, _result, snapshot = jess_traced
        events = to_chrome_trace(snapshot)["traceEvents"]
        assert events
        for event in events:
            for key in self.REQUIRED_KEYS:
                assert key in event, f"{key} missing from {event}"
            assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_timestamps_monotone_per_track(self, jess_traced):
        _runtime, _result, snapshot = jess_traced
        events = to_chrome_trace(snapshot)["traceEvents"]
        per_track = {}
        for event in events:
            per_track.setdefault((event["pid"], event["tid"]),
                                 []).append(event["ts"])
        for track, stamps in per_track.items():
            assert stamps == sorted(stamps), track

    def test_component_tracks_are_named(self, jess_traced):
        _runtime, _result, snapshot = jess_traced
        events = to_chrome_trace(snapshot)["traceEvents"]
        thread_names = {event["args"]["name"] for event in events
                        if event["name"] == "thread_name"}
        assert {APP, LISTENERS, COMPILATION} <= thread_names

    def test_instants_cover_osr_and_rule_changes(self):
        # compress's hot monomorphic loops reliably trigger OSR.
        _runtime, result, snapshot = traced_run("compress", "fixed", 2)
        names = {instant.name for instant in snapshot.instants}
        if result.osr_transfers:
            assert "osr_transfer" in names
        assert "rules_changed" in names

    def test_write_chrome_trace_round_trips(self, jess_traced, tmp_path):
        _runtime, _result, snapshot = jess_traced
        path = str(tmp_path / "trace.json")
        events = write_chrome_trace(path, snapshot)
        with open(path) as handle:
            loaded = json.load(handle)
        assert len(loaded["traceEvents"]) == events
        assert loaded["otherData"]["total_cycles"] == snapshot.total_cycles


class TestAggregation:
    @pytest.fixture(scope="class")
    def two_runs(self):
        _rt1, _r1, snap1 = traced_run("jess", "fixed", 2)
        _rt2, _r2, snap2 = traced_run("db", "hybrid1", 2)
        return {"jess/fixed": snap1, "db/hybrid1": snap2}

    def test_component_totals_sum(self, two_runs):
        merged = merge_component_totals(two_runs)
        for component in (APP, COMPILATION):
            assert merged[component] == pytest.approx(sum(
                component_totals(s).get(component, 0.0)
                for s in two_runs.values()))

    def test_counters_sum(self, two_runs):
        merged = merge_counters(two_runs)
        key = "code_cache.baseline_compilations"
        assert merged[key] == sum(s.counters[key] for s in two_runs.values())

    def test_histograms_fold(self, two_runs):
        merged = merge_histograms(two_runs)
        histogram = merged["opt_compile.cycles"]
        assert histogram.count == sum(
            s.histograms["opt_compile.cycles"].count
            for s in two_runs.values())

    def test_merged_trace_has_one_pid_per_run(self, two_runs):
        trace = merged_chrome_trace(two_runs)
        pids = {event["pid"] for event in trace["traceEvents"]}
        assert pids == {1, 2}
        names = {event["args"]["name"] for event in trace["traceEvents"]
                 if event["name"] == "process_name"}
        assert names == set(two_runs)

    def test_render_aggregate(self, two_runs):
        data, rendered = render_aggregate(two_runs)
        assert data["total_cycles"] > 0
        assert "Aggregate telemetry over 2 runs" in rendered


class TestSweepTelemetry:
    TINY = SweepConfig(benchmarks=("jess",), families=("fixed",),
                       depths=(2,), phases=(0.0, 0.5), scale=SCALE, jobs=1)

    def test_sweep_without_telemetry_has_none(self):
        results = run_sweep(self.TINY)
        assert results.telemetry is None

    def test_sweep_collects_per_cell_snapshots(self):
        results = run_sweep(self.TINY, collect_telemetry=True)
        assert results.telemetry is not None
        assert set(results.telemetry) == set(results.cells)
        for key, snapshot in results.telemetry.items():
            # The snapshot belongs to the best-of-phases run that was kept.
            assert snapshot.total_cycles == results.cells[key].total_cycles
            assert snapshot.spans

    def test_sweep_telemetry_survives_worker_processes(self):
        config = SweepConfig(benchmarks=("jess", "db"), families=("fixed",),
                             depths=(2,), phases=(0.0,), scale=SCALE, jobs=2)
        results = run_sweep(config, collect_telemetry=True)
        assert set(results.telemetry) == set(results.cells)
        merged = merge_component_totals(
            {"/".join(map(str, key)): snap
             for key, snap in results.telemetry.items()})
        assert merged[APP] > 0

    def test_cache_format_unchanged(self):
        from repro.experiments.runner import SweepResults
        results = run_sweep(self.TINY, collect_telemetry=True)
        payload = json.loads(results.to_json())
        assert set(payload) == {"config", "cells"}  # no telemetry key
        loaded = SweepResults.from_json(results.to_json())
        assert loaded.telemetry is None
        assert set(loaded.cells) == set(results.cells)


class TestCellTelemetryMerge:
    A = ("jess", "fixed", 2)
    B = ("db", "class", 4)

    def test_cell_label(self):
        assert cell_label(self.A) == "jess/fixed/max2"

    def test_label_cell_snapshots(self):
        snap = object()
        assert label_cell_snapshots({self.A: snap}) == \
            {"jess/fixed/max2": snap}

    def test_merge_unions_partial_runs(self):
        first, second = object(), object()
        merged = merge_cell_telemetry({self.A: first}, {self.B: second})
        assert merged == {self.A: first, self.B: second}

    def test_merge_later_run_wins_and_none_skipped(self):
        stale, fresh = object(), object()
        merged = merge_cell_telemetry({self.A: stale}, None,
                                      {self.A: fresh})
        assert merged == {self.A: fresh}

    def test_merged_map_feeds_existing_aggregators(self):
        # The labelled union of two partial sweeps reconciles with the
        # run-level aggregation helpers.
        _rt, _res, snap_a = traced_run("jess", "fixed", 2)
        _rt, _res, snap_b = traced_run("db", "fixed", 2)
        merged = merge_cell_telemetry({self.A: snap_a}, {("db", "fixed", 2): snap_b})
        totals = merge_component_totals(label_cell_snapshots(merged))
        assert totals[APP] > 0
